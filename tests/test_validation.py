"""Tests for workload trace validation — and, through it, the
calibration of the entire Table II suite."""

import pytest

from repro.workloads import suite
from repro.workloads.base import WorkloadSpec, generate_trace
from repro.workloads.validation import validate_suite, validate_trace
from tests.conftest import small_config


def spec(**kw) -> WorkloadSpec:
    base = dict(
        name="v", abbr="v", suite="HPC",
        footprint_bytes=2**20 * 1024,
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=1.0, min_accesses=4000, max_accesses=8000,
        shared_page_frac=0.5, shared_access_frac=0.4,
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestValidateTrace:
    def test_well_formed_spec_validates(self):
        report = validate_trace(spec(), small_config())
        assert report.ok()

    def test_shared_access_fraction_measured(self):
        report = validate_trace(spec(shared_access_frac=0.7), small_config())
        assert abs(report.shared_access_frac - 0.7) < 0.08

    def test_footprint_covered(self):
        report = validate_trace(
            spec(coverage=3.0, max_accesses=40_000), small_config()
        )
        assert report.footprint_error < 0.15

    def test_write_fraction_reflects_knobs(self):
        lo = validate_trace(spec(write_frac=0.05, shared_write_frac=0.02),
                            small_config())
        hi = validate_trace(spec(write_frac=0.5, shared_write_frac=0.3),
                            small_config())
        assert hi.write_frac > lo.write_frac + 0.2

    def test_explicit_trace_accepted(self):
        cfg = small_config()
        s = spec()
        trace = generate_trace(s, cfg)
        report = validate_trace(s, cfg, trace=trace)
        assert report.workload == "v"

    def test_summary_is_readable(self):
        report = validate_trace(spec(), small_config())
        text = report.summary()
        assert "footprint" in text and "shared accesses" in text


class TestSuiteCalibration:
    """The 20 Table II workloads stay true to their knobs."""

    @pytest.fixture(scope="class")
    def reports(self):
        return validate_suite(suite.SUITE, small_config())

    def test_all_workloads_validated(self, reports):
        assert len(reports) == 20

    def test_shared_access_fractions_on_spec(self, reports):
        for abbr, report in reports.items():
            assert report.shared_access_error < 0.1, report.summary()

    def test_footprints_covered(self, reports):
        # Low-coverage workloads (Euler, MiniAMR run below coverage 1.0 to
        # suppress intra-kernel reuse) and zipf tails (XSBench) leave part
        # of the layout untouched by design; the bulk must be exercised.
        for abbr, report in reports.items():
            assert report.footprint_error < 0.6, report.summary()
        well_covered = [
            r for r in reports.values() if r.footprint_error < 0.2
        ]
        assert len(well_covered) >= 15

    def test_false_sharing_in_rw_group(self, reports):
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_RW_SHARED:
                r = reports[abbr]
                assert r.page_rw_access_frac > r.line_rw_access_frac, (
                    r.summary()
                )

    def test_ro_group_has_no_rw_accesses(self, reports):
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_RO_FIXED:
                assert reports[abbr].page_rw_access_frac < 0.05
