"""Whole-program rule tests (DET004/DET005, CONC001-003, VER002).

Each fixture is a throwaway ``<root>/src/repro`` tree exercising one
rule through the real engine and CLI, including the acceptance-path
cases: ``time.time()`` reaching the perf model through two intermediate
helper modules (DET004), and a blocking ``http.client`` call planted
in a serve route (CONC001) — both with ``--explain`` printing the full
source→sink chain.
"""

import json

import pytest

from repro.cli import main
from repro.lint import run_lint

# --- fixture trees ---------------------------------------------------------

#: time.time() reaches the perf model two helper modules below the
#: driver: DET001's per-file scope sees the direct call in model.py,
#: DET004 sees the *chain* from run_workload.
TAINT_TREE = {
    "sim/driver.py": (
        "from repro.core import helper_a\n"
        "def run_workload():\n"
        "    return helper_a.compute()\n"
    ),
    "core/helper_a.py": (
        "from repro.core import helper_b\n"
        "def compute():\n"
        "    return helper_b.scale()\n"
    ),
    "core/helper_b.py": (
        "from repro.perf import model\n"
        "def scale():\n"
        "    return model.total_time_s()\n"
    ),
    "perf/model.py": (
        "import time\n"
        "def total_time_s():\n"
        "    return time.time()\n"
    ),
}

#: A serve route whose helper opens a sync http.client connection
#: (blocking the loop), next to a route correctly hopping through
#: asyncio.to_thread.
SERVE_TREE = {
    "serve/routes.py": (
        "import asyncio\n"
        "from repro.serve import upstream\n"
        "async def job_events(request):\n"
        "    return upstream.fetch_status()\n"
        "async def job_result(request):\n"
        "    return await asyncio.to_thread(upstream.fetch_status)\n"
    ),
    "serve/upstream.py": (
        "import http.client\n"
        "def fetch_status():\n"
        "    conn = http.client.HTTPConnection('localhost')\n"
        "    conn.request('GET', '/status')\n"
        "    return conn.getresponse().read()\n"
    ),
}


def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    return tmp_path


def lint(root, **kwargs):
    return run_lint(root / "src" / "repro", repo_root=root, **kwargs)


def findings_of(result, rule):
    return [f for f in result.findings if f.rule == rule]


# --- DET004 ----------------------------------------------------------------

class TestDet004:
    def test_two_intermediate_helpers(self, tmp_path):
        root = write_tree(tmp_path, TAINT_TREE)
        result = lint(root, select=["DET004"])
        (finding,) = findings_of(result, "DET004")
        assert finding.path == "src/repro/perf/model.py"
        assert "time.time" in finding.message
        assert "run_workload" in finding.message
        funcs = [s["func"] for s in finding.chain]
        assert funcs == ["run_workload", "compute", "scale",
                         "total_time_s", "total_time_s"]
        assert result.exit_code == 1

    def test_direct_call_case_also_caught_by_det001(self, tmp_path):
        # The equivalent direct-call case DET001 already caught stays
        # caught; DET004 adds the chain view of the same sink.
        root = write_tree(tmp_path, TAINT_TREE)
        result = lint(root, select=["DET001", "DET004"])
        assert {f.rule for f in result.findings} == {"DET001", "DET004"}
        det001, det004 = sorted(result.findings, key=lambda f: f.rule)
        assert det001.path == det004.path == "src/repro/perf/model.py"
        assert det001.line == det004.line

    def test_explain_prints_full_chain(self, tmp_path, capsys):
        root = write_tree(tmp_path, TAINT_TREE)
        sink_line = 3  # time.time() call in perf/model.py
        argv = ["lint", str(root / "src" / "repro"),
                "--root", str(root), "--select", "DET004",
                "--explain", f"DET004:src/repro/perf/model.py:{sink_line}"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for fn in ("run_workload", "compute", "scale", "total_time_s"):
            assert fn in out
        assert "time.time" in out

    def test_det001_allowlist_honored_at_sink(self, tmp_path):
        files = dict(TAINT_TREE)
        # Move the sink into an allowlisted orchestration module and
        # call it from the chain: no DET004 finding.
        files["sim/runner.py"] = (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        files["perf/model.py"] = (
            "from repro.sim import runner\n"
            "def total_time_s():\n"
            "    return runner.now()\n"
        )
        root = write_tree(tmp_path, files)
        result = lint(root, select=["DET004"])
        assert findings_of(result, "DET004") == []

    def test_env_read_is_a_source(self, tmp_path):
        files = dict(TAINT_TREE)
        files["perf/model.py"] = (
            "import os\n"
            "def total_time_s():\n"
            "    return float(os.environ.get('SPEED', '1'))\n"
        )
        root = write_tree(tmp_path, files)
        (finding,) = findings_of(lint(root, select=["DET004"]), "DET004")
        assert "os.environ.get" in finding.message

    def test_unreachable_sink_not_flagged(self, tmp_path):
        files = dict(TAINT_TREE)
        files["core/helper_b.py"] = (
            "def scale():\n    return 1.0\n"
        )  # chain cut: perf/model.py no longer reachable
        root = write_tree(tmp_path, files)
        assert findings_of(lint(root, select=["DET004"]), "DET004") == []


# --- DET005 ----------------------------------------------------------------

class TestDet005:
    def test_unseeded_rng_escaping_into_scope(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/driver.py": (
                "import random\n"
                "from repro.core import model\n"
                "def run_workload():\n"
                "    return model.simulate(random.Random())\n"
            ),
            "core/model.py": (
                "def simulate(rng):\n    return rng.random()\n"
            ),
        })
        (finding,) = findings_of(lint(root, select=["DET005"]), "DET005")
        assert "random.Random" in finding.message
        assert finding.chain[-1]["path"] == "src/repro/core/model.py"

    def test_seeded_rng_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/driver.py": (
                "import random\n"
                "from repro.core import model\n"
                "def run_workload():\n"
                "    return model.simulate(random.Random(1302))\n"
            ),
            "core/model.py": (
                "def simulate(rng):\n    return rng.random()\n"
            ),
        })
        assert findings_of(lint(root, select=["DET005"]), "DET005") == []


# --- CONC001 ---------------------------------------------------------------

class TestConc001:
    def test_blocking_http_client_in_route(self, tmp_path):
        root = write_tree(tmp_path, SERVE_TREE)
        result = lint(root, select=["CONC001"])
        flagged = findings_of(result, "CONC001")
        assert flagged, "planted http.client call must be caught"
        assert all(f.path == "src/repro/serve/upstream.py"
                   for f in flagged)
        assert any("http.client.HTTPConnection" in f.message
                   for f in flagged)
        (first,) = [f for f in flagged
                    if "HTTPConnection" in f.message]
        assert [s["func"] for s in first.chain][0] == "job_events"
        assert "job_events" in first.message

    def test_to_thread_hop_cuts_the_chain(self, tmp_path):
        files = dict(SERVE_TREE)
        # Remove the direct-call route: only the to_thread route stays.
        files["serve/routes.py"] = (
            "import asyncio\n"
            "from repro.serve import upstream\n"
            "async def job_result(request):\n"
            "    return await asyncio.to_thread(upstream.fetch_status)\n"
        )
        root = write_tree(tmp_path, files)
        assert findings_of(lint(root, select=["CONC001"]),
                           "CONC001") == []

    def test_time_sleep_in_route_helper(self, tmp_path):
        root = write_tree(tmp_path, {
            "serve/routes.py": (
                "from repro.serve import util\n"
                "async def healthz(request):\n"
                "    return util.backoff()\n"
            ),
            "serve/util.py": (
                "import time\n"
                "def backoff():\n    time.sleep(1)\n"
            ),
        })
        (finding,) = findings_of(lint(root, select=["CONC001"]),
                                 "CONC001")
        assert "time.sleep" in finding.message

    def test_sync_code_outside_serve_not_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/runner.py": (
                "import time\n"
                "def wait():\n    time.sleep(1)\n"
            ),
        })
        assert findings_of(lint(root, select=["CONC001"]),
                           "CONC001") == []

    def test_explain_prints_route_to_sink_chain(self, tmp_path, capsys):
        root = write_tree(tmp_path, SERVE_TREE)
        argv = ["lint", str(root / "src" / "repro"),
                "--root", str(root), "--select", "CONC001",
                "--explain",
                "CONC001:src/repro/serve/upstream.py:3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "job_events" in out
        assert "fetch_status" in out
        assert "http.client.HTTPConnection" in out


# --- CONC002 ---------------------------------------------------------------

CONC002_TREE = {
    "sim/state.py": (
        "COUNTS = {}\n"
        "def record(key):\n"
        "    COUNTS[key] = COUNTS.get(key, 0) + 1\n"
        "def reset():\n"
        "    COUNTS.clear()\n"
    ),
    "sim/pool.py": (
        "from repro.sim import state\n"
        "def _worker_main(conn):\n"
        "    state.record('task')\n"
        "class WorkerPool:\n"
        "    def shutdown(self):\n"
        "        state.reset()\n"
    ),
}


class TestConc002:
    def test_global_written_on_both_sides(self, tmp_path):
        root = write_tree(tmp_path, CONC002_TREE)
        (finding,) = findings_of(lint(root, select=["CONC002"]),
                                 "CONC002")
        assert finding.path == "src/repro/sim/state.py"
        assert "'COUNTS'" in finding.message
        notes = [s["note"] for s in finding.chain]
        assert any("worker-side write" in n for n in notes)
        assert any("parent-side" in n for n in notes)

    def test_single_sided_write_is_clean(self, tmp_path):
        files = dict(CONC002_TREE)
        files["sim/pool.py"] = (
            "from repro.sim import state\n"
            "def _worker_main(conn):\n"
            "    state.record('task')\n"
            "class WorkerPool:\n"
            "    def shutdown(self):\n"
            "        pass\n"
        )
        root = write_tree(tmp_path, files)
        assert findings_of(lint(root, select=["CONC002"]),
                           "CONC002") == []


# --- CONC003 ---------------------------------------------------------------

class TestConc003:
    def test_lock_held_across_spawn(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/pool.py": (
                "import threading\n"
                "_POOL_LOCK = threading.Lock()\n"
                "def _spawn(ctx):\n"
                "    proc = ctx.Process(target=None)\n"
                "    proc.start()\n"
                "    return proc\n"
                "def grow(ctx):\n"
                "    with _POOL_LOCK:\n"
                "        return _spawn(ctx)\n"
            ),
        })
        (finding,) = findings_of(lint(root, select=["CONC003"]),
                                 "CONC003")
        assert finding.path == "src/repro/sim/pool.py"
        assert "lock" in finding.message
        notes = " ".join(s["note"] for s in finding.chain)
        assert "holds lock" in notes
        assert "ctx.Process" in notes

    def test_lock_released_before_spawn_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/pool.py": (
                "import threading\n"
                "_POOL_LOCK = threading.Lock()\n"
                "def _spawn(ctx):\n"
                "    return ctx.Process(target=None)\n"
                "def grow(ctx):\n"
                "    with _POOL_LOCK:\n"
                "        n = 1\n"
                "    return _spawn(ctx)\n"
            ),
        })
        assert findings_of(lint(root, select=["CONC003"]),
                           "CONC003") == []


# --- suppression auditability ---------------------------------------------

class TestSuppressionAudit:
    """# lint: disable=<ID> findings stay visible in --format json with
    suppressed: true — for chain findings too."""

    @pytest.mark.parametrize("rule,files,sink", [
        ("DET004",
         {**TAINT_TREE,
          "perf/model.py": (
              "import time\n"
              "def total_time_s():\n"
              "    return time.time()  # lint: disable=DET004 - test\n"
          )},
         "src/repro/perf/model.py"),
        ("CONC001",
         {**SERVE_TREE,
          "serve/upstream.py": (
              "import http.client\n"
              "def fetch_status():\n"
              "    conn = http.client.HTTPConnection('h')  # lint: disable=CONC001 - test\n"
              "    return conn\n"
          )},
         "src/repro/serve/upstream.py"),
        ("CONC002",
         {**CONC002_TREE,
          "sim/state.py": (
              "COUNTS = {}\n"
              "def record(key):\n"
              "    COUNTS[key] = 1  # lint: disable=CONC002 - test\n"
              "def reset():\n"
              "    # lint: disable=CONC002 - test\n"
              "    COUNTS.clear()\n"
          )},
         "src/repro/sim/state.py"),
    ])
    def test_suppressed_chain_finding_in_json(self, tmp_path, capsys,
                                              rule, files, sink):
        root = write_tree(tmp_path, files)
        argv = ["lint", str(root / "src" / "repro"),
                "--root", str(root), "--select", rule,
                "--format", "json"]
        assert main(argv) == 0  # suppressed findings don't fail
        doc = json.loads(capsys.readouterr().out)
        flagged = [f for f in doc["findings"]
                   if f["rule"] == rule and f["path"] == sink]
        assert flagged
        assert all(f["suppressed"] is True for f in flagged)
        assert any("chain" in f for f in flagged)


# --- VER002 (scope drift) --------------------------------------------------

class TestVer002:
    def test_update_scope_then_clean_then_drift(self, tmp_path, capsys):
        root = write_tree(tmp_path, TAINT_TREE)
        scan = str(root / "src" / "repro")
        assert main(["lint", scan, "--root", str(root),
                     "--update-scope"]) == 0
        capsys.readouterr()
        scope_file = root / "lint-scope.json"
        assert scope_file.exists()
        doc = json.loads(scope_file.read_text())
        assert "src/repro/core/" in doc["result_affecting"]
        assert "src/repro/perf/" in doc["result_affecting"]
        # Committed scope matches the derivation: clean.
        assert main(["lint", scan, "--root", str(root),
                     "--select", "VER002"]) == 0
        capsys.readouterr()
        # A new result-affecting module appears: VER002 fires until the
        # scope file is regenerated and committed.
        extra = root / "src" / "repro" / "memory" / "cache.py"
        extra.parent.mkdir(parents=True)
        extra.write_text("def lookup():\n    return 1\n")
        helper = root / "src" / "repro" / "core" / "helper_b.py"
        helper.write_text(
            "from repro.memory import cache\n"
            "def scale():\n    return cache.lookup()\n"
        )
        assert main(["lint", scan, "--root", str(root),
                     "--select", "VER002"]) == 1
        out = capsys.readouterr().out
        assert "VER002" in out
        assert "memory" in out

    def test_missing_scope_file_is_a_notice_not_a_failure(
            self, tmp_path, capsys):
        root = write_tree(tmp_path, TAINT_TREE)
        result = lint(root, select=["VER002"])
        assert result.exit_code == 0
        assert any("lint-scope.json" in n for n in result.notices)

    def test_repo_scope_file_matches_derivation(self):
        # The committed lint-scope.json of *this* repository is in sync
        # with the graph derivation (the VER002 gate CI relies on).
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        result = run_lint(repo / "src" / "repro", repo_root=repo,
                          select=["VER002"])
        assert result.exit_code == 0, [
            f.message for f in result.findings
        ]
        assert result.notices == []

    def test_repo_scope_covers_legacy_ver001_list(self):
        # Acceptance: the derived scope covers at least the hand-coded
        # VER001 path list it replaces.
        from pathlib import Path

        from repro.lint.versioning import RESULT_AFFECTING

        repo = Path(__file__).resolve().parent.parent
        doc = json.loads((repo / "lint-scope.json").read_text())
        for prefix in RESULT_AFFECTING:
            assert prefix in doc["result_affecting"], prefix
