"""Coherence behaviour of the full system model."""

from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    INVALIDATE_MSG_BYTES,
)
from repro.numa.system import MultiGpuSystem
from tests.conftest import tiny_rdc_config

LINE = 3


def carve_system(coherence) -> MultiGpuSystem:
    cfg = tiny_rdc_config(coherence=coherence, imst_demote_prob=0.0)
    return MultiGpuSystem(cfg)


def share_line(s: MultiGpuSystem, readers=(1, 2)):
    """Home LINE at GPU 0 and cache it remotely at *readers*."""
    s.access(0, LINE, False)
    for g in readers:
        s.access(g, LINE, False)


class TestHardwareCoherence:
    def test_shared_write_broadcasts(self):
        s = carve_system(COHERENCE_HARDWARE)
        share_line(s)
        ks = s.access(0, LINE, True)  # home writes a shared line
        assert ks.gpus[0].invalidates_sent == 3
        # Invalidate messages cross the three peer links.
        for p in (1, 2, 3):
            assert ks.link_bytes[0][p] == INVALIDATE_MSG_BYTES

    def test_invalidation_removes_peer_rdc_copy(self):
        s = carve_system(COHERENCE_HARDWARE)
        share_line(s)
        assert s.nodes[1].carve.rdc.contains(LINE)
        s.access(0, LINE, True)
        assert not s.nodes[1].carve.rdc.contains(LINE)

    def test_invalidation_removes_peer_llc_copy(self):
        s = carve_system(COHERENCE_HARDWARE)
        share_line(s)
        assert s.nodes[1].l2.contains(LINE)
        s.access(0, LINE, True)
        assert not s.nodes[1].l2.contains(LINE)

    def test_private_write_is_silent(self):
        s = carve_system(COHERENCE_HARDWARE)
        s.access(0, LINE, False)  # private to GPU 0
        ks = s.access(0, LINE, True)
        assert ks.gpus[0].invalidates_sent == 0

    def test_peer_refetches_after_invalidation(self):
        s = carve_system(COHERENCE_HARDWARE)
        share_line(s)
        s.access(0, LINE, True)
        ks = s.access(1, LINE, False)
        assert ks.gpus[1].remote_reads == 1  # forced back to the home

    def test_writer_keeps_its_own_copy(self):
        s = carve_system(COHERENCE_HARDWARE)
        share_line(s)
        s.access(1, LINE, True)  # remote writer
        # GPU 1 wrote: its own RDC copy must survive (it has fresh data).
        assert s.nodes[1].carve.rdc.contains(LINE)
        assert not s.nodes[2].carve.rdc.contains(LINE)


class TestNoCoherence:
    def test_no_invalidations_ever(self):
        s = carve_system(COHERENCE_NONE)
        share_line(s)
        ks = s.access(0, LINE, True)
        assert ks.gpus[0].invalidates_sent == 0
        assert s.nodes[1].carve.rdc.contains(LINE)  # stale but resident


class TestSoftwareCoherence:
    def test_no_in_kernel_invalidations(self):
        s = carve_system(COHERENCE_SOFTWARE)
        share_line(s)
        ks = s.access(0, LINE, True)
        assert ks.gpus[0].invalidates_sent == 0

    def test_rdc_flushed_at_kernel_boundary(self):
        s = carve_system(COHERENCE_SOFTWARE)
        share_line(s)
        assert s.nodes[1].carve.rdc.contains(LINE)
        s.kernel_boundary()
        assert not s.nodes[1].carve.rdc.contains(LINE)


class TestDirectoryCoherence:
    def test_targeted_invalidation(self):
        s = carve_system(COHERENCE_DIRECTORY)
        share_line(s, readers=(2,))
        ks = s.access(0, LINE, True)
        assert ks.gpus[0].invalidates_sent == 1
        assert ks.link_bytes[0][2] == INVALIDATE_MSG_BYTES
        assert ks.link_bytes[0][1] == 0
        assert ks.link_bytes[0][3] == 0

    def test_sharer_set_cleared_after_invalidation(self):
        s = carve_system(COHERENCE_DIRECTORY)
        share_line(s, readers=(2,))
        s.access(0, LINE, True)
        ks = s.access(0, LINE, True)  # no sharers left
        assert ks.gpus[0].invalidates_sent == 0

    def test_rdc_retained_across_kernels(self):
        s = carve_system(COHERENCE_DIRECTORY)
        share_line(s, readers=(2,))
        s.kernel_boundary()
        assert s.nodes[2].carve.rdc.contains(LINE)


class TestBaselineSoftwareCoherence:
    def test_numa_gpu_uses_software_coherence(self):
        from tests.conftest import small_config

        s = MultiGpuSystem(small_config())
        assert s.protocol.name == COHERENCE_SOFTWARE
