"""Tests for the bottleneck/traffic diagnostics."""

import pytest

from repro.analysis.bottleneck import (
    BottleneckReport,
    analyze,
    render,
    traffic_breakdown,
)
from repro.config import COHERENCE_HARDWARE
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult
from repro.sim.driver import run_workload
from repro.workloads.base import WorkloadSpec
from tests.conftest import small_config


def fast_spec(**kw):
    base = dict(
        name="diag", abbr="diag", suite="HPC",
        footprint_bytes=2**20 * 1024,
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=0.5, min_accesses=1500, max_accesses=2500,
        shared_page_frac=0.5, shared_access_frac=0.5,
        rw_page_frac=0.8,
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestTrafficBreakdown:
    def test_empty_run(self):
        r = RunResult("wl", "cfg", 2)
        tb = traffic_breakdown(r)
        assert tb.accesses == 0

    def test_fractions_from_counters(self):
        r = RunResult("wl", "cfg", 1)
        ks = KernelStats(0, 1, 1.0, 32.0)
        ks.gpus[0] = GpuKernelStats(
            accesses=10, l1_hits=2, l2_hits=1,
            local_reads=4, local_writes=0, rdc_hits=1,
            remote_reads=2, remote_writes=1,
        )
        r.kernels = [ks]
        tb = traffic_breakdown(r)
        assert tb.l1_hits == pytest.approx(0.2)
        assert tb.rdc_hits == pytest.approx(0.1)
        assert tb.local_dram == pytest.approx(0.3)
        assert tb.remote == pytest.approx(0.3)

    def test_real_run_fractions_cover_all_accesses(self):
        cfg = small_config().with_rdc(coherence=COHERENCE_HARDWARE)
        r = run_workload(fast_spec(), cfg, use_cache=False)
        tb = traffic_breakdown(r)
        covered = sum(tb.as_dict().values())
        assert 0.9 < covered <= 1.01


class TestAnalyze:
    def test_report_fields(self):
        cfg = small_config()
        r = run_workload(fast_spec(), cfg, use_cache=False)
        report = analyze(r, cfg)
        assert report.total_time_s > 0
        assert sum(report.bottlenecks.values()) == 2 * cfg.n_gpus
        assert report.dominant_bottleneck in (
            "compute", "local_dram", "link", "latency"
        )
        assert report.dram_bytes > 0

    def test_shared_workload_is_link_bound_on_baseline(self):
        cfg = small_config()
        spec = fast_spec(shared_access_frac=0.8, instr_per_access=4.0)
        report = analyze(run_workload(spec, cfg, use_cache=False), cfg)
        assert report.dominant_bottleneck == "link"
        assert report.busiest_link_bytes > 0

    def test_compute_workload_is_compute_bound(self):
        cfg = small_config()
        spec = fast_spec(shared_access_frac=0.02, instr_per_access=400.0)
        report = analyze(run_workload(spec, cfg, use_cache=False), cfg)
        assert report.dominant_bottleneck == "compute"

    def test_invalidates_counted_under_hwc(self):
        cfg = small_config().with_rdc(coherence=COHERENCE_HARDWARE)
        spec = fast_spec(shared_write_frac=0.2, line_write_frac=0.3)
        report = analyze(run_workload(spec, cfg, use_cache=False), cfg)
        assert report.invalidates > 0


class TestRender:
    def test_render_contains_key_fields(self):
        report = BottleneckReport(
            workload="wl", config_label="cfg", total_time_s=1e-6,
            bottlenecks={"link": 4},
        )
        text = render(report)
        assert "wl on cfg" in text
        assert "link" in text
        assert "demand access mix" in text

    def test_dominant_of_empty_report(self):
        report = BottleneckReport("w", "c", 0.0)
        assert report.dominant_bottleneck == "idle"
