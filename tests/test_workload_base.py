"""Tests for workload specification and trace generation."""

import numpy as np
import pytest

from repro.analysis.sharing import profile_sharing
from repro.workloads.base import (
    WorkloadSpec,
    _resolve_layout,
    expected_footprint_bytes,
    generate_trace,
    trace_cost_estimate,
)
from tests.conftest import small_config


def spec(**kw) -> WorkloadSpec:
    base = dict(
        name="test", abbr="test", suite="HPC",
        footprint_bytes=4 * 2**20 * 1024,  # 4 MB scaled at default scale
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=1.0, min_accesses=2000, max_accesses=4000,
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestSpecValidation:
    def test_valid_spec(self):
        spec().scaled(shared_access_frac=0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            spec(shared_access_frac=1.5)
        with pytest.raises(ValueError):
            spec(rw_page_frac=-0.1)

    def test_footprint_positive(self):
        with pytest.raises(ValueError):
            spec(footprint_bytes=0)

    def test_pattern_names_checked(self):
        with pytest.raises(ValueError):
            spec(private_pattern="spiral")
        with pytest.raises(ValueError):
            spec(shared_pattern="spiral")

    def test_access_clamp_checked(self):
        with pytest.raises(ValueError):
            spec(min_accesses=100, max_accesses=50)

    def test_warmup_nonnegative(self):
        with pytest.raises(ValueError):
            spec(warmup_kernels=-1)

    def test_scaled_replaces_fields(self):
        s = spec().scaled(seed=99)
        assert s.seed == 99 and s.name == "test"


class TestLayout:
    def test_footprint_floor(self):
        s = spec(footprint_bytes=1024, min_footprint_lines=4096)
        layout = _resolve_layout(s, small_config())
        assert layout.footprint_lines >= 4096

    def test_private_and_shared_partition(self):
        layout = _resolve_layout(spec(shared_page_frac=0.5), small_config())
        assert layout.private_lines + layout.shared_lines == layout.footprint_lines
        assert layout.shared_start == layout.private_lines

    def test_writable_lines_inside_rw_pages(self):
        s = spec(shared_page_frac=0.5, rw_page_frac=0.5, line_write_frac=0.1)
        layout = _resolve_layout(s, small_config())
        assert layout.writable_shared.size > 0
        assert (layout.writable_shared >= layout.shared_start).all()
        assert (
            layout.writable_shared < layout.shared_start + layout.shared_lines
        ).all()

    def test_no_writable_lines_for_ro_workload(self):
        s = spec(rw_page_frac=0.0)
        layout = _resolve_layout(s, small_config())
        assert layout.writable_shared.size == 0


class TestGeneration:
    def test_kernel_count_includes_warmup(self):
        t = generate_trace(spec(), small_config())
        assert t.n_kernels == 3  # 1 warmup + 2 measured
        assert t.kernels[0].warmup
        assert not t.kernels[1].warmup

    def test_deterministic_for_same_seed(self):
        t1 = generate_trace(spec(), small_config())
        t2 = generate_trace(spec(), small_config())
        for k1, k2 in zip(t1.kernels, t2.kernels):
            assert np.array_equal(k1.lines, k2.lines)
            assert np.array_equal(k1.is_write, k2.is_write)

    def test_different_seed_changes_trace(self):
        t1 = generate_trace(spec(), small_config())
        t2 = generate_trace(spec(seed=2), small_config())
        assert not np.array_equal(t1.kernels[0].lines, t2.kernels[0].lines)

    def test_lines_stay_in_footprint(self):
        cfg = small_config()
        s = spec()
        layout = _resolve_layout(s, cfg)
        t = generate_trace(s, cfg)
        for k in t.kernels:
            assert k.lines.min() >= 0
            assert k.lines.max() < layout.footprint_lines

    def test_read_only_shared_region_never_written(self):
        cfg = small_config()
        s = spec(rw_page_frac=0.0, shared_access_frac=0.5,
                 shared_page_frac=0.5, write_frac=0.0)
        layout = _resolve_layout(s, cfg)
        t = generate_trace(s, cfg)
        for k in t.kernels:
            written = k.lines[k.is_write]
            assert (written < layout.shared_start).all()

    def test_shared_writes_confined_to_writable_lines(self):
        cfg = small_config()
        s = spec(
            rw_page_frac=0.5, line_write_frac=0.1, shared_access_frac=0.5,
            shared_page_frac=0.5, write_frac=0.0, shared_write_frac=0.3,
        )
        layout = _resolve_layout(s, cfg)
        writable = set(layout.writable_shared.tolist())
        t = generate_trace(s, cfg)
        for k in t.kernels:
            shared_writes = k.lines[k.is_write & (k.lines >= layout.shared_start)]
            assert all(int(x) in writable for x in shared_writes)

    def test_instruction_metadata_propagates(self):
        s = spec(instr_per_access=33.0, concurrency_per_sm=7.0)
        t = generate_trace(s, small_config())
        assert t.kernels[0].instr_per_access == 33.0
        assert t.kernels[0].concurrency_per_sm == 7.0

    def test_cta_imbalance_spreads_work(self):
        s = spec(cta_imbalance=0.5)
        t = generate_trace(s, small_config())
        k = t.kernels[1]
        counts = np.bincount(k.cta_ids, minlength=8)
        assert counts.max() > counts.min()

    def test_trace_sharing_matches_knobs(self):
        """End-to-end: the generator produces shared RW pages iff asked."""
        cfg = small_config()
        rw = spec(shared_page_frac=0.4, shared_access_frac=0.5,
                  rw_page_frac=1.0, shared_write_frac=0.2)
        ro = spec(shared_page_frac=0.4, shared_access_frac=0.5,
                  rw_page_frac=0.0)
        p_rw = profile_sharing(generate_trace(rw, cfg), cfg)
        p_ro = profile_sharing(generate_trace(ro, cfg), cfg)
        assert p_rw.access_distribution("page").rw_shared > 0.1
        assert p_ro.access_distribution("page").rw_shared == pytest.approx(
            0.0, abs=0.05
        )

    def test_false_sharing_page_vs_line(self):
        cfg = small_config()
        s = spec(shared_page_frac=0.4, shared_access_frac=0.5,
                 rw_page_frac=1.0, line_write_frac=0.06,
                 shared_write_frac=0.05)
        p = profile_sharing(generate_trace(s, cfg), cfg)
        page_rw = p.access_distribution("page").rw_shared
        line_rw = p.access_distribution("line").rw_shared
        assert page_rw > 2 * line_rw


class TestHelpers:
    def test_expected_footprint(self):
        cfg = small_config()
        assert expected_footprint_bytes(spec(), cfg) > 0

    def test_cost_estimate_close_to_actual(self):
        cfg = small_config()
        s = spec()
        t = generate_trace(s, cfg)
        est = trace_cost_estimate(s, cfg)
        # Imbalance makes the actual total wobble around the estimate.
        assert 0.5 * est < t.n_accesses < 2.0 * est
