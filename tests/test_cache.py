"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache


class TestBasics:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(16, 4)
        assert not c.lookup(5)
        c.insert(5)
        assert c.lookup(5)

    def test_counters(self):
        c = SetAssociativeCache(16, 4)
        c.lookup(1)
        c.insert(1)
        c.lookup(1)
        assert c.misses == 1 and c.hits == 1
        assert c.hit_rate == 0.5

    def test_contains_no_side_effects(self):
        c = SetAssociativeCache(16, 4)
        c.insert(3)
        hits, misses = c.hits, c.misses
        assert c.contains(3)
        assert not c.contains(4)
        assert (c.hits, c.misses) == (hits, misses)

    def test_len_counts_resident_lines(self):
        c = SetAssociativeCache(16, 4)
        for i in range(5):
            c.insert(i)
        assert len(c) == 5

    def test_iteration_yields_resident_lines(self):
        c = SetAssociativeCache(16, 4)
        for i in (1, 2, 17):
            c.insert(i)
        assert sorted(c) == [1, 2, 17]

    def test_set_mapping(self):
        c = SetAssociativeCache(16, 4)  # 4 sets
        assert c.n_sets == 4
        # Lines 0 and 4 share set 0; fill it and check independence.
        for line in (0, 4, 8, 12):
            c.insert(line)
        c.insert(1)  # set 1 unaffected
        assert all(c.contains(x) for x in (0, 4, 8, 12, 1))

    def test_reset_counters(self):
        c = SetAssociativeCache(16, 4)
        c.lookup(1)
        c.reset_counters()
        assert c.hits == 0 and c.misses == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 4)
        with pytest.raises(ValueError):
            SetAssociativeCache(16, 0)
        with pytest.raises(ValueError):
            SetAssociativeCache(15, 4)

    def test_small_cache_degenerates_to_full_assoc(self):
        c = SetAssociativeCache(2, 8)
        assert c.ways == 2 and c.n_sets == 1


class TestLru:
    def test_lru_eviction_order(self):
        c = SetAssociativeCache(4, 4)  # one set, 4 ways
        for line in (0, 1, 2, 3):
            c.insert(line)
        victim = c.insert(4)
        assert victim is not None and victim.line == 0

    def test_lookup_refreshes_recency(self):
        c = SetAssociativeCache(4, 4)
        for line in (0, 1, 2, 3):
            c.insert(line)
        c.lookup(0)  # 0 becomes MRU; 1 is now LRU
        victim = c.insert(4)
        assert victim.line == 1

    def test_reinsert_refreshes_recency(self):
        c = SetAssociativeCache(4, 4)
        for line in (0, 1, 2, 3):
            c.insert(line)
        c.insert(0)
        victim = c.insert(4)
        assert victim.line == 1

    def test_lookup_without_lru_update(self):
        c = SetAssociativeCache(4, 4)
        for line in (0, 1, 2, 3):
            c.insert(line)
        c.lookup(0, update_lru=False)
        victim = c.insert(4)
        assert victim.line == 0

    def test_insert_returns_none_without_eviction(self):
        c = SetAssociativeCache(4, 4)
        assert c.insert(0) is None


class TestDirtyAndRemote:
    def test_insert_dirty(self):
        c = SetAssociativeCache(4, 4)
        c.insert(1, dirty=True)
        victim_gen = c.invalidate_line(1)
        assert victim_gen.dirty

    def test_reinsert_ors_dirty(self):
        c = SetAssociativeCache(4, 4)
        c.insert(1, dirty=True)
        c.insert(1, dirty=False)
        assert c.invalidate_line(1).dirty

    def test_mark_dirty_present(self):
        c = SetAssociativeCache(4, 4)
        c.insert(2)
        assert c.mark_dirty(2)
        assert c.invalidate_line(2).dirty

    def test_mark_dirty_absent(self):
        c = SetAssociativeCache(4, 4)
        assert not c.mark_dirty(9)

    def test_eviction_carries_dirty_state(self):
        c = SetAssociativeCache(4, 4)
        c.insert(0, dirty=True)
        for line in (1, 2, 3):
            c.insert(line)
        victim = c.insert(4)
        assert victim.line == 0 and victim.dirty

    def test_remote_flag_tracked(self):
        c = SetAssociativeCache(4, 4)
        c.insert(1, remote=True)
        c.insert(2, remote=False)
        assert c.invalidate_line(1).remote
        assert not c.invalidate_line(2).remote


class TestBulkOps:
    def test_invalidate_all_returns_dirty(self):
        c = SetAssociativeCache(8, 4)
        c.insert(1, dirty=True)
        c.insert(2)
        c.insert(3, dirty=True)
        dirty = c.invalidate_all()
        assert sorted(e.line for e in dirty) == [1, 3]
        assert len(c) == 0

    def test_invalidate_remote_keeps_local(self):
        c = SetAssociativeCache(8, 4)
        c.insert(1, remote=True)
        c.insert(2, remote=False)
        dropped = c.invalidate_remote()
        assert dropped == 1
        assert not c.contains(1) and c.contains(2)

    def test_flush_dirty_cleans_but_keeps_lines(self):
        c = SetAssociativeCache(8, 4)
        c.insert(1, dirty=True)
        c.insert(2)
        flushed = c.flush_dirty()
        assert [e.line for e in flushed] == [1]
        assert c.contains(1)
        # Second flush finds nothing.
        assert c.flush_dirty() == []

    def test_invalidate_line_absent_returns_none(self):
        c = SetAssociativeCache(8, 4)
        assert c.invalidate_line(99) is None


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = SetAssociativeCache(16, 4)
        for line in lines:
            c.insert(line)
        assert len(c) <= 16
        for s in c._sets:
            assert len(s) <= c.ways

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=300))
    def test_resident_lines_map_to_their_set(self, lines):
        c = SetAssociativeCache(16, 4)
        for line in lines:
            c.insert(line)
        for i, s in enumerate(c._sets):
            for line in s:
                assert line % c.n_sets == i

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    def test_most_recent_insert_is_resident(self, lines):
        c = SetAssociativeCache(8, 2)
        for line in lines:
            c.insert(line)
            assert c.contains(line)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=60), st.booleans()
            ),
            max_size=200,
        )
    )
    def test_hits_plus_misses_equals_lookups(self, ops):
        c = SetAssociativeCache(8, 4)
        lookups = 0
        for line, do_insert in ops:
            if do_insert:
                c.insert(line)
            else:
                c.lookup(line)
                lookups += 1
        assert c.hits + c.misses == lookups
