"""Tests for repro.memory.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import LINE_BYTES
from repro.memory.address import AddressMap, bytes_to_lines, lines_to_bytes


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap(lines_per_page=16, n_channels=8, row_bytes=2048)


class TestAddressMap:
    def test_page_of_first_page(self, amap):
        assert amap.page_of(0) == 0
        assert amap.page_of(15) == 0

    def test_page_of_boundary(self, amap):
        assert amap.page_of(16) == 1

    def test_first_line_roundtrip(self, amap):
        assert amap.first_line_of_page(3) == 48
        assert amap.page_of(amap.first_line_of_page(3)) == 3

    def test_offset_in_page(self, amap):
        assert amap.line_offset_in_page(19) == 3

    def test_channel_interleave(self, amap):
        assert [amap.channel_of(i) for i in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1,
        ]

    def test_lines_per_row(self, amap):
        assert amap.lines_per_row == 2048 // LINE_BYTES

    def test_row_of_groups_channel_consecutive_lines(self, amap):
        # Lines 0 and 8 are consecutive on channel 0 and share a row.
        assert amap.row_of(0) == amap.row_of(8)

    def test_row_changes_after_row_capacity(self, amap):
        stride = amap.n_channels
        lines_same_row = amap.lines_per_row
        assert amap.row_of(0) != amap.row_of(stride * lines_same_row)

    def test_lines_of_page(self, amap):
        lines = list(amap.lines_of_page(2))
        assert lines[0] == 32 and lines[-1] == 47 and len(lines) == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(lines_per_page=0, n_channels=8, row_bytes=2048)
        with pytest.raises(ValueError):
            AddressMap(lines_per_page=16, n_channels=0, row_bytes=2048)
        with pytest.raises(ValueError):
            AddressMap(lines_per_page=16, n_channels=8, row_bytes=64)


class TestByteHelpers:
    def test_bytes_to_lines_exact(self):
        assert bytes_to_lines(LINE_BYTES * 5) == 5

    def test_bytes_to_lines_rounds_up(self):
        assert bytes_to_lines(LINE_BYTES + 1) == 2

    def test_bytes_to_lines_zero(self):
        assert bytes_to_lines(0) == 0

    def test_bytes_to_lines_subline(self):
        assert bytes_to_lines(1) == 1

    def test_lines_to_bytes(self):
        assert lines_to_bytes(7) == 7 * LINE_BYTES


class TestAddressProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_page_offset_reconstructs_line(self, line):
        amap = AddressMap(lines_per_page=16, n_channels=8, row_bytes=2048)
        page = amap.page_of(line)
        off = amap.line_offset_in_page(line)
        assert amap.first_line_of_page(page) + off == line

    @given(st.integers(min_value=0, max_value=10**12))
    def test_channel_in_range(self, line):
        amap = AddressMap(lines_per_page=16, n_channels=8, row_bytes=2048)
        assert 0 <= amap.channel_of(line) < 8

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bytes_lines_roundtrip_lower_bound(self, n_bytes):
        n = bytes_to_lines(n_bytes)
        assert lines_to_bytes(n) >= n_bytes
        assert lines_to_bytes(n) - n_bytes < LINE_BYTES
