"""Tests for the docs consistency checker (tools/check_docs.py)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", mod)
    spec.loader.exec_module(mod)
    return mod


class TestLinks:
    def test_broken_relative_link_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("[dead](nope/gone.md)\n")
        problems = checker.check_links(md, tmp_path)
        assert len(problems) == 1
        assert "nope/gone.md" in problems[0]

    def test_existing_link_and_anchor_ok(self, checker, tmp_path):
        (tmp_path / "b.md").write_text("# target\n")
        md = tmp_path / "a.md"
        md.write_text("[ok](b.md#target) [ext](https://example.com/x.md)\n")
        assert checker.check_links(md, tmp_path) == []


class TestMetricTokens:
    def test_unknown_metric_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("counts `rdc.hits` per kernel\n")  # typo: hits
        problems = checker.check_metric_tokens(md, tmp_path)
        assert len(problems) == 1
        assert "rdc.hits" in problems[0]

    def test_known_metric_and_event_ok(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`rdc.hit{gpu}` and `link.bytes{src,dst}` "
                      "and the `mig.page` event\n")
        assert checker.check_metric_tokens(md, tmp_path) == []

    def test_label_mismatch_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`link.bytes{dst,src}`\n")
        problems = checker.check_metric_tokens(md, tmp_path)
        assert len(problems) == 1 and "labels" in problems[0]

    def test_module_paths_ignored(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("see `repro.obs.registry` and `numpy.ndarray`\n")
        assert checker.check_metric_tokens(md, tmp_path) == []


class TestReferenceCompleteness:
    def test_missing_reference_file_flagged(self, checker, tmp_path):
        problems = checker.check_reference_complete(tmp_path)
        assert problems == ["docs/metrics.md is missing"]

    def test_undocumented_metric_flagged(self, checker, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "metrics.md").write_text("# empty\n")
        problems = checker.check_reference_complete(tmp_path)
        assert any("rdc.hit" in p for p in problems)


class TestEndpointTokens:
    def test_unknown_endpoint_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("call `GET /jobs/<id>/logs` for logs\n")
        problems = checker.check_endpoint_tokens(md, tmp_path)
        assert len(problems) == 1
        assert "GET /jobs/<id>/logs" in problems[0]

    def test_known_endpoints_ok(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`POST /jobs` then `GET /jobs/<id>/result` "
                      "then `GET /healthz`\n")
        assert checker.check_endpoint_tokens(md, tmp_path) == []

    def test_wrong_method_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`DELETE /jobs` is not a thing\n")
        problems = checker.check_endpoint_tokens(md, tmp_path)
        assert len(problems) == 1

    def test_plain_paths_ignored(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("see `/jobs` and `docs/serve.md` and plain "
                      "GET /jobs outside backticks\n")
        assert checker.check_endpoint_tokens(md, tmp_path) == []


class TestRoutesDocumented:
    def test_missing_reference_file_flagged(self, checker, tmp_path):
        problems = checker.check_routes_documented(tmp_path)
        assert problems == ["docs/serve.md is missing"]

    def test_undocumented_route_flagged(self, checker, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "serve.md").write_text("# only one\n`POST /jobs`\n")
        problems = checker.check_routes_documented(tmp_path)
        assert any("GET /jobs/<id>/result" in p for p in problems)
        assert not any("POST /jobs`" in p for p in problems)


class TestCliCommandsDocumented:
    @staticmethod
    def _write_cli(root, commands):
        cli = root / "src" / "repro"
        cli.mkdir(parents=True)
        lines = ["def build_parser(sub):"]
        lines += [f"    sub.add_parser({c!r}, help='x')" for c in commands]
        (cli / "cli.py").write_text("\n".join(lines) + "\n")

    def test_subcommands_found_by_ast(self, checker, tmp_path):
        self._write_cli(tmp_path, ["run", "serve"])
        assert checker.cli_subcommands(tmp_path) == ["run", "serve"]

    def test_missing_command_flagged(self, checker, tmp_path):
        self._write_cli(tmp_path, ["run", "serve"])
        (tmp_path / "README.md").write_text(
            "use `repro run` for runs\n"
        )
        problems = checker.check_cli_commands_documented(tmp_path)
        assert len(problems) == 1 and "`serve`" in problems[0]

    def test_both_mention_styles_accepted(self, checker, tmp_path):
        self._write_cli(tmp_path, ["run", "serve"])
        (tmp_path / "README.md").write_text(
            "| `repro run` | runs |\n\n    python -m repro serve\n"
        )
        assert checker.check_cli_commands_documented(tmp_path) == []


class TestRealRepo:
    def test_repository_docs_are_clean(self, checker):
        assert checker.run_checks(REPO_ROOT) == []

    def test_every_live_route_documented_in_serve_md(self, checker):
        # the real serve.md covers the real registry, both directions
        assert checker.check_routes_documented(REPO_ROOT) == []
        text = (REPO_ROOT / "docs" / "serve.md").read_text()
        assert checker.check_endpoint_tokens(
            REPO_ROOT / "docs" / "serve.md", REPO_ROOT) == []
        from repro.serve.routes import ROUTES
        for spec in ROUTES:
            assert f"`{spec.rendered()}`" in text

    def test_every_cli_subcommand_in_readme(self, checker):
        assert checker.check_cli_commands_documented(REPO_ROOT) == []
        assert "serve" in checker.cli_subcommands(REPO_ROOT)
