"""Tests for the docs consistency checker (tools/check_docs.py)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", mod)
    spec.loader.exec_module(mod)
    return mod


class TestLinks:
    def test_broken_relative_link_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("[dead](nope/gone.md)\n")
        problems = checker.check_links(md, tmp_path)
        assert len(problems) == 1
        assert "nope/gone.md" in problems[0]

    def test_existing_link_and_anchor_ok(self, checker, tmp_path):
        (tmp_path / "b.md").write_text("# target\n")
        md = tmp_path / "a.md"
        md.write_text("[ok](b.md#target) [ext](https://example.com/x.md)\n")
        assert checker.check_links(md, tmp_path) == []


class TestMetricTokens:
    def test_unknown_metric_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("counts `rdc.hits` per kernel\n")  # typo: hits
        problems = checker.check_metric_tokens(md, tmp_path)
        assert len(problems) == 1
        assert "rdc.hits" in problems[0]

    def test_known_metric_and_event_ok(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`rdc.hit{gpu}` and `link.bytes{src,dst}` "
                      "and the `mig.page` event\n")
        assert checker.check_metric_tokens(md, tmp_path) == []

    def test_label_mismatch_flagged(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("`link.bytes{dst,src}`\n")
        problems = checker.check_metric_tokens(md, tmp_path)
        assert len(problems) == 1 and "labels" in problems[0]

    def test_module_paths_ignored(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("see `repro.obs.registry` and `numpy.ndarray`\n")
        assert checker.check_metric_tokens(md, tmp_path) == []


class TestReferenceCompleteness:
    def test_missing_reference_file_flagged(self, checker, tmp_path):
        problems = checker.check_reference_complete(tmp_path)
        assert problems == ["docs/metrics.md is missing"]

    def test_undocumented_metric_flagged(self, checker, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "metrics.md").write_text("# empty\n")
        problems = checker.check_reference_complete(tmp_path)
        assert any("rdc.hit" in p for p in problems)


class TestRealRepo:
    def test_repository_docs_are_clean(self, checker):
        assert checker.run_checks(REPO_ROOT) == []
