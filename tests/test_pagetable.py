"""Tests for the page table and placement policies."""

import pytest

from repro.config import (
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_INTERLEAVED,
    PLACEMENT_ROUND_ROBIN,
)
from repro.numa.pagetable import PageTable


class TestPlacement:
    def test_first_touch_assigns_accessor(self):
        pt = PageTable(4, PLACEMENT_FIRST_TOUCH)
        assert pt.home_of(10, accessor=2) == 2

    def test_first_touch_is_sticky(self):
        pt = PageTable(4, PLACEMENT_FIRST_TOUCH)
        pt.home_of(10, accessor=2)
        assert pt.home_of(10, accessor=0) == 2

    def test_round_robin_cycles(self):
        pt = PageTable(3, PLACEMENT_ROUND_ROBIN)
        homes = [pt.home_of(p, accessor=0) for p in (5, 9, 7, 1)]
        assert homes == [0, 1, 2, 0]

    def test_interleaved_hashes_page_number(self):
        pt = PageTable(4, PLACEMENT_INTERLEAVED)
        assert pt.home_of(6, accessor=0) == 2
        assert pt.home_of(9, accessor=3) == 1

    def test_peek_home_no_mapping(self):
        pt = PageTable(4)
        assert pt.peek_home(1) == -1
        assert not pt.is_mapped(1)

    def test_peek_does_not_map(self):
        pt = PageTable(4)
        pt.peek_home(1)
        assert pt.total_pages == 0

    def test_pages_mapped_counter(self):
        pt = PageTable(4)
        pt.home_of(1, 0)
        pt.home_of(2, 1)
        pt.home_of(1, 2)  # already mapped
        assert pt.stats.pages_mapped == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PageTable(0)
        with pytest.raises(ValueError):
            PageTable(4, "warmest")


class TestReplication:
    def test_add_and_query(self):
        pt = PageTable(4)
        pt.home_of(5, 0)
        assert pt.add_replica(5, 2)
        assert pt.has_replica(5, 2)
        assert not pt.has_replica(5, 1)

    def test_duplicate_replica_not_double_counted(self):
        pt = PageTable(4)
        pt.home_of(5, 0)
        assert pt.add_replica(5, 2)
        assert not pt.add_replica(5, 2)
        assert pt.stats.replicas_created == 1

    def test_replica_gpu_range_checked(self):
        pt = PageTable(4)
        with pytest.raises(ValueError):
            pt.add_replica(5, 7)

    def test_collapse(self):
        pt = PageTable(4)
        pt.home_of(5, 0)
        pt.add_replica(5, 1)
        pt.add_replica(5, 2)
        assert pt.collapse_replicas(5) == 2
        assert not pt.has_replica(5, 1)
        assert pt.stats.replicas_collapsed == 2

    def test_collapse_without_replicas(self):
        pt = PageTable(4)
        assert pt.collapse_replicas(99) == 0


class TestMigration:
    def test_migrate_changes_home(self):
        pt = PageTable(4)
        pt.home_of(3, 0)
        old = pt.migrate(3, 2)
        assert old == 0
        assert pt.peek_home(3) == 2
        assert pt.stats.migrations == 1

    def test_migrate_to_same_home_is_noop(self):
        pt = PageTable(4)
        pt.home_of(3, 1)
        pt.migrate(3, 1)
        assert pt.stats.migrations == 0

    def test_migrate_unmapped_rejected(self):
        pt = PageTable(4)
        with pytest.raises(KeyError):
            pt.migrate(3, 1)

    def test_migrate_bad_gpu_rejected(self):
        pt = PageTable(4)
        pt.home_of(3, 1)
        with pytest.raises(ValueError):
            pt.migrate(3, 9)


class TestCapacityAccounting:
    def test_pages_homed(self):
        pt = PageTable(2)
        pt.home_of(1, 0)
        pt.home_of(2, 0)
        pt.home_of(3, 1)
        assert pt.pages_homed(0) == 2
        assert pt.pages_homed(1) == 1

    def test_capacity_includes_replicas(self):
        pt = PageTable(2)
        pt.home_of(1, 0)
        pt.add_replica(1, 1)
        assert pt.capacity_pages(1) == 1
        assert pt.capacity_pages(0) == 1

    def test_replication_pressure(self):
        pt = PageTable(4)
        for p in range(10):
            pt.home_of(p, p % 4)
        for p in range(5):  # replicate half the pages at 3 peers
            for g in range(4):
                if g != pt.peek_home(p):
                    pt.add_replica(p, g)
        # 10 pages + 15 replicas = 2.5x pressure.
        assert pt.replication_pressure() == pytest.approx(2.5)

    def test_pressure_of_empty_table(self):
        assert PageTable(4).replication_pressure() == 1.0
