"""Unit tests for reachability and scope derivation (repro.lint.dataflow)."""

import ast

from repro.lint.dataflow import (
    ScopePolicy,
    derive_scope,
    diff_scope,
    reach,
    render_chain,
    scope_document,
)
from repro.lint.graph import build_graph


def graph_of(files, package="repro"):
    parsed = [(rel, ast.parse(src)) for rel, src in sorted(files.items())]
    return build_graph(parsed, package=package)


CHAIN_TREE = {
    "sim/driver.py": (
        "from repro.core import helper_a\n"
        "def run_workload():\n    return helper_a.compute()\n"
    ),
    "core/helper_a.py": (
        "from repro.core import helper_b\n"
        "def compute():\n    return helper_b.stamp()\n"
    ),
    "core/helper_b.py": (
        "import time\n"
        "def stamp():\n    return time.time()\n"
    ),
    "obs/report.py": "def render():\n    return 'x'\n",
}


class TestReach:
    def test_calls_mode_follows_edges_with_parents(self):
        g = graph_of(CHAIN_TREE)
        r = reach(g, [("sim/driver.py", "run_workload")], mode="calls")
        assert "core/helper_b.py::stamp" in r
        assert "obs/report.py::render" not in r
        chain = r.chain("core/helper_b.py::stamp")
        assert [s["func"] for s in chain] == [
            "run_workload", "compute", "stamp"
        ]
        assert chain[0]["note"] == "root"

    def test_wide_mode_includes_constructed_class_methods(self):
        g = graph_of({
            "sim/driver.py": (
                "from repro.core import model\n"
                "def run_workload():\n    return model.System()\n"
            ),
            "core/model.py": (
                "class System:\n"
                "    def run(self):\n        return 1\n"
                "    def helper(self):\n        return 2\n"
            ),
        })
        calls = reach(g, [("sim/driver.py", "run_workload")],
                      mode="calls")
        wide = reach(g, [("sim/driver.py", "run_workload")],
                     mode="wide")
        # calls mode: only __init__ would be reachable (absent here).
        assert "core/model.py::System.run" not in calls
        # wide mode: construction makes every method reachable.
        assert "core/model.py::System.run" in wide
        assert "core/model.py::System.helper" in wide

    def test_wide_mode_treats_class_reference_as_constructible(self):
        g = graph_of({
            "sim/driver.py": (
                "from repro.core.model import System\n"
                "REGISTRY = {'sys': System}\n"
                "def run_workload():\n    return REGISTRY\n"
            ),
            "core/model.py": (
                "class System:\n    def run(self):\n        return 1\n"
            ),
        })
        wide = reach(g, [("sim/driver.py", "run_workload")],
                     mode="wide")
        # run_workload reaches the module body (wide), which references
        # the class: its methods become reachable.
        assert "core/model.py::System.run" in wide

    def test_class_root_expands_to_methods(self):
        g = graph_of({
            "numa/system.py": (
                "class MultiGpuSystem:\n"
                "    def run(self):\n        return self.step()\n"
                "    def step(self):\n        return 1\n"
            ),
        })
        r = reach(g, [("numa/system.py", "MultiGpuSystem")],
                  mode="calls")
        assert "numa/system.py::MultiGpuSystem.run" in r
        assert "numa/system.py::MultiGpuSystem.step" in r


class TestScope:
    POLICY = ScopePolicy(
        roots=(("sim/driver.py", "run_workload"),),
        exclude_prefixes=("sim/", "obs/"),
    )

    def test_derived_scope_excludes_orchestration(self):
        g = graph_of(CHAIN_TREE)
        scope = derive_scope(g, self.POLICY)
        assert "core/helper_a.py" in scope.modules
        assert "core/helper_b.py" in scope.modules
        assert "sim/driver.py" not in scope.modules
        assert "obs/report.py" not in scope.modules
        assert scope.prefixes == ["core/"]

    def test_package_closure_pulls_siblings(self):
        files = dict(CHAIN_TREE)
        files["core/untouched.py"] = "def nothing():\n    return 0\n"
        scope = derive_scope(graph_of(files), self.POLICY)
        assert scope.modules["core/untouched.py"] == "package-closure"
        assert scope.modules["core/helper_b.py"] == "reachable"

    def test_document_and_diff_round_trip(self):
        g = graph_of(CHAIN_TREE)
        scope = derive_scope(g, self.POLICY)
        doc = scope_document(scope, g, self.POLICY,
                             repo_prefix="src/repro/")
        assert doc["result_affecting"] == ["src/repro/core/"]
        assert diff_scope(doc, doc) == []

    def test_diff_reports_drift_both_directions(self):
        g = graph_of(CHAIN_TREE)
        scope = derive_scope(g, self.POLICY)
        doc = scope_document(scope, g, self.POLICY,
                             repo_prefix="src/repro/")
        stale = {**doc, "modules": {}, "result_affecting": []}
        problems = diff_scope(stale, doc)
        assert any("missing from the committed scope" in p
                   for p in problems)
        extra = {**doc,
                 "modules": {**doc["modules"], "gone/old.py": "reachable"}}
        problems = diff_scope(extra, doc)
        assert any("no longer derived" in p for p in problems)


class TestRenderChain:
    def test_renders_indented_steps(self):
        out = render_chain([
            {"func": "run_workload", "path": "sim/driver.py",
             "line": 0, "note": "root"},
            {"func": "compute", "path": "core/helper_a.py",
             "line": 3, "note": "call"},
            {"func": "stamp", "path": "core/helper_b.py",
             "line": 2, "note": "calls time.time()"},
        ])
        lines = out.splitlines()
        assert lines[0].startswith("run_workload")
        assert lines[1].startswith("  compute")
        assert lines[2].startswith("    stamp")
        assert "[calls time.time()]" in lines[2]
        assert "[call]" not in lines[1]  # plain calls are not annotated
