"""Tests for sharing classification (the Fig. 4 / Fig. 5 machinery)."""

import pytest

from repro.analysis.sharing import (
    PRIVATE,
    RO_SHARED,
    RW_SHARED,
    SharingProfile,
    profile_sharing,
)
from tests.conftest import make_kernel, make_trace, small_config


def profile_of(lines, writes, cta_ids, n_ctas=4, n_gpus=4):
    """Profile a single-kernel trace; CTA i -> GPU i (4 CTAs, 4 GPUs)."""
    cfg = small_config(n_gpus=n_gpus)
    k = make_kernel(lines, writes=writes, cta_ids=cta_ids, n_ctas=n_ctas)
    return profile_sharing(make_trace([k]), cfg), cfg


class TestClassification:
    def test_private_page(self):
        # All accesses from CTA 0 (GPU 0).
        p, _ = profile_of([0, 1, 2], [0, 0, 0], [0, 0, 0])
        assert p.classify_page(0) == PRIVATE

    def test_ro_shared_page(self):
        # Line 0 read by GPU 0 and GPU 3 (page 0 is lines 0..15).
        p, _ = profile_of([0, 0], [0, 0], [0, 3])
        assert p.classify_page(0) == RO_SHARED

    def test_rw_shared_page(self):
        p, _ = profile_of([0, 0], [0, 1], [0, 3])
        assert p.classify_page(0) == RW_SHARED

    def test_private_with_writes_stays_private(self):
        p, _ = profile_of([0, 0], [1, 1], [0, 0])
        assert p.classify_page(0) == PRIVATE

    def test_false_sharing_page_vs_line(self):
        """One written line makes the page RW; other lines stay RO."""
        # GPU 0 writes line 0; GPUs 0 and 1 read lines 0..3 (all page 0).
        lines = [0, 1, 2, 3, 0, 1, 2, 3, 0]
        writes = [0] * 8 + [1]
        ctas = [0, 0, 0, 0, 1, 1, 1, 1, 0]
        p, _ = profile_of(lines, writes, ctas)
        assert p.classify_page(0) == RW_SHARED
        assert p.classify_line(0) == RW_SHARED
        assert p.classify_line(1) == RO_SHARED
        assert p.classify_line(2) == RO_SHARED

    def test_unknown_unit_is_private(self):
        p, _ = profile_of([0], [0], [0])
        assert p.classify_page(999) == PRIVATE
        assert p.classify_line(999) == PRIVATE


class TestAccessDistribution:
    def test_fractions_sum_to_one(self):
        p, _ = profile_of([0, 0, 16, 32], [0, 1, 0, 0], [0, 1, 2, 2])
        for gran in ("page", "line"):
            d = p.access_distribution(gran)
            total = d.private + d.ro_shared + d.rw_shared
            assert total == pytest.approx(1.0)

    def test_page_rw_exceeds_line_rw_under_false_sharing(self):
        lines = [0, 1, 2, 3] * 6 + [0]
        writes = [0] * 24 + [1]
        ctas = ([0] * 4 + [1] * 4 + [2] * 4) * 2 + [0]
        p, _ = profile_of(lines, writes, ctas)
        page_d = p.access_distribution("page")
        line_d = p.access_distribution("line")
        assert page_d.rw_shared > line_d.rw_shared

    def test_empty_distribution(self):
        p = SharingProfile("x", 4, 16, 2048)
        d = p.access_distribution("page")
        assert d.private == d.ro_shared == d.rw_shared == 0.0

    def test_unknown_granularity(self):
        p = SharingProfile("x", 4, 16, 2048)
        with pytest.raises(ValueError):
            p.access_distribution("byte")

    def test_shared_property(self):
        p, _ = profile_of([0, 0], [0, 0], [0, 1])
        d = p.access_distribution("page")
        assert d.shared == pytest.approx(1.0)


class TestFootprints:
    def test_shared_footprint_counts_accessors_minus_one(self):
        # Page 0 accessed by 3 GPUs -> cover cost 2 pages.
        p, cfg = profile_of([0, 0, 0], [0, 0, 0], [0, 1, 2])
        assert p.shared_footprint_bytes() == 2 * cfg.page_bytes

    def test_private_pages_cost_nothing(self):
        p, cfg = profile_of([0, 16], [0, 0], [0, 0])
        assert p.shared_footprint_bytes() == 0

    def test_footprint_bytes(self):
        p, cfg = profile_of([0, 16, 32], [0, 0, 0], [0, 0, 0])
        assert p.footprint_bytes() == 3 * cfg.page_bytes

    def test_sorted_access_counts_descending(self):
        p, _ = profile_of([0, 0, 0, 16], [0, 0, 0, 0], [0, 0, 0, 0])
        assert p.sorted_page_access_counts() == [3, 1]


class TestPolicyInputs:
    def test_ro_shared_pages(self):
        p, _ = profile_of([0, 0, 16, 16], [0, 0, 0, 1], [0, 1, 0, 1])
        assert p.ro_shared_pages() == {0}
        assert p.shared_pages() == {0, 1}

    def test_accessors_of_page(self):
        p, _ = profile_of([0, 0], [0, 0], [1, 3])
        assert p.accessors_of_page(0) == [1, 3]
        assert p.accessors_of_page(42) == []


class TestMultiKernel:
    def test_sharing_accumulates_across_kernels(self):
        cfg = small_config()
        k0 = make_kernel([0], writes=[0], cta_ids=[0], kernel_id=0)
        k1 = make_kernel([0], writes=[0], cta_ids=[3], kernel_id=1)
        p = profile_sharing(make_trace([k0, k1]), cfg)
        assert p.classify_page(0) == RO_SHARED

    def test_access_counts_accumulate(self):
        cfg = small_config()
        k0 = make_kernel([0, 0], writes=[0, 0], cta_ids=[0, 0])
        k1 = make_kernel([0], writes=[0], cta_ids=[0], kernel_id=1)
        p = profile_sharing(make_trace([k0, k1]), cfg)
        assert p.page_access_counts[0] == 3
