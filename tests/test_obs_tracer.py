"""Tests for the ring-buffered event tracer (repro.obs.tracer/events)."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_MIGRATION,
    EVENT_RDC,
    TraceEvent,
)
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer


class TestTraceEvent:
    def test_to_dict_includes_payload(self):
        ev = TraceEvent(EVENT_MIGRATION, kernel=3, gpu=1, count=1,
                        payload={"page": 7, "src": 0})
        d = ev.to_dict()
        assert d["kind"] == EVENT_MIGRATION
        assert d["kernel"] == 3 and d["gpu"] == 1
        assert d["payload"] == {"page": 7, "src": 0}

    def test_to_dict_omits_empty_payload(self):
        assert "payload" not in TraceEvent(EVENT_RDC).to_dict()

    def test_event_kinds_catalogue(self):
        assert EVENT_MIGRATION in EVENT_KINDS
        assert all(isinstance(k, str) and k for k in EVENT_KINDS)


class TestRing:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.record(EVENT_RDC, kernel=i)
        assert len(t) == 3
        assert t.dropped == 2
        assert [ev.kernel for ev in t.events()] == [2, 3, 4]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_default_capacity(self):
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_clear_resets_everything(self):
        t = Tracer(capacity=2)
        for i in range(4):
            t.record(EVENT_RDC)
        t.clear()
        assert len(t) == 0 and t.dropped == 0


class TestSampling:
    def test_stride_keeps_every_nth(self):
        t = Tracer(sample_every=3)
        for i in range(9):
            t.record(EVENT_RDC, kernel=i)
        assert [ev.kernel for ev in t.events()] == [0, 3, 6]

    def test_per_kind_override(self):
        t = Tracer(sample_every=1, sample_overrides={EVENT_RDC: 2})
        for i in range(4):
            t.record(EVENT_RDC, kernel=i)
            t.record(EVENT_MIGRATION, kernel=i)
        kinds = [(ev.kind, ev.kernel) for ev in t.events()]
        assert kinds.count((EVENT_RDC, 0)) == 1
        assert sum(1 for k, _ in kinds if k == EVENT_RDC) == 2
        assert sum(1 for k, _ in kinds if k == EVENT_MIGRATION) == 4

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_record_many_bypasses_sampling(self):
        t = Tracer(sample_every=100)
        t.record_many(EVENT_RDC, 5000, kernel=0, hits=4000, misses=1000)
        t.record_many(EVENT_RDC, 1234, kernel=1)
        assert len(t) == 2
        assert t.events()[0].count == 5000
        assert t.events()[0].payload == {"hits": 4000, "misses": 1000}

    def test_record_many_skips_zero_counts(self):
        t = Tracer()
        t.record_many(EVENT_RDC, 0, kernel=0)
        assert len(t) == 0


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(EVENT_RDC)
        t.record_many(EVENT_RDC, 99)
        assert len(t) == 0 and t.dropped == 0
