"""Stream, TLB, and placement behaviour of the full system."""

from repro.config import (
    COHERENCE_SOFTWARE,
    PLACEMENT_INTERLEAVED,
    PLACEMENT_ROUND_ROBIN,
)
from repro.numa.system import MultiGpuSystem
from tests.conftest import make_kernel, make_trace, small_config, tiny_rdc_config


def kernel_on_gpu0(lines, stream=0, kernel_id=0, writes=None):
    return make_kernel(
        lines,
        writes=writes,
        cta_ids=[0] * len(lines),
        n_ctas=4,
        kernel_id=kernel_id,
        stream=stream,
    )


class TestStreams:
    def test_per_stream_epoch_isolation(self):
        """A kernel boundary on stream 0 must not flush stream 1's RDC."""
        s = MultiGpuSystem(tiny_rdc_config(coherence=COHERENCE_SOFTWARE))
        # Home line 3 at GPU 3, then cache it at GPU 0 under stream 1.
        s.access(3, 3, False)
        k = kernel_on_gpu0([3], stream=1)
        s._stream = 1
        s.run_kernel(k)  # boundary advances stream 1's epoch only
        # Re-install under stream 1 and bound stream 0: copy survives.
        s._stream = 1
        s.access(0, 3, False)
        carve = s.nodes[0].carve
        assert carve.rdc.contains(3, stream=1)
        carve.kernel_boundary(stream=0)
        assert carve.rdc.contains(3, stream=1)
        carve.kernel_boundary(stream=1)
        assert not carve.rdc.contains(3, stream=1)

    def test_stream_recorded_from_kernel(self):
        s = MultiGpuSystem(small_config())
        s.run_kernel(kernel_on_gpu0([5], stream=7))
        assert s._stream == 7


class TestTlbModelling:
    def test_tlb_enabled_counts_walks(self):
        cfg = small_config(model_tlb=True)
        s = MultiGpuSystem(cfg)
        s.access(0, 0, False)
        s.access(0, 1, False)  # same page: L1 TLB hit
        stats = s.nodes[0].tlb.stats
        assert stats.walks == 1
        assert stats.l1_hits == 1

    def test_tlb_disabled_by_default(self):
        s = MultiGpuSystem(small_config())
        assert s.nodes[0].tlb is None

    def test_migration_shoots_down_tlbs(self):
        cfg = small_config(model_tlb=True, migration=True,
                           migration_threshold=1)
        s = MultiGpuSystem(cfg)
        s.access(0, 5, False)
        s.access(1, 5, False)  # migrates page 0 to GPU 1
        # GPU 0 must re-walk for the migrated page.
        walks_before = s.nodes[0].tlb.stats.walks
        s.access(0, 5, False)
        assert s.nodes[0].tlb.stats.walks == walks_before + 1


class TestPlacementPolicies:
    def _one_gpu_trace(self):
        # GPU 0 touches four different pages (16 lines/page).
        return make_trace([kernel_on_gpu0([0, 16, 32, 48])])

    def test_round_robin_spreads_homes(self):
        cfg = small_config(placement=PLACEMENT_ROUND_ROBIN)
        s = MultiGpuSystem(cfg)
        s.run(self._one_gpu_trace())
        homes = {s.pagetable.peek_home(p) for p in range(4)}
        assert homes == {0, 1, 2, 3}

    def test_interleaved_hashes_pages(self):
        cfg = small_config(placement=PLACEMENT_INTERLEAVED)
        s = MultiGpuSystem(cfg)
        s.run(self._one_gpu_trace())
        for p in range(4):
            assert s.pagetable.peek_home(p) == p % 4

    def test_first_touch_keeps_everything_local(self):
        s = MultiGpuSystem(small_config())
        result = s.run(self._one_gpu_trace())
        assert result.total(include_warmup=True).remote_reads == 0


class TestLabels:
    def test_default_labels_describe_config(self):
        assert MultiGpuSystem(small_config()).label == "numa-gpu"
        assert MultiGpuSystem(
            small_config().single_gpu()
        ).label == "single-gpu"
        assert "carve" in MultiGpuSystem(tiny_rdc_config()).label
        assert "mig" in MultiGpuSystem(
            small_config(migration=True)
        ).label

    def test_explicit_label_wins(self):
        s = MultiGpuSystem(small_config(), label="custom")
        assert s.label == "custom"
