"""Unit tests for the cross-module call graph (repro.lint.graph).

Each test builds a tiny in-memory project ({rel_path: source}) and
asserts the documented precision contract: which call forms produce
edges, which are deliberately left unresolved, and how the on-disk
cache keys on the source tree.
"""

import ast

from repro.lint.graph import MODULE_BODY, build_graph, tree_digest


def graph_of(files, package="repro", **kwargs):
    parsed = [(rel, ast.parse(src)) for rel, src in sorted(files.items())]
    sources = sorted(files.items())
    return build_graph(parsed, package=package, sources=sources, **kwargs)


def edges(graph, fid):
    return {c.target for c in graph.functions[fid].calls
            if c.target is not None}


class TestResolution:
    def test_same_module_direct_call(self):
        g = graph_of({"a.py": "def f():\n    return h()\ndef h():\n    return 1\n"})
        assert edges(g, "a.py::f") == {"a.py::h"}

    def test_from_import_call(self):
        g = graph_of({
            "a.py": "from repro.b import helper\ndef f():\n    return helper()\n",
            "b.py": "def helper():\n    return 1\n",
        })
        assert edges(g, "a.py::f") == {"b.py::helper"}

    def test_module_attribute_call_with_alias(self):
        g = graph_of({
            "a.py": "from repro import b as bee\ndef f():\n    return bee.helper()\n",
            "b.py": "def helper():\n    return 1\n",
        })
        assert edges(g, "a.py::f") == {"b.py::helper"}

    def test_package_import_resolves_init(self):
        g = graph_of({
            "a.py": "from repro import sub\ndef f():\n    return sub.helper()\n",
            "sub/__init__.py": "def helper():\n    return 1\n",
        })
        assert edges(g, "a.py::f") == {"sub/__init__.py::helper"}

    def test_relative_import(self):
        g = graph_of({
            "sub/a.py": "from .b import helper\ndef f():\n    return helper()\n",
            "sub/b.py": "def helper():\n    return 1\n",
        })
        assert edges(g, "sub/a.py::f") == {"sub/b.py::helper"}

    def test_construction_is_a_construct_edge(self):
        g = graph_of({
            "a.py": ("from repro.b import Widget\n"
                     "def f():\n    return Widget()\n"),
            "b.py": "class Widget:\n    def __init__(self):\n        pass\n",
        })
        (site,) = [c for c in g.functions["a.py::f"].calls
                   if c.target is not None]
        assert site.construct
        assert site.target == "b.py::Widget"

    def test_method_on_typed_local(self):
        g = graph_of({
            "a.py": ("from repro.b import Widget\n"
                     "def f():\n    w = Widget()\n    return w.run()\n"),
            "b.py": "class Widget:\n    def run(self):\n        return 1\n",
        })
        assert "b.py::Widget.run" in edges(g, "a.py::f")

    def test_method_on_annotated_parameter(self):
        g = graph_of({
            "a.py": ("from repro.b import Widget\n"
                     "def f(w: Widget):\n    return w.run()\n"),
            "b.py": "class Widget:\n    def run(self):\n        return 1\n",
        })
        assert "b.py::Widget.run" in edges(g, "a.py::f")

    def test_self_method_and_self_attr_method(self):
        g = graph_of({
            "a.py": (
                "from repro.b import Widget\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self.w = Widget()\n"
                "    def go(self):\n"
                "        self.step()\n"
                "        self.w.run()\n"
                "    def step(self):\n"
                "        pass\n"
            ),
            "b.py": "class Widget:\n    def run(self):\n        return 1\n",
        })
        got = edges(g, "a.py::Box.go")
        assert "a.py::Box.step" in got
        assert "b.py::Widget.run" in got

    def test_inherited_method_resolves_through_project_base(self):
        g = graph_of({
            "a.py": (
                "from repro.b import Base\n"
                "class Child(Base):\n    pass\n"
                "def f():\n    c = Child()\n    return c.run()\n"
            ),
            "b.py": "class Base:\n    def run(self):\n        return 1\n",
        })
        assert "b.py::Base.run" in edges(g, "a.py::f")

    def test_chained_construction_method_call(self):
        g = graph_of({
            "a.py": ("from repro.b import Widget\n"
                     "def f():\n    return Widget().run()\n"),
            "b.py": "class Widget:\n    def run(self):\n        return 1\n",
        })
        assert "b.py::Widget.run" in edges(g, "a.py::f")

    def test_nested_def_and_lambda_inline_into_definer(self):
        g = graph_of({
            "a.py": (
                "def f():\n"
                "    def inner():\n"
                "        return h()\n"
                "    g2 = lambda: h()\n"
                "    return inner, g2\n"
                "def h():\n    return 1\n"
            ),
        })
        assert edges(g, "a.py::f") == {"a.py::h"}

    def test_module_body_is_a_pseudo_function(self):
        g = graph_of({
            "a.py": "def h():\n    return 1\nREGISTRY = {'x': h()}\n",
        })
        assert edges(g, f"a.py::{MODULE_BODY}") == {"a.py::h"}


class TestDeliberatelyUnresolved:
    def test_unannotated_parameter_call_is_unresolved(self):
        g = graph_of({
            "a.py": "def f(w):\n    return w.run()\n",
        })
        assert edges(g, "a.py::f") == set()
        assert g.unresolved_calls >= 1

    def test_to_thread_value_does_not_create_an_edge(self):
        # The executor hop passes the function as a value: no edge, so
        # CONC001 chains genuinely end at asyncio.to_thread.
        g = graph_of({
            "a.py": (
                "import asyncio\n"
                "def blocking():\n    return 1\n"
                "async def route():\n"
                "    return await asyncio.to_thread(blocking)\n"
            ),
        })
        assert "a.py::blocking" not in edges(g, "a.py::route")

    def test_getattr_dispatch_is_unresolved(self):
        g = graph_of({
            "a.py": ("def f(app, name):\n"
                     "    return getattr(app, name)()\n"),
        })
        assert edges(g, "a.py::f") == set()


class TestFacts:
    def test_global_writes_tracked(self):
        g = graph_of({
            "a.py": (
                "STATE = {}\n"
                "ITEMS = []\n"
                "def set_key(k):\n    STATE[k] = 1\n"
                "def push(x):\n    ITEMS.append(x)\n"
                "def declared():\n    global STATE\n    STATE = {}\n"
            ),
        })
        assert [w[0] for w in g.functions["a.py::set_key"].global_writes] \
            == ["STATE"]
        assert [w[0] for w in g.functions["a.py::push"].global_writes] \
            == ["ITEMS"]
        assert [w[0] for w in g.functions["a.py::declared"].global_writes] \
            == ["STATE"]

    def test_local_shadow_is_not_a_global_write(self):
        g = graph_of({
            "a.py": (
                "STATE = {}\n"
                "def f():\n    STATE = {}\n    STATE['x'] = 1\n"
            ),
        })
        assert g.functions["a.py::f"].global_writes == []

    def test_rng_escape_recorded(self):
        g = graph_of({
            "a.py": (
                "import random\n"
                "from repro.b import simulate\n"
                "def f():\n    return simulate(random.Random())\n"
            ),
            "b.py": "def simulate(rng):\n    return rng.random()\n",
        })
        (esc,) = g.functions["a.py::f"].rng_escapes
        assert esc.ctor == "random.Random"
        assert esc.target == "b.py::simulate"

    def test_seeded_rng_is_not_an_escape(self):
        g = graph_of({
            "a.py": (
                "import random\n"
                "from repro.b import simulate\n"
                "def f():\n    return simulate(random.Random(7))\n"
            ),
            "b.py": "def simulate(rng):\n    return rng.random()\n",
        })
        assert g.functions["a.py::f"].rng_escapes == []

    def test_held_lock_context_recorded(self):
        g = graph_of({
            "a.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
                "def f():\n"
                "    with _LOCK:\n"
                "        return 1\n"
            ),
        })
        (held,) = g.functions["a.py::f"].held_contexts
        assert held.kind == "lock"

    def test_held_open_file_recorded(self):
        g = graph_of({
            "a.py": (
                "def f(p):\n"
                "    with open(p) as fh:\n"
                "        return fh.read()\n"
            ),
        })
        (held,) = g.functions["a.py::f"].held_contexts
        assert held.kind == "file"


class TestCache:
    def test_digest_is_order_free_and_content_sensitive(self):
        a = [("a.py", "x = 1\n"), ("b.py", "y = 2\n")]
        assert tree_digest(a) == tree_digest(list(reversed(a)))
        assert tree_digest(a) != tree_digest([("a.py", "x = 2\n"),
                                              ("b.py", "y = 2\n")])

    def test_cache_round_trip(self, tmp_path):
        files = {"a.py": "def f():\n    return h()\ndef h():\n    return 1\n"}
        g1 = graph_of(files, cache_dir=tmp_path)
        (pkl,) = list(tmp_path.glob("graph-*.pkl"))
        g2 = graph_of(files, cache_dir=tmp_path)
        assert g2.stats() == g1.stats()
        assert list(tmp_path.glob("graph-*.pkl")) == [pkl]

    def test_cache_invalidates_on_source_change(self, tmp_path):
        graph_of({"a.py": "x = 1\n"}, cache_dir=tmp_path)
        (first,) = list(tmp_path.glob("graph-*.pkl"))
        graph_of({"a.py": "x = 2\n"}, cache_dir=tmp_path)
        (second,) = list(tmp_path.glob("graph-*.pkl"))
        assert first.name != second.name  # stale artifact replaced

    def test_exports_render(self):
        g = graph_of({"a.py": "def f():\n    return h()\ndef h():\n    return 1\n"})
        doc = g.to_json()
        assert doc["stats"]["functions"] == 3  # f, h, <module>
        assert '"a.py::f" -> "a.py::h"' in g.to_dot()
