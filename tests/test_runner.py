"""Tests for the fault-tolerant execution engine (sim/runner.py).

Worker functions must be top-level so they survive pickling into
spawn-started subprocesses.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.sim.journal import Journal
from repro.sim.runner import (
    KIND_CRASH,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    FAULT_ENV,
    FAULT_STATE_ENV,
    RunnerPolicy,
    Task,
    run_tasks,
)


def _ok(x):
    return x * 2


def _boom(_x):
    raise ValueError("deliberate test failure")


def _sleepy(_x):
    time.sleep(60)


def _die(_x):
    os.kill(os.getpid(), signal.SIGKILL)


def _flaky(marker_dir, x):
    """Fail on the first call, succeed afterwards (crosses processes)."""
    sentinel = os.path.join(marker_dir, "attempted")
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("first attempt always fails")
    return x + 100


def _tasks(fn, keys, arg=1):
    return [Task(key=k, fn=fn, args=(arg,)) for k in keys]


def _journal_events(path, event=None):
    with open(path) as f:
        records = [json.loads(line) for line in f]
    if event is None:
        return records
    return [r for r in records if r["event"] == event]


class TestPolicy:
    def test_defaults_are_serial_inline(self):
        p = RunnerPolicy()
        assert not p.isolated

    def test_jobs_or_timeout_isolate(self):
        assert RunnerPolicy(jobs=2).isolated
        assert RunnerPolicy(timeout_s=5.0).isolated

    def test_validate_rejects_bad_values(self):
        for bad in (
            RunnerPolicy(jobs=0),
            RunnerPolicy(timeout_s=-1.0),
            RunnerPolicy(retries=-1),
            RunnerPolicy(resume=True),  # resume without a journal
        ):
            with pytest.raises(ValueError):
                bad.validate()

    def test_backoff_grows_and_is_deterministic(self):
        p = RunnerPolicy(backoff_base_s=0.5, backoff_max_s=4.0)
        d1, d2, d3 = (p.backoff_s("k", a) for a in (1, 2, 3))
        assert d1 < d2 < d3
        assert p.backoff_s("k", 2) == d2  # same inputs, same jitter

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(_tasks(_ok, ["a", "a"]), RunnerPolicy())


class TestInline:
    def test_success(self):
        batch = run_tasks(_tasks(_ok, ["a", "b"], arg=3), RunnerPolicy())
        assert batch.ok
        assert batch.results == {"a": 6, "b": 6}

    def test_exception_reported_not_raised(self):
        tasks = _tasks(_ok, ["a"]) + _tasks(_boom, ["b"])
        batch = run_tasks(tasks, RunnerPolicy())
        assert not batch.ok
        assert batch.results["a"] == 2
        f = batch.failures["b"]
        assert f.kind == KIND_EXCEPTION
        assert f.exception_type == "ValueError"
        assert "deliberate" in f.message
        assert "deliberate" in f.traceback
        assert f.attempts == 1

    def test_fail_fast_cancels_the_rest(self):
        tasks = _tasks(_boom, ["a"]) + _tasks(_ok, ["b", "c"])
        batch = run_tasks(tasks, RunnerPolicy(keep_going=False))
        assert set(batch.failures) == {"a"}
        assert batch.cancelled == ["b", "c"]
        assert not batch.results


class TestIsolated:
    def test_parallel_success(self):
        batch = run_tasks(
            _tasks(_ok, ["a", "b", "c"], arg=5), RunnerPolicy(jobs=2)
        )
        assert batch.ok
        assert batch.results == {"a": 10, "b": 10, "c": 10}

    def test_worker_timeout(self):
        tasks = _tasks(_sleepy, ["slow"]) + _tasks(_ok, ["fast"])
        start = time.monotonic()
        batch = run_tasks(tasks, RunnerPolicy(jobs=2, timeout_s=1.0))
        assert time.monotonic() - start < 30  # did not wait the full sleep
        assert batch.results["fast"] == 2
        f = batch.failures["slow"]
        assert f.kind == KIND_TIMEOUT
        assert f.exception_type == "WorkerTimeout"

    def test_worker_killed_mid_run(self):
        tasks = _tasks(_die, ["doomed"]) + _tasks(_ok, ["fine"])
        batch = run_tasks(tasks, RunnerPolicy(jobs=2))
        assert batch.results["fine"] == 2
        f = batch.failures["doomed"]
        assert f.kind == KIND_CRASH
        assert f.exception_type == "WorkerCrash"
        assert "signal" in f.message or "exit code" in f.message

    def test_retry_then_succeed(self, tmp_path):
        tasks = [Task(key="flaky", fn=_flaky, args=(str(tmp_path), 1))]
        policy = RunnerPolicy(jobs=2, retries=2, backoff_base_s=0.01)
        batch = run_tasks(tasks, policy)
        assert batch.ok
        assert batch.results["flaky"] == 101

    def test_exhausted_retries_report_attempts(self):
        policy = RunnerPolicy(jobs=2, retries=2, backoff_base_s=0.01)
        batch = run_tasks(_tasks(_boom, ["b"]), policy)
        assert batch.failures["b"].attempts == 3


class TestFaultInjection:
    def test_injected_crash_hits_matching_key_only(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:victim")
        batch = run_tasks(
            _tasks(_ok, ["victim", "bystander"]), RunnerPolicy(jobs=2)
        )
        assert batch.failures["victim"].kind == KIND_CRASH
        assert batch.results["bystander"] == 2

    def test_injected_flaky_succeeds_on_retry(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_ENV, "flaky:f1")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        policy = RunnerPolicy(jobs=2, retries=1, backoff_base_s=0.01)
        batch = run_tasks(_tasks(_ok, ["f1"]), policy)
        assert batch.ok
        assert batch.results["f1"] == 2


class TestJournalResume:
    def test_journal_records_lifecycle(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        tasks = _tasks(_ok, ["a"]) + _tasks(_boom, ["b"])
        run_tasks(tasks, RunnerPolicy(journal_path=journal))
        events = [r["event"] for r in _journal_events(journal)]
        assert events.count("start") == 2
        assert "done" in events and "failed" in events
        failed = _journal_events(journal, "failed")[0]
        assert failed["key"] == "b"
        assert failed["exception_type"] == "ValueError"

    def test_resume_skips_completed_points(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        tasks = _tasks(_ok, ["a", "b"]) + _tasks(_boom, ["c"])
        first = run_tasks(tasks, RunnerPolicy(journal_path=journal))
        assert set(first.failures) == {"c"}

        # Second invocation: same keys, all would now succeed.
        retry = _tasks(_ok, ["a", "b", "c"], arg=7)
        second = run_tasks(
            retry, RunnerPolicy(journal_path=journal, resume=True)
        )
        assert second.ok
        assert sorted(second.resumed) == ["a", "b"]
        # Resumed points carry the first run's results (arg=1), and only
        # the failed point was actually re-executed.
        assert second.results["a"] == 2
        assert second.results["c"] == 14
        starts = _journal_events(journal, "start")
        assert [s["key"] for s in starts].count("c") == 2
        assert [s["key"] for s in starts].count("a") == 1

    def test_resume_results_survive_without_sim_cache(self, tmp_path):
        # The journal's sidecar pickles, not the sim cache, feed resume;
        # conftest already sets REPRO_NO_CACHE=1 for every test.
        journal = tmp_path / "j.jsonl"
        run_tasks(_tasks(_ok, ["a"]), RunnerPolicy(journal_path=journal))
        assert Journal(journal).load_result("a") == 2


class TestCrashLoopBreaker:
    def test_breaker_fails_the_batch(self, monkeypatch):
        # Every task crashes its worker; with generous retries the batch
        # would previously grind through respawn after respawn.  The
        # breaker opens after max_slot_crashes consecutive deaths of one
        # slot and fails the batch with a diagnostic, keep_going or not.
        from repro.sim.runner import KIND_CRASH_LOOP

        monkeypatch.setenv(FAULT_ENV, "crash:")
        policy = RunnerPolicy(
            jobs=2, retries=10, backoff_base_s=0.01,
            max_slot_crashes=2, keep_going=True,
        )
        batch = run_tasks(_tasks(_ok, ["a", "b", "c", "d"]), policy)
        assert not batch.ok
        loop_failures = [
            f for f in batch.failures.values() if f.kind == KIND_CRASH_LOOP
        ]
        assert loop_failures, batch.failures
        report = loop_failures[0]
        assert report.exception_type == "CrashLoop"
        assert "died 2 times in a row" in report.message
        assert "breaker opened" in report.message

    def test_intermittent_crashes_do_not_trip(self, monkeypatch):
        # One crashing key among healthy ones: its two attempts (retries
        # exhausted) can produce at most two consecutive deaths on any
        # slot, under a breaker of three — so the batch must finish
        # through the ordinary retry/crash path, never the breaker.
        from repro.sim.runner import KIND_CRASH_LOOP

        monkeypatch.setenv(FAULT_ENV, "crash:victim")
        policy = RunnerPolicy(
            jobs=2, retries=1, backoff_base_s=0.01, max_slot_crashes=3,
        )
        batch = run_tasks(_tasks(_ok, ["a", "b", "victim", "c"]), policy)
        kinds = {f.kind for f in batch.failures.values()}
        assert KIND_CRASH_LOOP not in kinds
        assert batch.results["a"] == 2

    def test_policy_rejects_nonpositive_breaker(self):
        with pytest.raises(ValueError):
            RunnerPolicy(max_slot_crashes=0).validate()
