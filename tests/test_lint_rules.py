"""Fixture-driven tests for the repro.lint AST rules.

Each rule gets at least one *bad* fixture it must fire on and one
*good* fixture it must stay silent on, plus suppression-comment
coverage.  Fixtures are plain source strings handed to
:class:`~repro.lint.rules.ModuleContext` under a chosen relative path,
so no files need to exist on disk.
"""

from types import SimpleNamespace

from repro.lint.findings import apply_suppressions, parse_suppressions
from repro.lint.resolver import MetricNameResolver
from repro.lint.rules import (
    ExhaustivenessRule,
    MetricNameRule,
    ModuleContext,
    UnseededRandomRule,
    UnsortedIterationRule,
    WallClockRule,
)


def run_rule(rule, rel_path, source):
    ctx = ModuleContext(rel_path, source)
    findings = list(rule.check_module(ctx))
    apply_suppressions(findings, parse_suppressions(source))
    return findings


def new_findings(rule, rel_path, source):
    return [f for f in run_rule(rule, rel_path, source) if f.is_new]


# ---------------------------------------------------------------------------
# DET001 — wall clock on the deterministic path
# ---------------------------------------------------------------------------

class TestWallClock:
    def test_fires_on_time_time_in_core(self):
        src = "import time\nT0 = time.time()\n"
        found = new_findings(WallClockRule(), "core/foo.py", src)
        assert len(found) == 1
        assert found[0].rule == "DET001"
        assert found[0].line == 2
        assert "time.time" in found[0].message

    def test_fires_on_aliased_from_import(self):
        src = "from time import perf_counter as pc\nX = pc()\n"
        assert new_findings(WallClockRule(), "obs/foo.py", src)

    def test_fires_on_datetime_now(self):
        src = "import datetime\nNOW = datetime.datetime.now()\n"
        assert new_findings(WallClockRule(), "sim/foo.py", src)

    def test_silent_outside_scope(self):
        src = "import time\nT0 = time.time()\n"
        assert new_findings(WallClockRule(), "analysis/foo.py", src) == []

    def test_silent_on_allowlisted_runner(self):
        src = "import time\nT0 = time.monotonic()\n"
        assert new_findings(WallClockRule(), "sim/runner.py", src) == []

    def test_silent_on_non_clock_time_use(self):
        src = "import time\ntime.sleep(0)\n"
        assert new_findings(WallClockRule(), "core/foo.py", src) == []

    def test_suppression_comment(self):
        src = ("import time\n"
               "T0 = time.time()  # lint: disable=DET001\n")
        found = run_rule(WallClockRule(), "core/foo.py", src)
        assert len(found) == 1
        assert found[0].suppressed
        assert not found[0].is_new

    def test_standalone_suppression_covers_next_line(self):
        src = ("import time\n"
               "# lint: disable=DET001\n"
               "T0 = time.time()\n")
        assert new_findings(WallClockRule(), "core/foo.py", src) == []


# ---------------------------------------------------------------------------
# DET002 — unseeded / process-global randomness
# ---------------------------------------------------------------------------

class TestUnseededRandom:
    def test_fires_on_global_random(self):
        src = "import random\nX = random.random()\n"
        found = new_findings(UnseededRandomRule(), "workloads/foo.py", src)
        assert [f.rule for f in found] == ["DET002"]

    def test_fires_on_unseeded_random_ctor(self):
        src = "import random\nRNG = random.Random()\n"
        assert new_findings(UnseededRandomRule(), "workloads/foo.py", src)

    def test_fires_on_numpy_global_state(self):
        src = "import numpy as np\nX = np.random.rand(3)\n"
        assert new_findings(UnseededRandomRule(), "workloads/foo.py", src)

    def test_fires_on_unseeded_default_rng(self):
        src = ("import numpy as np\n"
               "RNG = np.random.default_rng()\n")
        assert new_findings(UnseededRandomRule(), "workloads/foo.py", src)

    def test_silent_on_seeded_ctors(self):
        src = ("import random\n"
               "import numpy as np\n"
               "A = random.Random(42)\n"
               "B = np.random.default_rng(7)\n"
               "C = np.random.default_rng(seed=7)\n")
        assert new_findings(UnseededRandomRule(), "workloads/foo.py",
                            src) == []

    def test_silent_on_method_of_seeded_instance(self):
        src = ("import random\n"
               "RNG = random.Random(1)\n"
               "X = RNG.random()\n")
        assert new_findings(UnseededRandomRule(), "workloads/foo.py",
                            src) == []

    def test_suppression_comment(self):
        src = ("import random\n"
               "X = random.random()  # lint: disable=DET002\n")
        assert new_findings(UnseededRandomRule(), "workloads/foo.py",
                            src) == []


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding diffed output
# ---------------------------------------------------------------------------

class TestUnsortedIteration:
    def test_fires_on_dict_keys_iteration(self):
        src = ("def emit(d):\n"
               "    for k in d.keys():\n"
               "        print(k)\n")
        found = new_findings(UnsortedIterationRule(), "sim/journal.py", src)
        assert [f.rule for f in found] == ["DET003"]
        assert found[0].severity == "warning"

    def test_fires_on_set_call_iteration(self):
        src = ("def emit(xs):\n"
               "    return [x for x in set(xs)]\n")
        assert new_findings(UnsortedIterationRule(), "obs/report.py", src)

    def test_fires_on_set_literal_iteration(self):
        src = ("def emit():\n"
               "    for x in {3, 1, 2}:\n"
               "        print(x)\n")
        assert new_findings(UnsortedIterationRule(), "obs/baseline.py", src)

    def test_silent_when_sorted(self):
        src = ("def emit(d, xs):\n"
               "    for k in sorted(d):\n"
               "        print(k)\n"
               "    return [x for x in sorted(set(xs))]\n")
        assert new_findings(UnsortedIterationRule(), "sim/journal.py",
                            src) == []

    def test_silent_outside_scope(self):
        src = ("def emit(d):\n"
               "    for k in d.keys():\n"
               "        print(k)\n")
        assert new_findings(UnsortedIterationRule(), "core/foo.py",
                            src) == []

    def test_suppression_comment(self):
        src = ("def emit(d):\n"
               "    # lint: disable=DET003\n"
               "    for k in d.keys():\n"
               "        print(k)\n")
        assert new_findings(UnsortedIterationRule(), "sim/journal.py",
                            src) == []


# ---------------------------------------------------------------------------
# COH001 — exhaustive protocol-enum matches
# ---------------------------------------------------------------------------

PREAMBLE = ("UNCACHED = 0\nPRIVATE = 1\nREAD_SHARED = 2\n"
            "RW_SHARED = 3\n")


class TestExhaustiveness:
    def test_fires_on_partial_chain_without_else(self):
        src = PREAMBLE + (
            "def on_event(state):\n"
            "    if state == UNCACHED:\n"
            "        out = 1\n"
            "    elif state == PRIVATE:\n"
            "        out = 2\n"
            "    return out\n"
        )
        found = new_findings(ExhaustivenessRule(), "core/imst.py", src)
        assert [f.rule for f in found] == ["COH001"]
        assert "READ_SHARED" in found[0].message
        assert "RW_SHARED" in found[0].message

    def test_silent_with_else(self):
        src = PREAMBLE + (
            "def on_event(state):\n"
            "    if state == UNCACHED:\n"
            "        return 1\n"
            "    elif state == PRIVATE:\n"
            "        return 2\n"
            "    else:\n"
            "        return 0\n"
        )
        assert new_findings(ExhaustivenessRule(), "core/imst.py", src) == []

    def test_silent_with_full_coverage(self):
        src = PREAMBLE + (
            "def on_event(state):\n"
            "    if state in (UNCACHED, PRIVATE):\n"
            "        return 1\n"
            "    elif state in (READ_SHARED, RW_SHARED):\n"
            "        return 2\n"
        )
        assert new_findings(ExhaustivenessRule(), "core/imst.py", src) == []

    def test_silent_on_guard_run_with_terminal_follower(self):
        src = PREAMBLE + (
            "def on_event(state):\n"
            "    if state == UNCACHED:\n"
            "        return 1\n"
            "    if state == PRIVATE:\n"
            "        return 2\n"
            "    raise ValueError(state)\n"
        )
        assert new_findings(ExhaustivenessRule(), "core/imst.py", src) == []

    def test_fires_on_dict_missing_member(self):
        src = PREAMBLE + (
            "NAMES = {UNCACHED: 'u', PRIVATE: 'p', READ_SHARED: 'r'}\n"
        )
        found = new_findings(ExhaustivenessRule(), "core/imst.py", src)
        assert found and "RW_SHARED" in found[0].message

    def test_fires_on_undeclared_group_member(self):
        src = PREAMBLE + (
            "EXCLUSIVE = 4\n"
            "NAMES = {UNCACHED: 'u', PRIVATE: 'p', READ_SHARED: 'r',\n"
            "         RW_SHARED: 'w', EXCLUSIVE: 'x'}\n"
        )
        found = new_findings(ExhaustivenessRule(), "core/imst.py", src)
        assert found and "EXCLUSIVE" in found[0].message

    def test_silent_on_single_member_guard(self):
        src = PREAMBLE + (
            "def touch(state):\n"
            "    if state == RW_SHARED:\n"
            "        return True\n"
            "    return False\n"
        )
        assert new_findings(ExhaustivenessRule(), "core/imst.py", src) == []

    def test_silent_outside_grouped_modules(self):
        src = PREAMBLE + (
            "def on_event(state):\n"
            "    if state == UNCACHED:\n"
            "        out = 1\n"
            "    elif state == PRIVATE:\n"
            "        out = 2\n"
            "    return out\n"
        )
        assert new_findings(ExhaustivenessRule(), "core/other.py",
                            src) == []

    def test_real_modules_are_clean(self):
        from pathlib import Path

        import repro

        pkg = Path(repro.__file__).parent
        rule = ExhaustivenessRule()
        for rel in rule.GROUPS:
            src = (pkg / rel).read_text(encoding="utf-8")
            assert new_findings(rule, rel, src) == [], rel


# ---------------------------------------------------------------------------
# OBS001 — metric-name literal resolution
# ---------------------------------------------------------------------------

def _fake_resolver():
    specs = [
        SimpleNamespace(name="rdc.hit", labels=()),
        SimpleNamespace(name="link.bytes", labels=("src", "dst")),
    ]
    return MetricNameResolver(specs, ["coh.invalidate", "kernel"])


class TestMetricNames:
    def test_fires_on_unknown_metric(self):
        rule = MetricNameRule(_fake_resolver())
        src = "NAME = 'rdc.bogus'\n"
        found = new_findings(rule, "obs/foo.py", src)
        assert [f.rule for f in found] == ["OBS001"]
        assert "rdc.bogus" in found[0].message

    def test_fires_on_wrong_labels(self):
        rule = MetricNameRule(_fake_resolver())
        src = "NAME = 'link.bytes{src}'\n"
        assert new_findings(rule, "obs/foo.py", src)

    def test_silent_on_known_metric_event_and_labels(self):
        rule = MetricNameRule(_fake_resolver())
        src = ("A = 'rdc.hit'\n"
               "B = 'link.bytes{src,dst}'\n"
               "C = 'coh.invalidate'\n")
        assert new_findings(rule, "obs/foo.py", src) == []

    def test_silent_on_unknown_prefix(self):
        rule = MetricNameRule(_fake_resolver())
        src = "MOD = 'repro.obs.registry'\n"
        assert new_findings(rule, "obs/foo.py", src) == []

    def test_live_contract_resolves_registry_names(self):
        from repro.obs.metrics import SPECS

        rule = MetricNameRule()
        src = "\n".join(
            f"N{i} = {spec.name!r}" for i, spec in enumerate(SPECS)
        ) + "\n"
        assert new_findings(rule, "obs/foo.py", src) == []

    def test_suppression_comment(self):
        rule = MetricNameRule(_fake_resolver())
        src = "NAME = 'rdc.bogus'  # lint: disable=OBS001\n"
        assert new_findings(rule, "obs/foo.py", src) == []
