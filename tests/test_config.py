"""Tests for repro.config: validation, scaling, constructors."""

import dataclasses

import pytest

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    DEFAULT_SCALE,
    LINE_BYTES,
    WRITE_BACK,
    WRITE_THROUGH,
    ConfigError,
    GpuConfig,
    LinkConfig,
    MemoryConfig,
    RdcConfig,
    SystemConfig,
    baseline_config,
    carve_config,
)


class TestDefaults:
    def test_table3_gpu_count(self):
        assert SystemConfig().n_gpus == 4

    def test_table3_page_size(self):
        assert SystemConfig().page_bytes == 2 * 2**20

    def test_table3_sms(self):
        cfg = SystemConfig()
        assert cfg.gpu.n_sms * cfg.n_gpus == 256

    def test_table3_link_bandwidth(self):
        assert SystemConfig().link.inter_gpu_bytes_per_s == 64e9

    def test_table3_cpu_link_bandwidth(self):
        assert SystemConfig().link.cpu_gpu_bytes_per_s == 32e9

    def test_table3_memory_bandwidth_totals_4tbs(self):
        cfg = SystemConfig()
        assert cfg.memory.bandwidth_bytes_per_s * cfg.n_gpus == 4e12

    def test_table3_memory_capacity_totals_128gb(self):
        cfg = SystemConfig()
        assert cfg.memory.capacity_bytes * cfg.n_gpus == 128 * 2**30

    def test_table3_l2_totals_32mb(self):
        cfg = SystemConfig()
        assert cfg.gpu.l2_bytes * cfg.n_gpus == 32 * 2**20

    def test_baseline_has_no_rdc(self):
        assert not baseline_config().has_rdc

    def test_default_validates(self):
        SystemConfig().validate()


class TestScaling:
    def test_lines_per_page(self):
        cfg = SystemConfig()
        # 2 MB page / 1024 scale / 128 B lines = 16 lines.
        assert cfg.lines_per_page == 16

    def test_l2_lines(self):
        cfg = SystemConfig()
        assert cfg.l2_lines == 8 * 2**20 // DEFAULT_SCALE // LINE_BYTES

    def test_rdc_lines_zero_without_rdc(self):
        assert SystemConfig().rdc_lines == 0

    def test_rdc_lines_2gb(self):
        cfg = carve_config()
        assert cfg.rdc_lines == 2 * 2**30 // DEFAULT_SCALE // LINE_BYTES

    def test_scaled_bytes_floor_is_one_line(self):
        cfg = SystemConfig()
        assert cfg.scaled_bytes(1) == LINE_BYTES

    def test_lines_never_zero(self):
        cfg = SystemConfig()
        assert cfg.lines(1) >= 1

    def test_scale_one_is_identity(self):
        cfg = SystemConfig().replace(scale=1)
        assert cfg.lines_per_page == 2 * 2**20 // LINE_BYTES

    def test_total_llc_bytes_is_unscaled(self):
        cfg = SystemConfig()
        assert cfg.total_llc_bytes == 32 * 2**20

    def test_compute_rate(self):
        cfg = SystemConfig()
        assert cfg.compute_rate_per_gpu == 64 * 1e9


class TestValidation:
    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(n_gpus=0)

    def test_bad_placement_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(placement="hottest-gpu")

    def test_bad_replication_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(replication="sometimes")

    def test_bad_scheduling_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(scheduling="random")

    def test_page_smaller_than_line_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(page_bytes=64)

    def test_page_not_line_multiple_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(page_bytes=LINE_BYTES * 3 + 1)

    def test_zero_migration_threshold_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(migration_threshold=0)

    def test_rdc_larger_than_memory_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().with_rdc(64 * 2**30)

    def test_bad_rdc_write_policy_rejected(self):
        with pytest.raises(ConfigError):
            RdcConfig(write_policy="write-sometimes").validate()

    def test_bad_coherence_rejected(self):
        with pytest.raises(ConfigError):
            RdcConfig(coherence="telepathy").validate()

    def test_epoch_bits_bounds(self):
        with pytest.raises(ConfigError):
            RdcConfig(epoch_bits=0).validate()
        with pytest.raises(ConfigError):
            RdcConfig(epoch_bits=33).validate()

    def test_imst_prob_bounds(self):
        with pytest.raises(ConfigError):
            RdcConfig(imst_demote_prob=1.5).validate()

    def test_gpu_validation(self):
        with pytest.raises(ConfigError):
            GpuConfig(n_sms=0).validate()
        with pytest.raises(ConfigError):
            GpuConfig(l1_ways=0).validate()

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(capacity_bytes=0).validate()
        with pytest.raises(ConfigError):
            MemoryConfig(row_bytes=16).validate()

    def test_link_validation(self):
        with pytest.raises(ConfigError):
            LinkConfig(inter_gpu_bytes_per_s=0).validate()
        with pytest.raises(ConfigError):
            LinkConfig(latency_ns=-1).validate()

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(scale=-4)


class TestConstructors:
    def test_carve_config_default_is_hwc(self):
        cfg = carve_config()
        assert cfg.rdc is not None
        assert cfg.rdc.coherence == COHERENCE_HARDWARE

    def test_carve_config_default_write_through(self):
        assert carve_config().rdc.write_policy == WRITE_THROUGH

    def test_carve_config_custom_coherence(self):
        cfg = carve_config(coherence=COHERENCE_NONE)
        assert cfg.rdc.coherence == COHERENCE_NONE

    def test_carve_config_write_back(self):
        cfg = carve_config(coherence=COHERENCE_NONE, write_policy=WRITE_BACK)
        assert cfg.rdc.write_policy == WRITE_BACK

    def test_single_gpu_strips_numa_machinery(self):
        cfg = carve_config().single_gpu()
        assert cfg.n_gpus == 1
        assert cfg.rdc is None
        assert not cfg.migration

    def test_replace_returns_new_validated_object(self):
        cfg = SystemConfig()
        cfg2 = cfg.replace(n_gpus=8)
        assert cfg.n_gpus == 4 and cfg2.n_gpus == 8

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig().n_gpus = 2

    def test_with_rdc_preserves_base(self):
        base = baseline_config(migration=True)
        cfg = base.with_rdc(1 * 2**30)
        assert cfg.migration and cfg.rdc.size_bytes == 2**30
