"""Tests for the In-Memory Sharing Tracker."""

import pytest

from repro.core.imst import (
    PRIVATE,
    READ_SHARED,
    RW_SHARED,
    UNCACHED,
    InMemorySharingTracker,
)


def tracker(demote=0.0) -> InMemorySharingTracker:
    return InMemorySharingTracker(demote_prob=demote)


class TestTransitions:
    def test_starts_uncached(self):
        assert tracker().state_of(1) == UNCACHED

    def test_first_read_privatises(self):
        t = tracker()
        assert t.on_read(1, reader=2) == PRIVATE
        assert t.owner_of(1) == 2

    def test_owner_reread_stays_private(self):
        t = tracker()
        t.on_read(1, 2)
        assert t.on_read(1, 2) == PRIVATE

    def test_second_reader_shares(self):
        t = tracker()
        t.on_read(1, 0)
        assert t.on_read(1, 3) == READ_SHARED
        assert t.owner_of(1) == -1

    def test_first_write_privatises(self):
        t = tracker()
        assert not t.on_write(1, writer=0, is_local=True)
        assert t.state_of(1) == PRIVATE

    def test_owner_write_silent(self):
        t = tracker()
        t.on_read(1, 0)
        assert not t.on_write(1, 0, is_local=True)
        assert t.stats.broadcasts_avoided == 1

    def test_foreign_write_to_private_broadcasts(self):
        t = tracker()
        t.on_read(1, 0)
        assert t.on_write(1, 2, is_local=False)
        assert t.state_of(1) == RW_SHARED

    def test_write_to_read_shared_broadcasts(self):
        t = tracker()
        t.on_read(1, 0)
        t.on_read(1, 1)
        assert t.on_write(1, 0, is_local=True)
        assert t.state_of(1) == RW_SHARED

    def test_rw_shared_keeps_broadcasting(self):
        t = tracker()
        t.on_read(1, 0)
        t.on_read(1, 1)
        t.on_write(1, 0, is_local=True)
        assert t.on_write(1, 1, is_local=False)

    def test_read_of_rw_shared_keeps_state(self):
        t = tracker()
        t.on_read(1, 0)
        t.on_read(1, 1)
        t.on_write(1, 0, is_local=True)
        assert t.on_read(1, 3) == RW_SHARED


class TestDemotion:
    def test_certain_demotion_reprivatises(self):
        t = tracker(demote=1.0)
        t.on_read(1, 0)
        t.on_read(1, 1)
        assert t.on_write(1, 0, is_local=True)  # broadcast then demote
        assert t.state_of(1) == PRIVATE
        assert t.owner_of(1) == 0
        assert t.stats.demotions == 1
        # Next local write by the new owner is silent.
        assert not t.on_write(1, 0, is_local=True)

    def test_remote_write_never_demotes(self):
        t = tracker(demote=1.0)
        t.on_read(1, 0)
        t.on_read(1, 1)
        t.on_write(1, 2, is_local=False)
        assert t.state_of(1) == RW_SHARED

    def test_zero_prob_never_demotes(self):
        t = tracker(demote=0.0)
        t.on_read(1, 0)
        t.on_read(1, 1)
        for _ in range(50):
            t.on_write(1, 0, is_local=True)
        assert t.state_of(1) == RW_SHARED

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            InMemorySharingTracker(demote_prob=-0.1)


class TestStatsAndStorage:
    def test_broadcast_rate(self):
        t = tracker()
        t.on_write(1, 0, True)   # private, silent
        t.on_read(1, 1)
        t.on_write(1, 0, True)   # shared, broadcast
        assert t.stats.broadcast_rate == pytest.approx(0.5)

    def test_histogram(self):
        t = tracker()
        t.on_read(1, 0)
        t.on_read(2, 0)
        t.on_read(2, 1)
        hist = t.histogram()
        assert hist["private"] == 1
        assert hist["read_shared"] == 1

    def test_storage_two_bits_per_tracked_line(self):
        t = tracker()
        for line in range(10):
            t.on_read(line, 0)
        assert t.storage_bits() == 20

    def test_broadcast_rate_zero_when_no_writes(self):
        assert tracker().stats.broadcast_rate == 0.0
