"""Tests for the simulation driver and result cache."""

import pytest

from repro.config import REPLICATE_ALL
from repro.perf.model import PerformanceModel
from repro.sim import cache as simcache
from repro.sim.driver import resolve_workload, run_time, run_workload, time_of
from repro.workloads import suite
from repro.workloads.base import WorkloadSpec
from tests.conftest import small_config


def fast_spec(**kw) -> WorkloadSpec:
    base = dict(
        name="fast", abbr="fast", suite="HPC",
        footprint_bytes=2**20 * 1024,
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=0.5, min_accesses=1500, max_accesses=2500,
        shared_page_frac=0.4, shared_access_frac=0.4,
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestResolve:
    def test_resolves_abbr(self):
        assert resolve_workload("Lulesh") is suite.get("Lulesh")

    def test_passes_spec_through(self):
        s = fast_spec()
        assert resolve_workload(s) is s


class TestRunWorkload:
    def test_produces_measured_kernels(self):
        r = run_workload(fast_spec(), small_config(), use_cache=False)
        assert len(r.measured_kernels()) == 2
        assert r.total().accesses > 0

    def test_page_heat_attached(self):
        r = run_workload(fast_spec(), small_config(), use_cache=False)
        assert r.page_access_counts
        assert r.page_access_counts == sorted(
            r.page_access_counts, reverse=True
        )

    def test_replication_plan_built_when_policy_active(self):
        cfg = small_config(replication=REPLICATE_ALL)
        r = run_workload(fast_spec(), cfg, use_cache=False)
        assert sum(r.pages_replicated) > 0

    def test_label_recorded(self):
        r = run_workload(fast_spec(), small_config(), label="mylabel",
                         use_cache=False)
        assert r.config_label == "mylabel"

    def test_explicit_trace_bypasses_generation(self):
        from repro.workloads.base import generate_trace

        cfg = small_config()
        trace = generate_trace(fast_spec(), cfg)
        r = run_workload(fast_spec(), cfg, trace=trace)
        assert r.total().accesses > 0


class TestTiming:
    def test_time_positive(self):
        cfg = small_config()
        r = run_workload(fast_spec(), cfg, use_cache=False)
        assert time_of(r, cfg) > 0

    def test_run_time_breakdown(self):
        cfg = small_config()
        r = run_workload(fast_spec(), cfg, use_cache=False)
        rt = run_time(r, cfg)
        assert len(rt.kernels) == 2
        assert rt.total_s == pytest.approx(time_of(r, cfg))

    def test_time_matches_model(self):
        cfg = small_config()
        r = run_workload(fast_spec(), cfg, use_cache=False)
        assert time_of(r, cfg) == PerformanceModel(cfg).total_time_s(r)


class TestDiskCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cfg = small_config()
        spec = fast_spec()
        r1 = run_workload(spec, cfg)
        assert list(tmp_path.glob("*.pkl"))
        r2 = run_workload(spec, cfg)
        assert r2.total().accesses == r1.total().accesses

    def test_key_distinguishes_configs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        spec = fast_spec()
        run_workload(spec, small_config())
        run_workload(spec, small_config(n_gpus=2))
        assert len(list(tmp_path.glob("*.pkl"))) == 2

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_workload(fast_spec(), small_config())
        assert not list(tmp_path.glob("*.pkl"))

    def test_corrupt_entry_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cfg = small_config()
        spec = fast_spec()
        run_workload(spec, cfg)
        for p in tmp_path.glob("*.pkl"):
            p.write_bytes(b"not a pickle")
        r = run_workload(spec, cfg)  # recomputes without raising
        assert r.total().accesses > 0

    def test_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        run_workload(fast_spec(), small_config())
        assert simcache.clear() >= 1
        assert not list(tmp_path.glob("*.pkl"))
