"""Tests for the Table IV flush-cost arithmetic."""

import pytest

from repro.analysis.flush_cost import (
    llc_flush_cost,
    rdc_flush_cost_carve,
    rdc_flush_cost_naive,
    table4_rows,
)
from repro.config import baseline_config, carve_config


class TestLlcCosts:
    def test_invalidate_matches_paper(self):
        # 8 MB / 128 B lines / 16 banks / 1 GHz = 4.096 us (paper: 4 us).
        cost = llc_flush_cost(carve_config())
        assert cost.invalidate_s == pytest.approx(4.096e-6)

    def test_flush_matches_paper_fast_end(self):
        # 8 MB at 1 TB/s = 8 us (paper's 8 us - 128 us range, fast end).
        cost = llc_flush_cost(carve_config())
        assert cost.flush_dirty_s == pytest.approx(8.388608e-6, rel=1e-3)

    def test_total(self):
        c = llc_flush_cost(carve_config())
        assert c.total_s == c.invalidate_s + c.flush_dirty_s


class TestRdcCosts:
    def test_naive_invalidate_milliseconds(self):
        # 2 GB at 1 TB/s local = ~2 ms (paper: 2 ms).
        cost = rdc_flush_cost_naive(carve_config())
        assert cost.invalidate_s == pytest.approx(2.147e-3, rel=1e-2)

    def test_naive_flush_over_link(self):
        # 2 GB over 64 GB/s = ~33.6 ms (paper: 32 ms).
        cost = rdc_flush_cost_naive(carve_config())
        assert cost.flush_dirty_s == pytest.approx(33.55e-3, rel=1e-2)

    def test_carve_is_free(self):
        assert rdc_flush_cost_carve(carve_config()).total_s == 0.0

    def test_scales_with_rdc_size(self):
        small = rdc_flush_cost_naive(carve_config(rdc_bytes=2**30))
        big = rdc_flush_cost_naive(carve_config(rdc_bytes=4 * 2**30))
        assert big.flush_dirty_s == pytest.approx(4 * small.flush_dirty_s)

    def test_requires_rdc(self):
        with pytest.raises(ValueError):
            rdc_flush_cost_naive(baseline_config())
        with pytest.raises(ValueError):
            rdc_flush_cost_carve(baseline_config())


class TestTable4:
    def test_three_rows(self):
        rows = table4_rows(carve_config())
        assert len(rows) == 3
        assert rows[2][1] == "0 ms" and rows[2][2] == "0 ms"

    def test_formats_us_and_ms(self):
        rows = table4_rows(carve_config())
        assert rows[0][1].endswith("us")
        assert rows[1][2].endswith("ms")

    def test_requires_rdc(self):
        with pytest.raises(ValueError):
            table4_rows(baseline_config())
