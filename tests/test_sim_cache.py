"""Tests for sim-cache corruption handling (quarantine, not silent miss)."""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.perf.stats import RunResult
from repro.sim import cache as simcache
from repro.workloads.base import WorkloadSpec


def cache_spec():
    return WorkloadSpec(
        name="cache", abbr="cache", suite="HPC",
        footprint_bytes=2**20 * 512,
        n_kernels=1, warmup_kernels=0, n_ctas=4,
        coverage=0.5, min_accesses=100, max_accesses=200,
        shared_page_frac=0.5, shared_access_frac=0.5,
        rw_page_frac=0.5, instr_per_access=5.0,
    )


@pytest.fixture
def live_cache(monkeypatch, tmp_path):
    """Point the cache at a tmp dir and re-enable it (conftest disables)."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _entry_path(spec, config):
    return simcache.cache_dir() / f"{simcache._key(spec, config)}.pkl"


def _result(spec, config):
    return RunResult(
        workload=spec.abbr, config_label="test", n_gpus=config.n_gpus
    )


class TestQuarantine:
    def test_roundtrip_still_works(self, live_cache, config):
        spec = cache_spec()
        simcache.store(spec, config, _result(spec, config))
        hit = simcache.load(spec, config)
        assert isinstance(hit, RunResult)
        assert hit.workload == spec.abbr

    def test_corrupt_entry_quarantined_with_warning(
        self, live_cache, config, caplog
    ):
        spec = cache_spec()
        path = _entry_path(spec, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        with caplog.at_level(logging.WARNING, logger="repro.sim.cache"):
            assert simcache.load(spec, config) is None  # a miss, not a crash
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert any("quarantined" in r.message for r in caplog.records)

    def test_truncated_pickle_quarantined(self, live_cache, config):
        spec = cache_spec()
        simcache.store(spec, config, _result(spec, config))
        path = _entry_path(spec, config)
        path.write_bytes(path.read_bytes()[:10])  # torn write
        assert simcache.load(spec, config) is None
        assert path.with_suffix(".corrupt").exists()

    def test_wrong_type_quarantined(self, live_cache, config):
        spec = cache_spec()
        path = _entry_path(spec, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as f:
            pickle.dump({"not": "a RunResult"}, f)
        assert simcache.load(spec, config) is None
        assert path.with_suffix(".corrupt").exists()

    def test_recompute_after_quarantine(self, live_cache, config):
        spec = cache_spec()
        path = _entry_path(spec, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        calls = []

        def compute():
            calls.append(1)
            return _result(spec, config)

        out = simcache.cached(spec, config, compute)
        assert len(calls) == 1  # quarantine produced a miss -> recompute
        assert isinstance(out, RunResult)
        # The fresh result replaced the entry; the next call is a hit.
        simcache.cached(spec, config, compute)
        assert len(calls) == 1

    def test_clear_sweeps_quarantine_files(self, live_cache, config):
        spec = cache_spec()
        path = _entry_path(spec, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        simcache.load(spec, config)
        assert path.with_suffix(".corrupt").exists()
        assert simcache.clear() >= 1
        assert not path.with_suffix(".corrupt").exists()


class TestDisabled:
    def test_no_cache_env_short_circuits(self, monkeypatch, tmp_path, config):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = cache_spec()
        simcache.store(spec, config, _result(spec, config))
        assert not list(tmp_path.iterdir())
        assert simcache.load(spec, config) is None
