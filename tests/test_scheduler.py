"""Tests for CTA scheduling and stream interleaving."""

import numpy as np
import pytest

from repro.config import SCHEDULE_CONTIGUOUS, SCHEDULE_ROUND_ROBIN
from repro.gpu.scheduler import (
    assign_ctas,
    interleave_streams,
    schedule_kernel,
    split_kernel_by_gpu,
)
from tests.conftest import make_kernel, small_config


class TestAssignCtas:
    def test_contiguous_batches(self):
        k = make_kernel(list(range(8)), n_ctas=8, cta_ids=list(range(8)))
        mapping = assign_ctas(k, 4, SCHEDULE_CONTIGUOUS)
        assert list(mapping) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_contiguous_uneven_grid(self):
        k = make_kernel([0] * 5, n_ctas=5, cta_ids=list(range(5)))
        mapping = assign_ctas(k, 2, SCHEDULE_CONTIGUOUS)
        # Batches stay contiguous and cover both GPUs.
        assert sorted(set(mapping)) == [0, 1]
        assert all(mapping[i] <= mapping[i + 1] for i in range(4))

    def test_round_robin(self):
        k = make_kernel(list(range(6)), n_ctas=6, cta_ids=list(range(6)))
        mapping = assign_ctas(k, 3, SCHEDULE_ROUND_ROBIN)
        assert list(mapping) == [0, 1, 2, 0, 1, 2]

    def test_single_gpu_gets_everything(self):
        k = make_kernel(list(range(4)), n_ctas=4, cta_ids=list(range(4)))
        assert set(assign_ctas(k, 1, SCHEDULE_CONTIGUOUS)) == {0}

    def test_unknown_policy_rejected(self):
        k = make_kernel([0], n_ctas=1, cta_ids=[0])
        with pytest.raises(ValueError):
            assign_ctas(k, 2, "alphabetical")


class TestSplit:
    def test_partition_is_complete_and_disjoint(self):
        k = make_kernel(
            list(range(16)), n_ctas=8, cta_ids=[i // 2 for i in range(16)]
        )
        streams = split_kernel_by_gpu(k, 4, SCHEDULE_CONTIGUOUS)
        assert sum(s["n_accesses"] for s in streams) == 16
        all_lines = np.concatenate([s["lines"] for s in streams])
        assert sorted(all_lines) == list(range(16))

    def test_order_preserved_within_gpu(self):
        k = make_kernel(
            [10, 11, 12, 13], n_ctas=2, cta_ids=[0, 0, 1, 1]
        )
        streams = split_kernel_by_gpu(k, 2, SCHEDULE_CONTIGUOUS)
        assert list(streams[0]["lines"]) == [10, 11]
        assert list(streams[1]["lines"]) == [12, 13]

    def test_write_flags_travel_with_lines(self):
        k = make_kernel(
            [1, 2], writes=[True, False], n_ctas=2, cta_ids=[0, 1]
        )
        streams = split_kernel_by_gpu(k, 2, SCHEDULE_CONTIGUOUS)
        assert streams[0]["is_write"][0]
        assert not streams[1]["is_write"][0]


class TestInterleave:
    def _streams(self, sizes):
        return [
            {
                "lines": np.arange(n, dtype=np.int64) + 100 * g,
                "is_write": np.zeros(n, dtype=bool),
                "n_accesses": n,
            }
            for g, n in enumerate(sizes)
        ]

    def test_round_robin_chunks(self):
        chunks = interleave_streams(self._streams([4, 4]), chunk=2)
        gpus = [c[0] for c in chunks]
        assert gpus == [0, 1, 0, 1]

    def test_all_accesses_delivered(self):
        chunks = interleave_streams(self._streams([5, 3, 7]), chunk=2)
        total = sum(len(c[1]) for c in chunks)
        assert total == 15

    def test_uneven_tail(self):
        chunks = interleave_streams(self._streams([3]), chunk=2)
        assert [len(c[1]) for c in chunks] == [2, 1]

    def test_empty_stream_skipped(self):
        chunks = interleave_streams(self._streams([0, 4]), chunk=4)
        assert all(c[0] == 1 for c in chunks)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            interleave_streams(self._streams([1]), chunk=0)

    def test_order_within_gpu_preserved(self):
        chunks = interleave_streams(self._streams([6, 6]), chunk=2)
        gpu0 = np.concatenate([c[1] for c in chunks if c[0] == 0])
        assert list(gpu0) == [0, 1, 2, 3, 4, 5]


class TestScheduleKernel:
    def test_end_to_end(self):
        cfg = small_config()
        k = make_kernel(
            list(range(64)), n_ctas=16, cta_ids=[i // 4 for i in range(64)]
        )
        chunks = schedule_kernel(k, cfg)
        assert sum(len(c[1]) for c in chunks) == 64
        assert set(c[0] for c in chunks) == {0, 1, 2, 3}
