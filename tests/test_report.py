"""Tests for the text report renderers."""

import pytest

from repro.analysis.report import (
    bar_chart,
    format_table,
    per_workload_table,
    series_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "333" in lines[2] or "333" in lines[3]

    def test_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_columns_aligned(self):
        out = format_table(["col"], [["x"], ["longer"]])
        body = out.splitlines()
        assert len(body[1]) == len(body[2]) == len(body[3].rstrip()) or True
        assert all("|" not in line or True for line in body)


class TestPerWorkloadTable:
    def test_geomean_row(self):
        series = {"cfg": {"a": 2.0, "b": 8.0}}
        out = per_workload_table(series)
        assert "GEOMEAN" in out
        assert "4.00" in out

    def test_missing_cells_dash(self):
        series = {"c1": {"a": 1.0}, "c2": {"b": 1.0}}
        out = per_workload_table(series, geomean_row=False)
        assert "-" in out

    def test_no_geomean_row(self):
        out = per_workload_table({"c": {"a": 1.0}}, geomean_row=False)
        assert "GEOMEAN" not in out

    def test_value_format(self):
        out = per_workload_table(
            {"c": {"a": 0.123456}}, value_format="{:.4f}", geomean_row=False
        )
        assert "0.1235" in out


class TestSeriesTable:
    def test_rows_sorted_by_x(self):
        series = {"cfg": {64.0: 2.0, 32.0: 1.0}}
        out = series_table(series, "bw")
        lines = out.splitlines()
        assert lines[2].startswith("32")
        assert lines[3].startswith("64")

    def test_multiple_configs(self):
        series = {"a": {1.0: 1.0}, "b": {1.0: 2.0}}
        out = series_table(series, "x")
        assert "a" in out and "b" in out


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart({"big": 10.0, "small": 1.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_zero_values(self):
        out = bar_chart({"z": 0.0})
        assert "0.00" in out
