"""Tests for the coherence protocol implementations."""

import pytest

from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    RdcConfig,
)
from repro.core.coherence import (
    DirectoryCoherence,
    HardwareCoherence,
    NoCoherence,
    SoftwareCoherence,
    make_protocol,
)


class TestFactory:
    def test_makes_every_protocol(self):
        assert isinstance(make_protocol(COHERENCE_NONE, 4), NoCoherence)
        assert isinstance(make_protocol(COHERENCE_SOFTWARE, 4), SoftwareCoherence)
        assert isinstance(
            make_protocol(COHERENCE_HARDWARE, 4, RdcConfig()), HardwareCoherence
        )
        assert isinstance(make_protocol(COHERENCE_DIRECTORY, 4), DirectoryCoherence)

    def test_hardware_requires_config(self):
        with pytest.raises(ValueError):
            make_protocol(COHERENCE_HARDWARE, 4)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_protocol("gossip", 4)

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            NoCoherence(0)


class TestFlushSemantics:
    def test_only_software_flushes_rdc(self):
        assert SoftwareCoherence(4).flush_rdc_at_kernel_boundary
        assert not NoCoherence(4).flush_rdc_at_kernel_boundary
        assert not HardwareCoherence(4, RdcConfig()).flush_rdc_at_kernel_boundary
        assert not DirectoryCoherence(4).flush_rdc_at_kernel_boundary


class TestNoAndSoftware:
    def test_never_invalidate(self):
        for proto in (NoCoherence(4), SoftwareCoherence(4)):
            proto.note_remote_read(0, 1, 5)
            assert proto.invalidation_targets(0, 1, 5) is None


class TestHardware:
    def test_private_write_silent(self):
        p = HardwareCoherence(4, RdcConfig(imst_demote_prob=0.0))
        assert p.invalidation_targets(0, 0, 5) is None

    def test_shared_write_broadcasts_to_all_but_writer(self):
        p = HardwareCoherence(4, RdcConfig(imst_demote_prob=0.0))
        p.note_remote_read(0, 1, 5)  # line 5 at home 0 read by GPU 1
        p.note_remote_read(0, 2, 5)
        targets = p.invalidation_targets(0, 0, 5)
        assert targets == [1, 2, 3]

    def test_private_owner_write_is_silent_even_remotely(self):
        p = HardwareCoherence(4, RdcConfig(imst_demote_prob=0.0))
        p.note_remote_read(0, 1, 5)  # private to GPU 1
        assert p.invalidation_targets(0, 1, 5) is None

    def test_writer_never_a_target(self):
        p = HardwareCoherence(4, RdcConfig(imst_demote_prob=0.0))
        p.note_remote_read(0, 1, 5)
        p.note_remote_read(0, 2, 5)  # now read-shared
        targets = p.invalidation_targets(0, 1, 5)
        assert targets is not None and 1 not in targets

    def test_per_home_imst_instances(self):
        p = HardwareCoherence(4, RdcConfig(imst_demote_prob=0.0))
        p.note_remote_read(0, 1, 5)
        # Same line number at a different home node is independent.
        assert p.invalidation_targets(2, 2, 5) is None


class TestDirectory:
    def test_no_sharers_no_invalidate(self):
        p = DirectoryCoherence(4)
        assert p.invalidation_targets(0, 0, 5) is None

    def test_targets_only_actual_sharers(self):
        p = DirectoryCoherence(4)
        p.note_remote_read(0, 2, 5)
        assert p.invalidation_targets(0, 0, 5) == [2]

    def test_writer_excluded(self):
        p = DirectoryCoherence(4)
        p.note_remote_read(0, 2, 5)
        assert p.invalidation_targets(0, 2, 5) is None

    def test_note_invalidated_clears_sharers(self):
        p = DirectoryCoherence(4)
        p.note_remote_read(0, 2, 5)
        p.note_invalidated(0, 5)
        assert p.invalidation_targets(0, 0, 5) is None

    def test_directory_entry_accounting(self):
        p = DirectoryCoherence(4)
        p.note_remote_read(0, 1, 5)
        p.note_remote_read(0, 2, 6)
        assert p.directory_entries(0) == 2
        assert p.stats.entries_peak == 2

    def test_targeted_traffic_less_than_broadcast(self):
        """The Section V-E argument: directories send fewer messages."""
        hw = HardwareCoherence(8, RdcConfig(imst_demote_prob=0.0))
        dr = DirectoryCoherence(8)
        for proto in (hw, dr):
            proto.note_remote_read(0, 1, 5)
        hw_targets = hw.invalidation_targets(0, 0, 5)
        dr_targets = dr.invalidation_targets(0, 0, 5)
        assert len(dr_targets) == 1
        assert len(hw_targets) == 7
