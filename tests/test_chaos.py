"""Tests for the seeded chaos engine and drill (sim/chaos.py).

Kill-flavoured kinds (worker_kill, journal_torn_tail) SIGKILL the
injecting process, so their direct injection paths are exercised in
subprocesses (here and in test_journal_v2.py); everything else is
unit-tested in-process through :func:`repro.sim.chaos.install`.
"""

from __future__ import annotations

import errno
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.registry import MetricsRegistry
from repro.sim import chaos
from repro.sim.chaos import (
    DRILL_WORKLOADS,
    KIND_ENOSPC,
    KIND_SHM_FAIL,
    KIND_SIDECAR_CORRUPT,
    KIND_SIDECAR_TRUNCATE,
    KIND_SIMCACHE_CORRUPT,
    KIND_TO_SITE,
    KIND_WORKER_EXCEPTION,
    KIND_WORKER_SLOW,
    PLAN_ENV,
    REQUIRED_KINDS,
    SITE_SIDECAR_STORE,
    SITE_SIMCACHE_STORE,
    SITE_TASK,
    STATE_ENV,
    ChaosEngine,
    ChaosInjectedError,
    ChaosPlan,
    FaultEvent,
    _damage_file,
    run_drill,
)
from repro.sim.journal import Journal


@pytest.fixture(autouse=True)
def _no_leftover_engine(monkeypatch):
    """Each test starts and ends with chaos disarmed."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


def _engine(tmp_path, *events, registry=None):
    plan = ChaosPlan(seed=0, events=tuple(events))
    return ChaosEngine(plan, tmp_path / "state", registry=registry)


class TestPlan:
    def test_same_seed_same_schedule(self):
        keys = ["numa-gpu/Lulesh", "numa-gpu/Euler"]
        assert ChaosPlan.generate(7, keys=keys) == ChaosPlan.generate(
            7, keys=keys
        )

    def test_different_seeds_differ(self):
        # Not guaranteed in principle, but these two do — a seed that
        # does not influence the schedule would break drill coverage.
        assert ChaosPlan.generate(1) != ChaosPlan.generate(2)

    def test_required_trio_always_scheduled(self):
        for seed in range(20):
            plan = ChaosPlan.generate(seed)
            kinds = [e.kind for e in plan.events]
            for required in REQUIRED_KINDS:
                assert required in kinds

    def test_save_load_round_trip(self, tmp_path):
        plan = ChaosPlan.generate(42, keys=["a", "b"])
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ChaosPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent.from_payload({"kind": "meteor_strike"})

    def test_every_kind_has_a_site(self):
        for kind, site in KIND_TO_SITE.items():
            assert isinstance(kind, str) and isinstance(site, str)


class TestEngineSemantics:
    def test_nth_counts_matching_calls(self, tmp_path):
        eng = _engine(
            tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "", nth=2)
        )
        eng.fire(SITE_TASK, "k1")  # tick 1 < nth: no injection
        with pytest.raises(ChaosInjectedError):
            eng.fire(SITE_TASK, "k2")  # tick 2: fires

    def test_fires_at_most_once(self, tmp_path):
        eng = _engine(tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1))
        with pytest.raises(ChaosInjectedError):
            eng.fire(SITE_TASK, "k")
        eng.fire(SITE_TASK, "k")  # already injected: no-op

    def test_once_only_across_engine_instances(self, tmp_path):
        # Two engines sharing a state directory model two processes of
        # the same batch: the second must observe the first's injection.
        ev = FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1)
        first = _engine(tmp_path, ev)
        with pytest.raises(ChaosInjectedError):
            first.fire(SITE_TASK, "k")
        second = ChaosEngine(first.plan, first.state_dir)
        second.fire(SITE_TASK, "k")  # no re-injection

    def test_fires_late_if_claimer_died(self, tmp_path):
        # A process that claims tick nth and dies before injecting must
        # not lose the event: the next matching call (tick > nth) fires.
        eng = _engine(tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1))
        eng.state_dir.mkdir(parents=True)
        (eng.state_dir / "ev0.tick1").touch()  # the dead claimer's tick
        with pytest.raises(ChaosInjectedError):
            eng.fire(SITE_TASK, "k")

    def test_match_scopes_to_key_substring(self, tmp_path):
        eng = _engine(
            tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "victim", nth=1)
        )
        eng.fire(SITE_TASK, "bystander")  # no match: not even a tick
        with pytest.raises(ChaosInjectedError):
            eng.fire(SITE_TASK, "numa-gpu/victim")

    def test_site_mismatch_ignored(self, tmp_path):
        eng = _engine(tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1))
        eng.fire(SITE_SIDECAR_STORE, "k")  # wrong site entirely
        assert ChaosEngine.injected(eng.state_dir) == []

    def test_audit_record_written_with_metrics(self, tmp_path):
        registry = MetricsRegistry()
        eng = _engine(
            tmp_path,
            FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1),
            registry=registry,
        )
        with pytest.raises(ChaosInjectedError):
            eng.fire(SITE_TASK, "numa-gpu/Lulesh")
        (rec,) = ChaosEngine.injected(eng.state_dir)
        assert rec["kind"] == KIND_WORKER_EXCEPTION
        assert rec["site"] == SITE_TASK
        assert rec["key"] == "numa-gpu/Lulesh"
        assert rec["pid"] == os.getpid()
        assert rec["tick"] == 1
        counter = registry.get("chaos.injected")
        assert counter.value(kind=KIND_WORKER_EXCEPTION) == 1


class TestFaultKinds:
    def test_slow_returns_after_sleeping(self, tmp_path):
        eng = _engine(
            tmp_path, FaultEvent(KIND_WORKER_SLOW, "", nth=1, param=0.01)
        )
        eng.fire(SITE_TASK, "k")  # must not raise
        (rec,) = ChaosEngine.injected(eng.state_dir)
        assert rec["kind"] == KIND_WORKER_SLOW

    def test_enospc_surfaces_through_journal_append(self, tmp_path):
        chaos.install(_engine(tmp_path, FaultEvent(KIND_ENOSPC, "", nth=1)))
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(OSError) as exc_info:
            journal.append("start", "numa-gpu/Lulesh", attempt=1)
        assert exc_info.value.errno == errno.ENOSPC
        # The append never happened: injection precedes the write.
        assert journal.records() == []

    def test_shm_fail_falls_back_to_pipe(self, tmp_path):
        from repro.sim.pool import OK_INLINE, _export_payload

        chaos.install(_engine(tmp_path, FaultEvent(KIND_SHM_FAIL, "", nth=1)))
        payload = b"x" * 64
        message = _export_payload(payload, shm_min=0, key="k")
        assert message == (OK_INLINE, payload)  # fell back, data intact

    @pytest.mark.parametrize(
        "kind", [KIND_SIDECAR_CORRUPT, KIND_SIDECAR_TRUNCATE]
    )
    def test_sidecar_damage_is_quarantined_on_load(self, tmp_path, kind,
                                                   monkeypatch):
        import repro.sim.journal as journal_mod

        monkeypatch.setattr(journal_mod, "_warned_sidecar_quarantine", False)
        registry = MetricsRegistry()
        chaos.install(
            _engine(tmp_path, FaultEvent(kind, "", nth=1),
                    registry=registry)
        )
        journal = Journal(tmp_path / "j.jsonl", registry=registry)
        journal.store_result("k", {"payload": list(range(100))})
        chaos.uninstall()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert journal.load_result("k") is None
        assert list(journal.results_dir.glob("*.corrupt"))
        assert not list(journal.results_dir.glob("*.pkl"))
        assert registry.get("journal.sidecar_quarantined").value() == 1

    def test_simcache_corrupt_rots_the_entry(self, tmp_path):
        entry = tmp_path / "entry.pkl"
        original = b"\x80\x04" + b"payload" * 20
        entry.write_bytes(original)
        eng = _engine(
            tmp_path, FaultEvent(KIND_SIMCACHE_CORRUPT, "", nth=1)
        )
        eng.fire(SITE_SIMCACHE_STORE, "k", path=entry)
        assert entry.read_bytes() != original
        assert len(entry.read_bytes()) == len(original)

    def test_damage_file_truncate_and_corrupt(self, tmp_path):
        target = tmp_path / "f"
        data = bytes(range(256))
        target.write_bytes(data)
        _damage_file(target, truncate=True, seed=0)
        assert target.read_bytes() == data[:128]
        target.write_bytes(data)
        _damage_file(target, truncate=False, seed=0)
        rotten = target.read_bytes()
        assert rotten != data and len(rotten) == len(data)


class TestHookPlumbing:
    def test_fire_is_noop_when_disarmed(self, tmp_path):
        chaos.fire(SITE_TASK, "k")  # must not raise or create state

    def test_env_bootstrap_arms_and_memoizes(self, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=0, events=(FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1),)
        )
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        monkeypatch.setenv(PLAN_ENV, str(plan_path))
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "state"))
        engine = chaos.active()
        assert engine is not None and engine.plan == plan
        assert chaos.active() is engine  # memoized on the env values
        with pytest.raises(ChaosInjectedError):
            chaos.fire_task("k")

    def test_unreadable_plan_leaves_chaos_off(self, tmp_path, monkeypatch):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json", encoding="utf-8")
        monkeypatch.setenv(PLAN_ENV, str(bad))
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "state"))
        assert chaos.active() is None
        chaos.fire_task("k")  # still a no-op

    def test_attach_registry_fills_missing_only(self, tmp_path):
        eng = _engine(tmp_path, FaultEvent(KIND_WORKER_EXCEPTION, "", nth=1))
        chaos.install(eng)
        registry = MetricsRegistry()
        chaos.attach_registry(registry)
        assert eng.registry is registry
        chaos.attach_registry(MetricsRegistry())
        assert eng.registry is registry  # first one sticks

    def test_legacy_env_fault_fail_and_flaky(self, tmp_path, monkeypatch):
        monkeypatch.setenv(chaos.FAULT_ENV, "fail:victim")
        chaos.maybe_inject_env_fault("bystander")
        with pytest.raises(RuntimeError):
            chaos.maybe_inject_env_fault("the-victim-key")
        monkeypatch.setenv(chaos.FAULT_ENV, "flaky:")
        monkeypatch.setenv(chaos.FAULT_STATE_ENV, str(tmp_path))
        with pytest.raises(RuntimeError):
            chaos.maybe_inject_env_fault("k")
        chaos.maybe_inject_env_fault("k")  # second attempt passes


_KILL_CHILD = """
import os, sys
from repro.sim import chaos
from repro.sim.chaos import ChaosEngine, ChaosPlan, FaultEvent, SITE_TASK

plan = ChaosPlan(seed=0, events=(FaultEvent("worker_kill", "", 1),))
chaos.install(ChaosEngine(plan, sys.argv[1]))
chaos.fire(SITE_TASK, "doomed")
print("survived")  # must be unreachable
"""


class TestKillKinds:
    def test_worker_kill_sigkills_and_is_audited(self, tmp_path):
        state = tmp_path / "state"
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_CHILD, str(state)],
            capture_output=True, text=True, timeout=60,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parents[1]
                                   / "src")},
        )
        assert proc.returncode == -9  # SIGKILL, not a clean exit
        assert "survived" not in proc.stdout
        (rec,) = ChaosEngine.injected(state)
        assert rec["kind"] == "worker_kill"  # recorded before dying


class TestDrill:
    def test_rejects_single_workload(self, tmp_path):
        with pytest.raises(ValueError):
            run_drill(tmp_path, workloads=("Lulesh",))

    def test_default_workloads_are_plausible(self):
        assert len(DRILL_WORKLOADS) >= 2

    @pytest.mark.slow
    def test_end_to_end_drill_passes(self, tmp_path):
        report = run_drill(
            tmp_path / "drill", seed=1, rounds=2, jobs=2,
            workloads=("Lulesh", "Euler"),
        )
        assert report.ok, report.render()
        assert report.injected  # something actually fired
        rendered = report.render()
        assert "PASS" in rendered and "byte-identical" in rendered
        # The audit trail on disk matches what the report carries.
        state_records = ChaosEngine.injected(
            Path(tmp_path / "drill" / "chaos-state")
        )
        assert state_records == report.injected


class TestCli:
    def test_chaos_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["chaos", "--seed", "9", "--rounds", "2", "--jobs", "4",
             "--pin", "--workloads", "Lulesh", "Euler"]
        )
        assert args.seed == 9
        assert args.rounds == 2
        assert args.jobs == 4
        assert args.pin is True
        assert args.workloads == ["Lulesh", "Euler"]
