"""Tests for the software page-replication policies."""

import pytest

from repro.analysis.sharing import profile_sharing
from repro.config import REPLICATE_ALL, REPLICATE_NONE, REPLICATE_READ_ONLY
from repro.numa.pagetable import PageTable
from repro.numa.replication import (
    apply_replication_plan,
    build_replication_plan,
    replica_capacity_bytes,
)

from tests.conftest import make_kernel, make_trace, small_config


def sharing_profile():
    """Page 0: RO shared (GPUs 0,1). Page 1: RW shared (GPUs 2,3).
    Page 2: private (GPU 0)."""
    cfg = small_config()
    k = make_kernel(
        lines=[0, 0, 16, 16, 32],
        writes=[0, 0, 0, 1, 0],
        cta_ids=[0, 1, 2, 3, 0],
    )
    return profile_sharing(make_trace([k]), cfg)


class TestPlanBuilding:
    def test_none_plan_is_empty(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_NONE)
        assert plan.n_replicated_pages == 0

    def test_read_only_selects_ro_pages(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_READ_ONLY)
        assert set(plan.replica_holders) == {0}
        assert plan.replica_holders[0] == [0, 1]

    def test_all_selects_every_shared_page(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_ALL)
        assert set(plan.replica_holders) == {0, 1}

    def test_private_pages_never_replicated(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_ALL)
        assert 2 not in plan.replica_holders

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            build_replication_plan(sharing_profile(), "most")

    def test_total_replicas(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_ALL)
        assert plan.total_replicas() == 4


class TestPlanApplication:
    def test_apply_installs_replicas_at_non_home_holders(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_READ_ONLY)
        pt = PageTable(4)
        pt.home_of(0, 0)
        created = apply_replication_plan(plan, pt)
        assert created == 1
        assert pt.has_replica(0, 1)
        assert not pt.has_replica(0, 0)  # the home copy is not a replica

    def test_apply_skips_unmapped_pages(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_READ_ONLY)
        pt = PageTable(4)
        assert apply_replication_plan(plan, pt) == 0

    def test_capacity_bound(self):
        plan = build_replication_plan(sharing_profile(), REPLICATE_ALL)
        # Two shared pages, two holders each -> one extra copy per page.
        assert replica_capacity_bytes(plan, 2048) == 2 * 2048
