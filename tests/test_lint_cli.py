"""End-to-end tests for ``python -m repro lint``.

Drives :func:`repro.cli.main` against throwaway scan trees and asserts
the exit-code contract (0 clean / 1 new findings / 2 bad
configuration), the JSON report schema, the baseline round-trip, and
suppression accounting.
"""

import json

import pytest

from repro.cli import main

BAD_CORE = "import time\nT0 = time.time()\n"
GOOD_CORE = "def f(x):\n    return x + 1\n"


@pytest.fixture
def tree(tmp_path):
    """A minimal scan root: <root>/src/repro with one core module."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "foo.py").write_text(GOOD_CORE)
    return tmp_path


def lint_argv(root, *extra):
    return ["lint", str(root / "src" / "repro"),
            "--root", str(root), *extra]


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main(lint_argv(tree)) == 0
        assert "lint ok" in capsys.readouterr().out

    def test_new_finding_exits_one(self, tree, capsys):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        assert main(lint_argv(tree)) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "core/foo.py:2" in out

    def test_unknown_rule_id_exits_two(self, tree, capsys):
        assert main(lint_argv(tree, "--select", "NOPE001")) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tree, capsys):
        bad = tree / "broken.json"
        bad.write_text("{not json")
        assert main(lint_argv(tree, "--baseline", str(bad))) == 2
        assert "invalid lint configuration" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, tree, capsys):
        missing = tree / "nope.json"
        assert main(lint_argv(tree, "--baseline", str(missing))) == 2

    def test_missing_scan_root_exits_two(self, tree, capsys):
        argv = ["lint", str(tree / "does-not-exist"),
                "--root", str(tree)]
        assert main(argv) == 2

    def test_ignore_silences_rule(self, tree):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        assert main(lint_argv(tree, "--ignore", "DET001")) == 0


class TestJsonFormat:
    def test_schema(self, tree, capsys):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        assert main(lint_argv(tree, "--format", "json")) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 2
        assert set(doc["rules"]) == {
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "COH001", "OBS001",
            "CONC001", "CONC002", "CONC003", "VER002",
        }
        assert doc["summary"] == {
            "total": 1, "new": 1, "suppressed": 0, "baselined": 0
        }
        # The fixture tree has no committed lint-scope.json: VER002
        # surfaces that as a notice, not a finding.
        assert any("lint-scope.json" in n for n in doc["notices"])
        (finding,) = doc["findings"]
        assert finding["rule"] == "DET001"
        assert finding["severity"] == "error"
        assert finding["path"] == "src/repro/core/foo.py"
        assert finding["line"] == 2
        assert finding["suppressed"] is False
        assert finding["baselined"] is False
        assert "time.time" in finding["message"]

    def test_suppressed_findings_are_reported(self, tree, capsys):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(
            "import time\n"
            "T0 = time.time()  # lint: disable=DET001\n"
        )
        assert main(lint_argv(tree, "--format", "json")) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["suppressed"] == 1
        assert doc["summary"]["new"] == 0
        assert doc["findings"][0]["suppressed"] is True


class TestBaselineRoundTrip:
    def test_update_then_clean(self, tree, capsys):
        core = tree / "src" / "repro" / "core" / "foo.py"
        core.write_text(BAD_CORE)
        # Without a baseline the finding is new.
        assert main(lint_argv(tree)) == 1
        # Grandfather it.
        assert main(lint_argv(tree, "--update-baseline")) == 0
        assert (tree / "lint-baseline.json").exists()
        capsys.readouterr()
        # The default <root>/lint-baseline.json is picked up.
        assert main(lint_argv(tree)) == 0
        doc_out = capsys.readouterr().out
        assert "1 baselined" in doc_out

    def test_new_finding_on_top_of_baseline_fails(self, tree):
        core = tree / "src" / "repro" / "core" / "foo.py"
        core.write_text(BAD_CORE)
        assert main(lint_argv(tree, "--update-baseline")) == 0
        core.write_text(BAD_CORE + "import random\nX = random.random()\n")
        assert main(lint_argv(tree)) == 1

    def test_baseline_file_is_stable_json(self, tree):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        assert main(lint_argv(tree, "--update-baseline")) == 0
        doc = json.loads((tree / "lint-baseline.json").read_text())
        assert doc["version"] == 2
        (entry,) = doc["findings"]
        assert entry["rule"] == "DET001"
        assert entry["path"] == "src/repro/core/foo.py"
        assert entry["count"] == 1

    def test_repo_baseline_is_empty(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        doc = json.loads(
            (repo / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert doc == {"findings": [], "version": 2}


class TestPathNormalization:
    """Finding paths are repo-relative POSIX regardless of cwd."""

    def _paths(self, tree, capsys, *extra):
        main(lint_argv(tree, "--format", "json", *extra))
        doc = json.loads(capsys.readouterr().out)
        return [f["path"] for f in doc["findings"]]

    def test_chdir_does_not_change_paths(self, tree, capsys,
                                         monkeypatch):
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        from_root = self._paths(tree, capsys)
        monkeypatch.chdir(tree / "src")
        from_src = self._paths(tree, capsys)
        monkeypatch.chdir("/")
        from_slash = self._paths(tree, capsys)
        assert from_root == from_src == from_slash
        assert from_root == ["src/repro/core/foo.py"]

    def test_baseline_matches_across_cwds(self, tree, capsys,
                                          monkeypatch):
        # A baseline recorded from the repo root grandfathers the same
        # finding when lint later runs from inside src/.
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        assert main(lint_argv(tree, "--update-baseline")) == 0
        monkeypatch.chdir(tree / "src")
        assert main(lint_argv(tree)) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_root_is_discovered_without_flag(self, tree, capsys):
        # No --root: the engine walks up from the scan root (the src/
        # layout fallback) and still displays repo-relative paths.
        (tree / "src" / "repro" / "core" / "foo.py").write_text(BAD_CORE)
        argv = ["lint", str(tree / "src" / "repro"),
                "--format", "json"]
        assert main(argv) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["path"] == "src/repro/core/foo.py"


class TestRepositoryIsClean:
    def test_head_lints_clean(self, capsys):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        argv = ["lint", str(repo / "src" / "repro"), "--root", str(repo)]
        assert main(argv) == 0
        assert "lint ok" in capsys.readouterr().out
