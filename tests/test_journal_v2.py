"""Tests for the crash-consistent journal v2 (sim/journal.py).

Covers the durability contract: per-record checksums, torn-tail vs
interior-corruption classification, sidecar digest envelopes with
quarantine, the shared scan cache, opt-in fsync, v1 compatibility — and
two real two-process kill drills (SIGKILL mid-store, torn tail then
``--resume``), because the promises here are about dying processes, not
mocked ones.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.sim.journal as journal_mod
from repro.obs.registry import MetricsRegistry
from repro.sim.journal import (
    CHECKSUM_FIELD,
    FSYNC_ENV,
    JOURNAL_SCHEMA_VERSION,
    Journal,
    SIDECAR_MAGIC,
    record_checksum,
)
from repro.sim.runner import RunnerPolicy, Task, run_tasks

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _fresh_warning_latches(monkeypatch):
    """One-shot warning latches are process-wide; reset per test."""
    monkeypatch.setattr(journal_mod, "_warned_corrupt_records", False)
    monkeypatch.setattr(journal_mod, "_warned_sidecar_quarantine", False)


def _journal(tmp_path, **kwargs) -> Journal:
    return Journal(tmp_path / "j.jsonl", **kwargs)


def _raw_lines(journal: Journal) -> list[str]:
    return journal.path.read_text(encoding="utf-8").splitlines()


class TestChecksums:
    def test_every_appended_record_checksums(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("meta", "", fingerprint={"v": 1})
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1, elapsed_s=0.1)
        for line in _raw_lines(journal):
            record = json.loads(line)
            assert record[CHECKSUM_FIELD] == record_checksum(record)
        assert len(journal.records()) == 3

    def test_meta_records_carry_schema_version(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("meta", "", fingerprint={})
        (meta,) = journal.records()
        assert meta["schema"] == JOURNAL_SCHEMA_VERSION

    def test_checksum_ignores_field_order(self):
        a = {"event": "done", "key": "k", "ts": 1.0, "attempt": 2}
        b = {"attempt": 2, "ts": 1.0, "key": "k", "event": "done"}
        assert record_checksum(a) == record_checksum(b)

    def test_tampered_record_dropped_and_counted(self, tmp_path):
        registry = MetricsRegistry()
        journal = _journal(tmp_path, registry=registry)
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1)
        lines = _raw_lines(journal)
        forged = json.loads(lines[0])
        forged["key"] = "someone-else"  # edit without re-checksumming
        lines[0] = json.dumps(forged, sort_keys=True)
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fresh = Journal(journal.path, registry=registry)
        with pytest.warns(RuntimeWarning, match="checksum"):
            scan = fresh.scan()
        assert scan.checksum_failures == 1
        assert len(scan.records) == 1
        assert registry.get("journal.checksum_failures").value() == 1


class TestV1Compatibility:
    def test_v1_records_without_checksum_still_intact(self, tmp_path):
        journal = _journal(tmp_path)
        v1 = [
            {"event": "meta", "key": "", "ts": 1.0, "fingerprint": {}},
            {"event": "start", "key": "k", "ts": 2.0, "attempt": 1},
            {"event": "done", "key": "k", "ts": 3.0, "attempt": 1},
        ]
        journal.path.write_text(
            "".join(json.dumps(r) + "\n" for r in v1), encoding="utf-8"
        )
        scan = journal.scan()
        assert len(scan.records) == 3
        assert scan.checksum_failures == 0
        assert journal.completed_keys() == {"k"}

    def test_v1_bare_pickle_sidecar_loads(self, tmp_path):
        journal = _journal(tmp_path)
        journal.results_dir.mkdir(parents=True)
        key, value = "k", {"result": 42}
        digest = journal_mod._key_digest(key)
        (journal.results_dir / f"{digest}.pkl").write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert journal.load_result(key) == value

    def test_mixed_v1_v2_journal(self, tmp_path):
        journal = _journal(tmp_path)
        journal.path.write_text(
            json.dumps({"event": "start", "key": "a", "ts": 1.0}) + "\n",
            encoding="utf-8",
        )
        journal.append("done", "a", attempt=1)
        assert [r["event"] for r in journal.records()] == ["start", "done"]


class TestTornTail:
    def _tear(self, journal: Journal) -> None:
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: len(data) - len(data) // 4])

    def test_scan_classifies_torn_tail(self, tmp_path):
        registry = MetricsRegistry()
        journal = _journal(tmp_path)
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1)
        self._tear(journal)
        fresh = Journal(journal.path, registry=registry)
        scan = fresh.scan()  # silent: torn tails are expected damage
        assert scan.torn_tail == 1
        assert scan.corrupt_records == 0
        assert len(scan.records) == 1
        assert registry.get("journal.torn_records").value() == 1

    def test_append_repairs_the_tail_first(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1)
        self._tear(journal)
        fresh = Journal(journal.path)
        fresh.append("start", "k2", attempt=1)
        scan = Journal(journal.path).scan()
        assert scan.torn_tail == 0  # the half line is gone, not buried
        assert scan.corrupt_records == 0
        assert [r["event"] for r in scan.records] == ["start", "start"]

    def test_newline_only_loss_keeps_the_record(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1)
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[:-1])  # only the "\n" lost
        fresh = Journal(journal.path)
        assert fresh.repair_tail() is False  # finished, not truncated
        assert journal.path.read_bytes() == data
        assert len(Journal(journal.path).records()) == 2

    def test_interior_corruption_warns_once(self, tmp_path):
        registry = MetricsRegistry()
        journal = _journal(tmp_path)
        journal.append("start", "k", attempt=1)
        journal.append("done", "k", attempt=1)
        lines = _raw_lines(journal)
        lines[0] = '{"event": "sta'  # broken line *not* at the tail
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fresh = Journal(journal.path, registry=registry)
        with pytest.warns(RuntimeWarning, match="not crash fallout"):
            scan = fresh.scan()
        assert scan.torn_tail == 0
        assert scan.corrupt_records == 1
        assert registry.get("journal.corrupt_records").value() == 1
        # Re-scanning through the same instance must not double-count
        # (high-water-mark accounting per observer).
        fresh.append("start", "k3", attempt=1)  # invalidates the cache
        fresh.scan()
        assert registry.get("journal.corrupt_records").value() == 1


class TestSidecars:
    def test_round_trip_with_digest_envelope(self, tmp_path):
        journal = _journal(tmp_path)
        value = {"metrics": list(range(50))}
        journal.store_result("k", value)
        (stored,) = journal.results_dir.glob("*.pkl")
        assert stored.read_bytes()[: len(SIDECAR_MAGIC)] == SIDECAR_MAGIC
        assert journal.load_result("k") == value
        raw = journal.load_result_bytes("k")
        assert pickle.loads(raw) == value

    def test_digest_mismatch_quarantines(self, tmp_path):
        registry = MetricsRegistry()
        journal = _journal(tmp_path, registry=registry)
        journal.store_result("k", {"v": 1})
        (stored,) = journal.results_dir.glob("*.pkl")
        data = bytearray(stored.read_bytes())
        data[-1] ^= 0xFF
        stored.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert journal.load_result("k") is None
        assert not list(journal.results_dir.glob("*.pkl"))
        (quarantined,) = journal.results_dir.glob("*.corrupt")
        assert quarantined.stem == stored.stem  # evidence preserved
        assert registry.get("journal.sidecar_quarantined").value() == 1
        # Re-loading after quarantine is an ordinary miss, not a warning.
        assert journal.load_result("k") is None

    def test_unrecognized_format_quarantines(self, tmp_path):
        journal = _journal(tmp_path)
        journal.results_dir.mkdir(parents=True)
        digest = journal_mod._key_digest("k")
        (journal.results_dir / f"{digest}.pkl").write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            assert journal.load_result("k") is None

    def test_sweep_orphans_removes_only_tmps(self, tmp_path):
        journal = _journal(tmp_path)
        journal.store_result("k", 1)
        journal.results_dir.joinpath("dead.123.abc.tmp").write_bytes(b"x")
        journal.results_dir.joinpath("dead.456.def.tmp").write_bytes(b"y")
        assert journal.sweep_orphans() == 2
        assert not list(journal.results_dir.glob("*.tmp"))
        assert journal.load_result("k") == 1


class TestScanCache:
    def test_single_parse_across_accessors(self, tmp_path, monkeypatch):
        journal = _journal(tmp_path)
        journal.append("meta", "", fingerprint={"v": 1})
        journal.append("done", "k", attempt=1)
        parses = []
        real_parse = Journal._parse
        monkeypatch.setattr(
            Journal, "_parse",
            lambda self: parses.append(1) or real_parse(self),
        )
        journal.records()
        journal.meta()
        journal.completed_keys()
        assert len(parses) == 1  # one disk pass for all three

    def test_append_invalidates_the_snapshot(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("done", "a", attempt=1)
        assert journal.completed_keys() == {"a"}
        journal.append("done", "b", attempt=1)
        assert journal.completed_keys() == {"a", "b"}

    def test_external_writer_invalidates_too(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append("done", "a", attempt=1)
        assert journal.completed_keys() == {"a"}
        other = Journal(journal.path)
        other.append("done", "b", attempt=1)
        assert journal.completed_keys() == {"a", "b"}


class TestFsync:
    def _count_fsyncs(self, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: calls.append(fd) or real(fd)
        )
        return calls

    def test_default_never_fsyncs(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FSYNC_ENV, raising=False)
        calls = self._count_fsyncs(monkeypatch)
        journal = _journal(tmp_path)
        journal.append("start", "k", attempt=1)
        journal.store_result("k", 1)
        assert calls == []

    def test_ctor_opt_in_fsyncs_appends_and_stores(self, tmp_path,
                                                   monkeypatch):
        calls = self._count_fsyncs(monkeypatch)
        journal = _journal(tmp_path, fsync=True)
        journal.append("start", "k", attempt=1)
        journal.store_result("k", 1)
        assert len(calls) == 2

    def test_env_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FSYNC_ENV, "1")
        calls = self._count_fsyncs(monkeypatch)
        _journal(tmp_path).append("start", "k", attempt=1)
        assert len(calls) == 1


_STORE_LOOP_CHILD = """
import sys
from repro.sim.journal import Journal

journal = Journal(sys.argv[1])
payload = {"blob": b"x" * 2_000_000}
print("ready", flush=True)
i = 0
while True:
    journal.store_result(f"key{i % 4}", payload)
    i += 1
"""

_TORN_RESUME_CHILD = """
import sys
from repro.sim.runner import RunnerPolicy, Task, run_tasks

def work(x):
    return x * 3

tasks = [Task(key=f"k{i}", fn=work, args=(i,)) for i in range(3)]
run_tasks(tasks, RunnerPolicy(journal_path=sys.argv[1]))
print("survived")  # must be unreachable: the torn-tail fault SIGKILLs
"""


def _work(x):
    return x * 3


class TestTwoProcessDrills:
    """Real child processes, real SIGKILLs — nothing mocked."""

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_JOURNAL_FSYNC", None)
        return env

    def test_sigkill_mid_store_leaves_loadable_state(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-c", _STORE_LOOP_CHILD, str(journal_path)],
            stdout=subprocess.PIPE, text=True, env=self._env(),
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            time.sleep(0.2)  # let a few multi-MB stores race the kill
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL

        journal = Journal(journal_path)
        expected = {"blob": b"x" * 2_000_000}
        seen = 0
        for i in range(4):
            loaded = journal.load_result(f"key{i}")
            # Atomic rename: each sidecar is either absent or complete
            # and digest-verified — never a half-written file.
            assert loaded is None or loaded == expected
            seen += loaded is not None
        assert seen >= 1  # the child did land at least one store
        assert not list(journal.results_dir.glob("*.corrupt"))
        journal.sweep_orphans()
        assert not list(journal.results_dir.glob("*.tmp"))

    def test_torn_tail_then_resume_converges(self, tmp_path):
        from repro.sim.chaos import (
            KIND_TORN_TAIL,
            PLAN_ENV,
            STATE_ENV,
            ChaosEngine,
            ChaosPlan,
            FaultEvent,
        )

        journal_path = tmp_path / "j.jsonl"
        plan = ChaosPlan(
            seed=0, events=(FaultEvent(KIND_TORN_TAIL, "", nth=3),)
        )
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        state_dir = tmp_path / "state"

        env = self._env()
        env[PLAN_ENV] = str(plan_path)
        env[STATE_ENV] = str(state_dir)
        proc = subprocess.run(
            [sys.executable, "-c", _TORN_RESUME_CHILD, str(journal_path)],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "survived" not in proc.stdout
        (rec,) = ChaosEngine.injected(state_dir)
        assert rec["kind"] == KIND_TORN_TAIL

        # The crash left exactly the expected damage shape: a torn tail.
        scan = Journal(journal_path).scan()
        assert scan.torn_tail == 1
        assert scan.corrupt_records == 0
        assert scan.checksum_failures == 0

        # Resume (chaos disarmed, this process) repairs and converges.
        tasks = [Task(key=f"k{i}", fn=_work, args=(i,)) for i in range(3)]
        batch = run_tasks(
            tasks,
            RunnerPolicy(journal_path=journal_path, resume=True),
        )
        assert batch.ok
        assert batch.results == {f"k{i}": i * 3 for i in range(3)}
        final = Journal(journal_path)
        assert final.completed_keys() == {"k0", "k1", "k2"}
        final_scan = final.scan()
        assert final_scan.torn_tail == 0
        assert final_scan.corrupt_records == 0
