"""Tests for the parameter-sweep utilities."""

import json

import pytest

from repro.config import ConfigError, LinkConfig, baseline_config
from repro.sim.runner import FAULT_ENV, KIND_CRASH, RunnerPolicy
from repro.sim.sweep import point_key, reprice_sweep, run_sweep
from repro.workloads.base import WorkloadSpec

GB = 2**30


def fast_spec():
    return WorkloadSpec(
        name="sweep", abbr="sweep", suite="HPC",
        footprint_bytes=2**20 * 1024,
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=0.6, min_accesses=1500, max_accesses=2500,
        shared_page_frac=0.5, shared_access_frac=0.6,
        rw_page_frac=0.8, instr_per_access=5.0,
    )


WL = [fast_spec()]
WL_NAMES = [fast_spec()]  # run_workload accepts specs directly


class TestRunSweep:
    def test_rdc_size_sweep_monotone(self):
        base = baseline_config()
        sweep = run_sweep(
            "rdc",
            [0.25 * GB, 2 * GB],
            lambda v: base.with_rdc(int(v)),
            WL_NAMES,
            use_cache=False,
        )
        spec = WL_NAMES[0]
        t_small = sweep.time(0.25 * GB, spec.abbr)
        t_big = sweep.time(2 * GB, spec.abbr)
        assert t_big <= t_small * 1.05

    def test_series_and_points(self):
        base = baseline_config()
        sweep = run_sweep(
            "gpus", [2, 4], lambda v: base.replace(n_gpus=int(v)),
            WL_NAMES, use_cache=False,
        )
        series = sweep.series(WL_NAMES[0].abbr)
        assert set(series) == {2, 4}
        assert all(t > 0 for t in series.values())

    def test_geomean_speedup_vs_pinned_baseline(self):
        base = baseline_config()
        numa = run_sweep("numa", [0.0], lambda v: base, WL_NAMES,
                         use_cache=False)
        carve = run_sweep(
            "rdc", [2 * GB], lambda v: base.with_rdc(int(v)), WL_NAMES,
            use_cache=False,
        )
        sp = carve.geomean_speedup_vs(numa, baseline_value=0.0)
        assert sp[2 * GB] > 1.0


class TestFaultTolerantSweep:
    """The runner-backed sweep path: parallelism, crashes, resume."""

    def _run(self, runner=None):
        base = baseline_config()
        return run_sweep(
            "rdc", [0.5 * GB, 2 * GB],
            lambda v: base.with_rdc(int(v)),
            WL_NAMES, use_cache=False, runner=runner,
        )

    def test_parallel_sweep_bit_identical_to_serial(self):
        serial = self._run()
        parallel = self._run(RunnerPolicy(jobs=2))
        assert parallel.ok
        assert set(parallel.points) == set(serial.points)
        for key, point in serial.points.items():
            assert parallel.points[key].time_s == point.time_s
            assert parallel.points[key].result == point.result

    def test_injected_crash_fails_only_that_point(self, monkeypatch, tmp_path):
        """Acceptance: a crashed worker yields a completed SweepResult
        with a FailureReport for exactly the affected point, and a
        resume pass re-runs only that point."""
        journal = tmp_path / "sweep.jsonl"
        abbr = WL_NAMES[0].abbr
        victim = point_key("rdc", 0.5 * GB, abbr)
        monkeypatch.setenv(FAULT_ENV, f"crash:{victim}")
        sweep = self._run(RunnerPolicy(jobs=2, journal_path=journal))

        assert not sweep.ok
        assert set(sweep.failures) == {(0.5 * GB, abbr)}
        report = sweep.failures[(0.5 * GB, abbr)]
        assert report.kind == KIND_CRASH
        assert victim in sweep.failure_summary()
        # The healthy point completed despite its neighbour crashing.
        assert sweep.time(2 * GB, abbr) > 0

        # Clear the fault; resume re-runs only the crashed point.
        monkeypatch.delenv(FAULT_ENV)
        resumed = self._run(
            RunnerPolicy(jobs=2, journal_path=journal, resume=True)
        )
        assert resumed.ok
        assert resumed.time(0.5 * GB, abbr) > 0
        with journal.open() as f:
            starts = [
                json.loads(line)["key"] for line in f
                if json.loads(line)["event"] == "start"
            ]
        assert starts.count(victim) == 2  # crashed run + resume run
        other = point_key("rdc", 2 * GB, abbr)
        assert starts.count(other) == 1  # never re-executed

    def test_bad_factory_rejected_before_any_simulation(self):
        import dataclasses

        base = baseline_config()
        # dataclasses.replace bypasses SystemConfig.replace's own eager
        # validation, so the sweep's up-front check is what catches it.
        with pytest.raises(ConfigError, match="value -1"):
            run_sweep(
                "gpus", [4, -1],
                lambda v: dataclasses.replace(base, n_gpus=int(v)),
                WL_NAMES, use_cache=False,
            )


class TestRepriceSweep:
    def test_link_bandwidth_repricing(self):
        base = baseline_config()

        def priced(bw):
            return base.replace(link=LinkConfig(inter_gpu_bytes_per_s=bw))

        sweep = reprice_sweep(
            "bw", [32e9, 256e9], base, priced, WL_NAMES, use_cache=False
        )
        abbr = WL_NAMES[0].abbr
        assert sweep.time(32e9, abbr) > sweep.time(256e9, abbr)

    def test_repricing_shares_one_simulation(self):
        base = baseline_config()

        def priced(bw):
            return base.replace(link=LinkConfig(inter_gpu_bytes_per_s=bw))

        sweep = reprice_sweep(
            "bw", [32e9, 64e9], base, priced, WL_NAMES, use_cache=False
        )
        abbr = WL_NAMES[0].abbr
        assert (
            sweep.points[(32e9, abbr)].result
            is sweep.points[(64e9, abbr)].result
        )

    def test_traffic_affecting_change_rejected(self):
        base = baseline_config()
        with pytest.raises(ValueError):
            reprice_sweep(
                "bad", [2.0], base,
                lambda v: base.replace(n_gpus=2),
                WL_NAMES, use_cache=False,
            )

    def test_rdc_change_rejected(self):
        base = baseline_config().with_rdc()
        with pytest.raises(ValueError):
            reprice_sweep(
                "bad", [1.0], base,
                lambda v: base.with_rdc(int(v * GB)),
                WL_NAMES, use_cache=False,
            )
