"""Tests for the observability CLI surfaces (trace, --metrics-out)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestTraceParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace", "Lulesh"])
        assert args.system == "carve-hwc"
        assert args.ring == 65_536
        assert args.sample == 1
        assert args.out is None and args.jsonl is None

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "DOOM"])

    def test_metrics_out_accepted_on_run_and_suite(self):
        run_args = build_parser().parse_args(
            ["run", "Lulesh", "--metrics-out", "m.json"]
        )
        assert run_args.metrics_out == "m.json"
        suite_args = build_parser().parse_args(
            ["suite", "numa-gpu", "--metrics-out", "m.json"]
        )
        assert suite_args.metrics_out == "m.json"


@pytest.mark.slow
class TestTraceCommand:
    def test_writes_perfetto_acceptable_trace(self, tmp_path):
        out = tmp_path / "t.trace.json"
        rc = main([
            "trace", "Lulesh", "--system", "numa-gpu",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_jsonl_sidecar(self, tmp_path):
        out = tmp_path / "t.trace.json"
        jsonl = tmp_path / "t.jsonl"
        rc = main([
            "trace", "Lulesh", "--system", "numa-gpu",
            "--out", str(out), "--jsonl", str(jsonl),
        ])
        assert rc == 0
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records[0]["record"] == "header"
        assert records[-1]["record"] == "metrics"


@pytest.mark.slow
class TestMetricsOut:
    def test_run_writes_metrics_json(self, tmp_path):
        path = tmp_path / "m.json"
        rc = main([
            "run", "Lulesh", "--system", "numa-gpu", "--no-cache",
            "--metrics-out", str(path),
        ])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["workload"] == "Lulesh"
        assert "sim.accesses" in doc["metrics"]
        assert doc["kernel_snapshots"], "no per-kernel snapshots"

    def test_suite_writes_metrics_json(self, tmp_path):
        path = tmp_path / "m.json"
        rc = main([
            "suite", "numa-gpu", "--workloads", "Lulesh",
            "--metrics-out", str(path), "--no-cache",
        ])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["metrics"]["runner.attempts"]["values"] == {"": 1}
        assert "Lulesh" in doc["workloads"]
        assert doc["workloads"]["Lulesh"]["kernels"] > 0
