"""Tests for the CARVE memory-controller front-end."""

import pytest

from repro.config import WRITE_BACK, WRITE_THROUGH, RdcConfig
from repro.core.carve import RDC_BYPASS, RDC_HIT, RDC_MISS, CarveController


def controller(**rdc_kw) -> CarveController:
    return CarveController(gpu_id=0, n_lines=64, config=RdcConfig(**rdc_kw))


class TestReadPath:
    def test_miss_probes_and_fills(self):
        c = controller()
        out = c.remote_read(5)
        assert out.kind == RDC_MISS and out.probed and out.filled

    def test_hit_after_fill(self):
        c = controller()
        c.remote_read(5)
        out = c.remote_read(5)
        assert out.kind == RDC_HIT and out.probed and not out.filled

    def test_no_predictor_by_default(self):
        assert controller().predictor is None


class TestPredictorPath:
    def test_bypass_after_learning(self):
        c = controller(hit_predictor=True)
        # Region 0 misses repeatedly: lines 0..9 are distinct, all miss.
        kinds = [c.remote_read(line).kind for line in range(10)]
        assert RDC_BYPASS in kinds

    def test_bypass_still_fills(self):
        c = controller(hit_predictor=True)
        for line in range(10):
            out = c.remote_read(line)
            if out.kind == RDC_BYPASS:
                assert out.filled and not out.probed
                # The fill is usable on the next access.
                assert c.rdc.contains(line)
                return
        pytest.fail("predictor never learned to bypass")

    def test_predictor_trains_on_probes(self):
        c = controller(hit_predictor=True)
        c.remote_read(5)
        c.remote_read(5)
        assert c.predictor.stats.predictions == 2


class TestWritePath:
    def test_write_through_updates_but_never_defers(self):
        c = controller(write_policy=WRITE_THROUGH)
        c.remote_read(5)
        assert c.remote_write(5)
        assert not c.defers_home_writes

    def test_write_back_defers(self):
        c = controller(write_policy=WRITE_BACK)
        c.remote_read(5)
        assert c.remote_write(5)
        assert c.defers_home_writes
        assert c.rdc.dirty_lines() == [5]

    def test_write_miss_updates_nothing(self):
        c = controller()
        assert not c.remote_write(9)


class TestCoherenceHooks:
    def test_invalidate(self):
        c = controller()
        c.remote_read(5)
        assert c.invalidate(5)
        assert c.remote_read(5).kind == RDC_MISS

    def test_kernel_boundary_epoch_invalidation(self):
        c = controller()
        c.remote_read(5)
        flushed = c.kernel_boundary()
        assert flushed == 0  # write-through: nothing dirty
        assert c.remote_read(5).kind == RDC_MISS

    def test_kernel_boundary_flushes_write_back(self):
        c = controller(write_policy=WRITE_BACK)
        c.remote_read(5)
        c.remote_write(5)
        assert c.kernel_boundary() == 1
