"""Tests for the interconnect byte accountant."""

import pytest

from repro.config import LinkConfig
from repro.numa.interconnect import Interconnect


@pytest.fixture
def net() -> Interconnect:
    return Interconnect(4, LinkConfig())


class TestSend:
    def test_accumulates_bytes(self, net):
        net.send(0, 1, 100)
        net.send(0, 1, 60)
        assert net.bytes_between(0, 1) == 160

    def test_directional(self, net):
        net.send(0, 1, 100)
        assert net.bytes_between(1, 0) == 0

    def test_returns_latency(self, net):
        assert net.send(0, 1, 8) == net.config.latency_ns

    def test_self_link_rejected(self, net):
        with pytest.raises(ValueError):
            net.send(2, 2, 8)

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValueError):
            net.send(0, 1, -1)

    def test_zero_bytes_allowed(self, net):
        net.send(0, 1, 0)
        assert net.bytes_between(0, 1) == 0


class TestAggregates:
    def test_total(self, net):
        net.send(0, 1, 10)
        net.send(2, 3, 20)
        assert net.total_bytes() == 30

    def test_busiest_link(self, net):
        net.send(0, 1, 10)
        net.send(3, 2, 50)
        assert net.busiest_link_bytes() == 50

    def test_busiest_when_idle(self, net):
        assert net.busiest_link_bytes() == 0

    def test_matrix_is_a_copy(self, net):
        net.send(0, 1, 10)
        m = net.matrix()
        m[0][1] = 999
        assert net.bytes_between(0, 1) == 10

    def test_snapshot_and_reset(self, net):
        net.send(0, 1, 10)
        snap = net.snapshot_and_reset()
        assert snap[0][1] == 10
        assert net.total_bytes() == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Interconnect(0, LinkConfig())
