"""Tests for the interconnect-topology pricing extension."""

import pytest

from repro.config import (
    TOPOLOGY_P2P,
    TOPOLOGY_SWITCH,
    ConfigError,
    LinkConfig,
    SystemConfig,
)
from repro.perf.model import PerformanceModel
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult
from tests.conftest import small_config


def switch_config(port_bw=64e9) -> SystemConfig:
    return small_config(
        link=LinkConfig(inter_gpu_bytes_per_s=port_bw, topology=TOPOLOGY_SWITCH)
    )


def link_kernel(loads: dict) -> KernelStats:
    """A kernel whose only cost is the given (src, dst) -> bytes loads."""
    ks = KernelStats(0, 4, 1.0, 32.0)
    for (src, dst), n in loads.items():
        ks.link_bytes[src][dst] = n
    return ks


def run_of(ks) -> RunResult:
    r = RunResult("t", "t", 4)
    r.kernels = [ks]
    return r


class TestConfig:
    def test_default_is_p2p(self):
        assert LinkConfig().topology == TOPOLOGY_P2P

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            LinkConfig(topology="torus").validate()


class TestPricing:
    def test_skewed_traffic_same_on_both(self):
        """All bytes on one pair: one link == one port."""
        ks = link_kernel({(0, 1): 64 * 10**9})
        t_p2p = PerformanceModel(small_config()).kernel_time(ks)
        t_sw = PerformanceModel(switch_config()).kernel_time(ks)
        assert t_p2p.per_gpu[0] == pytest.approx(t_sw.per_gpu[0])

    def test_spread_traffic_prefers_mesh(self):
        """Bytes spread over three peers: mesh aggregates, port serialises."""
        ks = link_kernel({(0, 1): 10**9, (0, 2): 10**9, (0, 3): 10**9})
        t_p2p = PerformanceModel(small_config()).kernel_time(ks)
        t_sw = PerformanceModel(switch_config()).kernel_time(ks)
        assert t_sw.per_gpu[0] == pytest.approx(3 * t_p2p.per_gpu[0])

    def test_switch_port_counts_both_directions_independently(self):
        ks = link_kernel({(0, 1): 2 * 10**9, (2, 0): 3 * 10**9})
        model = PerformanceModel(switch_config(port_bw=1e9))
        kt = model.kernel_time(ks)
        # GPU 0's port: out 2 GB, in 3 GB -> the max binds.
        assert kt.per_gpu[0] == pytest.approx(3.0)

    def test_fat_port_matches_mesh(self):
        ks = link_kernel({(0, 1): 10**9, (0, 2): 10**9, (0, 3): 10**9})
        mesh = PerformanceModel(small_config()).kernel_time(ks)
        fat = PerformanceModel(switch_config(port_bw=3 * 64e9)).kernel_time(ks)
        assert fat.per_gpu[0] == pytest.approx(mesh.per_gpu[0])

    def test_single_gpu_has_no_link_term(self):
        cfg = switch_config().single_gpu()
        ks = KernelStats(0, 1, 1.0, 32.0)
        ks.gpus[0] = GpuKernelStats(instructions=1.0)
        kt = PerformanceModel(cfg).kernel_time(ks)
        assert kt.bottlenecks[0] != "link"


class TestRepricing:
    def test_topology_is_a_valid_repricing_axis(self):
        """Topology changes pricing only, so reprice_sweep accepts it."""
        from repro.sim.sweep import reprice_sweep
        from repro.workloads.base import WorkloadSpec

        spec = WorkloadSpec(
            name="s", abbr="s", suite="HPC",
            footprint_bytes=2**20 * 1024, n_kernels=1, warmup_kernels=0,
            min_accesses=1000, max_accesses=1500,
            shared_page_frac=0.5, shared_access_frac=0.6,
        )
        base = small_config()

        def priced(v):
            topo = TOPOLOGY_SWITCH if v else TOPOLOGY_P2P
            return base.replace(link=LinkConfig(topology=topo))

        sweep = reprice_sweep("topo", [0.0, 1.0], base, priced, [spec],
                              use_cache=False)
        assert sweep.time(1.0, "s") >= sweep.time(0.0, "s") * 0.99
