"""Tests for the statistics containers."""

import pytest

from repro.config import LINE_BYTES
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult


class TestGpuKernelStats:
    def test_reads_derived(self):
        st = GpuKernelStats(accesses=10, writes=3)
        assert st.reads == 7

    def test_dram_bytes(self):
        st = GpuKernelStats(dram_reads=4, dram_writes=1)
        assert st.dram_bytes == 5 * LINE_BYTES

    def test_remote_fraction(self):
        st = GpuKernelStats(remote_reads=2, remote_writes=1,
                            local_reads=6, local_writes=1)
        assert st.remote_fraction == pytest.approx(0.3)

    def test_remote_fraction_no_demand(self):
        assert GpuKernelStats().remote_fraction == 0.0

    def test_rdc_hit_rate(self):
        st = GpuKernelStats(rdc_hits=3, rdc_misses=1)
        assert st.rdc_hit_rate == pytest.approx(0.75)

    def test_merge_adds_every_field(self):
        a = GpuKernelStats(accesses=1, latency_ns=5.0, rdc_hits=2)
        b = GpuKernelStats(accesses=2, latency_ns=1.0, rdc_hits=1)
        a.merge(b)
        assert a.accesses == 3
        assert a.latency_ns == 6.0
        assert a.rdc_hits == 3


class TestKernelStats:
    def test_auto_initialises_per_gpu(self):
        ks = KernelStats(0, 4, 1.0, 32.0)
        assert len(ks.gpus) == 4
        assert len(ks.link_bytes) == 4

    def test_total_merges_gpus(self):
        ks = KernelStats(0, 2, 1.0, 32.0)
        ks.gpus[0].accesses = 3
        ks.gpus[1].accesses = 4
        assert ks.total().accesses == 7

    def test_link_directions(self):
        ks = KernelStats(0, 3, 1.0, 32.0)
        ks.link_bytes[0][1] = 100
        ks.link_bytes[2][0] = 30
        assert ks.link_out_bytes(0) == 100
        assert ks.link_in_bytes(0) == 30
        assert ks.max_link_bytes(0) == 100

    def test_max_link_single_gpu(self):
        ks = KernelStats(0, 1, 1.0, 32.0)
        assert ks.max_link_bytes(0) == 0


class TestRunResult:
    def _result(self):
        r = RunResult("wl", "cfg", 2)
        warm = KernelStats(0, 2, 1.0, 32.0, warmup=True)
        warm.gpus[0].accesses = 100
        main = KernelStats(1, 2, 1.0, 32.0)
        main.gpus[0].accesses = 10
        r.kernels = [warm, main]
        return r

    def test_total_skips_warmup(self):
        assert self._result().total().accesses == 10

    def test_total_can_include_warmup(self):
        assert self._result().total(include_warmup=True).accesses == 110

    def test_measured_kernels(self):
        r = self._result()
        assert [k.kernel_id for k in r.measured_kernels()] == [1]

    def test_replication_pressure(self):
        r = RunResult("wl", "cfg", 2)
        r.pages_mapped = [10, 10]
        r.pages_replicated = [5, 5]
        assert r.replication_pressure == pytest.approx(1.5)

    def test_replication_pressure_empty(self):
        assert RunResult("wl", "cfg", 2).replication_pressure == 1.0
