"""Tests for the DRAM channel model."""

import pytest

from repro.config import LINE_BYTES, MemoryConfig
from repro.memory.address import AddressMap
from repro.memory.dram import DramModel, DramStats


def make_dram(n_channels=4, banks=2, row_bytes=1024):
    cfg = MemoryConfig(
        n_channels=n_channels, banks_per_channel=banks, row_bytes=row_bytes
    )
    amap = AddressMap(lines_per_page=16, n_channels=n_channels, row_bytes=row_bytes)
    return DramModel(cfg, amap)


class TestRowTracking:
    def test_first_access_is_row_miss(self):
        d = make_dram()
        lat = d.access(0, False)
        assert d.stats.row_misses == 1
        assert lat == d.config.row_miss_latency_ns

    def test_same_row_hit(self):
        d = make_dram()
        d.access(0, False)
        # Line 8 shares channel 0 and bank 0 with line 0 (banks alternate
        # every n_channels lines) and falls in the same open row.
        lat = d.access(8, False)
        assert d.stats.row_hits == 1
        assert lat == d.config.row_hit_latency_ns

    def test_different_channel_independent_rows(self):
        d = make_dram()
        d.access(0, False)
        d.access(1, False)  # channel 1, first access = miss
        assert d.stats.row_misses == 2

    def test_row_conflict_reopens(self):
        d = make_dram(n_channels=1, banks=1, row_bytes=256)  # 2 lines/row
        d.access(0, False)
        d.access(1, False)  # same row
        d.access(2, False)  # next row -> miss
        d.access(0, False)  # back -> miss again
        assert d.stats.row_misses == 3
        assert d.stats.row_hits == 1

    def test_streaming_has_high_hit_rate(self):
        d = make_dram(n_channels=1, banks=1, row_bytes=2048)  # 16 lines/row
        for line in range(160):
            d.access(line, False)
        assert d.stats.row_hit_rate > 0.9


class TestCounters:
    def test_read_write_split(self):
        d = make_dram()
        d.access(0, False)
        d.access(1, True)
        d.access(2, True)
        assert d.stats.reads == 1 and d.stats.writes == 2
        assert d.stats.accesses == 3

    def test_byte_accounting(self):
        d = make_dram()
        for i in range(5):
            d.access(i, i % 2 == 0)
        assert d.stats.total_bytes == 5 * LINE_BYTES
        assert d.stats.read_bytes + d.stats.write_bytes == d.stats.total_bytes

    def test_average_latency_between_hit_and_miss(self):
        d = make_dram(n_channels=1, banks=1)
        for line in range(20):
            d.access(line, False)
        assert (
            d.config.row_hit_latency_ns
            <= d.average_latency_ns
            <= d.config.row_miss_latency_ns
        )

    def test_reset(self):
        d = make_dram()
        d.access(0, False)
        d.reset()
        assert d.stats.accesses == 0
        assert d.latency_ns_total == 0
        d.access(0, False)
        assert d.stats.row_misses == 1  # rows closed again


class TestEffectiveBandwidth:
    def test_idle_returns_peak(self):
        d = make_dram()
        assert d.effective_bandwidth() == d.config.bandwidth_bytes_per_s

    def test_streaming_reads_near_peak(self):
        d = make_dram(n_channels=1, banks=1, row_bytes=2048)
        for line in range(1600):
            d.access(line, False)
        assert d.effective_bandwidth() > 0.9 * d.config.bandwidth_bytes_per_s

    def test_random_worse_than_streaming(self):
        stream = make_dram(n_channels=1, banks=1, row_bytes=2048)
        for line in range(200):
            stream.access(line, False)
        rand = make_dram(n_channels=1, banks=1, row_bytes=2048)
        for line in range(200):
            rand.access((line * 7919) % 100_000, False)
        assert rand.effective_bandwidth() < stream.effective_bandwidth()

    def test_mixed_write_turnaround_penalty(self):
        reads = make_dram(n_channels=1, banks=1, row_bytes=2048)
        mixed = make_dram(n_channels=1, banks=1, row_bytes=2048)
        for line in range(200):
            reads.access(line, False)
            mixed.access(line, line % 2 == 0)
        assert mixed.effective_bandwidth() < reads.effective_bandwidth()

    def test_bandwidth_never_exceeds_peak(self):
        d = make_dram()
        for line in range(500):
            d.access(line * 3, line % 3 == 0)
        assert d.effective_bandwidth() <= d.config.bandwidth_bytes_per_s


class TestStatsDataclass:
    def test_hit_rate_empty(self):
        assert DramStats().row_hit_rate == 0.0

    def test_hit_rate(self):
        s = DramStats(row_hits=3, row_misses=1)
        assert s.row_hit_rate == pytest.approx(0.75)
