"""Tests for the RDC hit predictor."""

import pytest

from repro.core.hit_predictor import RdcHitPredictor


class TestPrediction:
    def test_cold_predictor_predicts_hit(self):
        p = RdcHitPredictor()
        assert p.predict_hit(0)

    def test_learns_to_bypass_after_misses(self):
        p = RdcHitPredictor()
        for _ in range(2):
            pred = p.predict_hit(0)
            p.train(0, was_hit=False, predicted_hit=pred)
        assert not p.predict_hit(0)

    def test_recovers_after_hits(self):
        p = RdcHitPredictor()
        for _ in range(3):
            p.train(0, was_hit=False, predicted_hit=True)
        for _ in range(2):
            p.train(0, was_hit=True, predicted_hit=False)
        assert p.predict_hit(0)

    def test_counters_saturate(self):
        p = RdcHitPredictor()
        for _ in range(100):
            p.train(0, was_hit=False, predicted_hit=False)
        for _ in range(100):
            p.train(0, was_hit=True, predicted_hit=True)
        assert p.predict_hit(0)

    def test_regions_share_counters(self):
        p = RdcHitPredictor()
        for _ in range(3):
            p.train(0, was_hit=False, predicted_hit=True)
        # Same region (64 lines) shares the prediction.
        assert not p.predict_hit(5)
        # A different region is still cold (predict hit).
        assert p.predict_hit(RdcHitPredictor.REGION_LINES * 1000 + 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RdcHitPredictor(0)


class TestStats:
    def test_accuracy_tracks_mistakes(self):
        p = RdcHitPredictor()
        p.predict_hit(0)
        p.train(0, was_hit=False, predicted_hit=True)  # false hit
        p.predict_hit(0)
        p.train(0, was_hit=True, predicted_hit=True)
        assert p.stats.predictions == 2
        assert p.stats.false_hits == 1
        assert p.stats.accuracy == pytest.approx(0.5)

    def test_false_miss_recorded(self):
        p = RdcHitPredictor()
        p.train(0, was_hit=True, predicted_hit=False)
        assert p.stats.false_misses == 1

    def test_accuracy_with_no_predictions(self):
        assert RdcHitPredictor().stats.accuracy == 1.0
