"""Tests for the Remote Data Cache (Alloy-style DRAM cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WRITE_BACK, WRITE_THROUGH
from repro.core.rdc import DIRTY_MAP_REGION_LINES, RemoteDataCache


class TestProbeInsert:
    def test_cold_probe_misses(self):
        rdc = RemoteDataCache(64)
        assert not rdc.probe(5)
        assert rdc.stats.misses == 1

    def test_insert_then_hit(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        assert rdc.probe(5)
        assert rdc.stats.hits == 1

    def test_direct_mapped_conflict(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        rdc.insert(5 + 64)  # same set
        assert not rdc.probe(5)
        assert rdc.probe(5 + 64)

    def test_different_sets_coexist(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        rdc.insert(6)
        assert rdc.probe(5) and rdc.probe(6)

    def test_contains_no_side_effects(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        probes = rdc.stats.probes
        assert rdc.contains(5)
        assert not rdc.contains(6)
        assert rdc.stats.probes == probes

    def test_hit_rate(self):
        rdc = RemoteDataCache(64)
        rdc.insert(1)
        rdc.probe(1)
        rdc.probe(2)
        assert rdc.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            RemoteDataCache(0)
        with pytest.raises(ValueError):
            RemoteDataCache(16, write_policy="lazy")


class TestEpochInvalidation:
    def test_boundary_invalidates_instantly(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        rdc.kernel_boundary_flush()
        assert not rdc.probe(5)
        assert rdc.stats.stale_epoch_misses == 1

    def test_insert_after_boundary_valid(self):
        rdc = RemoteDataCache(64)
        rdc.kernel_boundary_flush()
        rdc.insert(5)
        assert rdc.probe(5)

    def test_streams_isolated(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5, stream=0)
        rdc.insert(6, stream=1)
        rdc.kernel_boundary_flush(stream=0)
        assert not rdc.probe(5, stream=0)
        assert rdc.probe(6, stream=1)

    def test_rollover_forces_physical_reset(self):
        rdc = RemoteDataCache(64, epoch_bits=1)  # max epoch 1
        rdc.insert(5)
        rdc.kernel_boundary_flush()  # epoch 1
        rdc.insert(6)
        rdc.kernel_boundary_flush()  # rollover -> reset
        assert rdc.stats.physical_resets == 1
        assert not rdc.contains(5) and not rdc.contains(6)

    def test_occupancy_tracks_current_epoch(self):
        rdc = RemoteDataCache(4)
        rdc.insert(0)
        rdc.insert(1)
        assert rdc.occupancy() == pytest.approx(0.5)
        rdc.kernel_boundary_flush()
        assert rdc.occupancy() == 0.0


class TestWritePolicies:
    def test_write_through_copy_stays_clean(self):
        rdc = RemoteDataCache(64, write_policy=WRITE_THROUGH)
        rdc.insert(5)
        assert rdc.write(5)
        assert rdc.dirty_lines() == []
        assert rdc.kernel_boundary_flush() == 0

    def test_write_back_marks_dirty(self):
        rdc = RemoteDataCache(64, write_policy=WRITE_BACK)
        rdc.insert(5)
        rdc.write(5)
        assert rdc.dirty_lines() == [5]

    def test_write_miss_returns_false(self):
        rdc = RemoteDataCache(64)
        assert not rdc.write(9)

    def test_write_to_stale_epoch_misses(self):
        rdc = RemoteDataCache(64, write_policy=WRITE_BACK)
        rdc.insert(5)
        rdc.kernel_boundary_flush()
        assert not rdc.write(5)

    def test_write_back_flush_counts_and_cleans(self):
        rdc = RemoteDataCache(64, write_policy=WRITE_BACK)
        rdc.insert(5)
        rdc.insert(6)
        rdc.write(5)
        assert rdc.kernel_boundary_flush() == 1
        assert rdc.dirty_lines() == []

    def test_dirty_map_tracks_regions(self):
        rdc = RemoteDataCache(1024, write_policy=WRITE_BACK)
        rdc.insert(0, dirty=True)
        rdc.insert(DIRTY_MAP_REGION_LINES, dirty=True)
        assert rdc.dirty_map_regions() == 2

    def test_dirty_insert_write_through_tracks_region(self):
        rdc = RemoteDataCache(1024, write_policy=WRITE_THROUGH)
        rdc.insert(3, dirty=True)
        assert rdc.dirty_map_regions() == 1


class TestCoherenceInvalidation:
    def test_invalidate_resident_line(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        assert rdc.invalidate_line(5)
        assert not rdc.contains(5)

    def test_invalidate_absent_line(self):
        rdc = RemoteDataCache(64)
        assert not rdc.invalidate_line(5)

    def test_invalidate_wrong_tag_leaves_occupant(self):
        rdc = RemoteDataCache(64)
        rdc.insert(5)
        assert not rdc.invalidate_line(5 + 64)
        assert rdc.contains(5)


class TestRdcProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=200))
    def test_last_insert_per_set_wins(self, lines):
        rdc = RemoteDataCache(32)
        last_in_set = {}
        for line in lines:
            rdc.insert(line)
            last_in_set[line % 32] = line
        for line in last_in_set.values():
            assert rdc.contains(line)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=100),
        st.integers(min_value=0, max_value=5),
    )
    def test_boundary_count_invalidates_everything(self, lines, boundaries):
        rdc = RemoteDataCache(32)
        for line in lines:
            rdc.insert(line)
        for _ in range(boundaries):
            rdc.kernel_boundary_flush()
        if boundaries:
            for line in lines:
                assert not rdc.contains(line)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100))
    def test_probes_equal_hits_plus_misses(self, lines):
        rdc = RemoteDataCache(16)
        for line in lines:
            if not rdc.probe(line):
                rdc.insert(line)
        assert rdc.stats.probes == rdc.stats.hits + rdc.stats.misses
        assert rdc.stats.inserts == rdc.stats.misses
