"""Tests for the Unified-Memory capacity-spill model (Table V(b))."""

import pytest

from repro.numa.unified_memory import (
    assess_capacity_loss,
    spilled_access_fraction,
)
from tests.conftest import small_config


class TestSpilledAccessFraction:
    def test_zero_spill(self):
        assert spilled_access_fraction([10, 5, 1], 0.0) == 0.0

    def test_full_spill(self):
        assert spilled_access_fraction([10, 5, 1], 1.0) == 1.0

    def test_coldest_pages_spill_first(self):
        counts = [100, 10, 1, 1]  # hottest first
        frac = spilled_access_fraction(counts, 0.5)
        assert frac == pytest.approx(2 / 112)

    def test_empty_histogram(self):
        assert spilled_access_fraction([], 0.5) == 0.0

    def test_rounding_to_zero_pages(self):
        assert spilled_access_fraction([5] * 10, 0.01) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            spilled_access_fraction([1], 1.5)

    def test_uniform_heat_proportional(self):
        counts = [4] * 100
        assert spilled_access_fraction(counts, 0.25) == pytest.approx(0.25)


class TestAssessCapacityLoss:
    def _counts(self):
        # Strong heat skew: 10 hot pages, 90 cold pages.
        return [1000] * 10 + [1] * 90

    def test_no_spill_no_slowdown(self):
        a = assess_capacity_loss(self._counts(), 0.0, small_config(), 1.0, 10090)
        assert a.slowdown == 1.0
        assert a.spilled_pages == 0

    def test_slowdown_below_one_with_spill(self):
        a = assess_capacity_loss(self._counts(), 0.5, small_config(), 1.0, 10090)
        assert 0.0 < a.slowdown < 1.0

    def test_monotone_in_spill_fraction(self):
        cfg = small_config()
        slows = [
            assess_capacity_loss(self._counts(), f, cfg, 1.0, 10090).slowdown
            for f in (0.1, 0.3, 0.6, 0.9)
        ]
        assert slows == sorted(slows, reverse=True)

    def test_cold_spill_cheaper_than_hot_heat(self):
        """Skewed heat makes the same spill fraction far cheaper."""
        cfg = small_config()
        skewed = assess_capacity_loss(self._counts(), 0.25, cfg, 1.0, 10090)
        flat = assess_capacity_loss([100] * 100, 0.25, cfg, 1.0, 10000)
        assert skewed.slowdown > flat.slowdown

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            assess_capacity_loss([1], 0.1, small_config(), 0.0, 1)

    def test_invalid_amplification(self):
        with pytest.raises(ValueError):
            assess_capacity_loss(
                [1], 0.1, small_config(), 1.0, 1, transfer_amplification=0.5
            )

    def test_amplification_worsens_slowdown(self):
        cfg = small_config()
        lo = assess_capacity_loss([10] * 10, 0.5, cfg, 1.0, 100,
                                  transfer_amplification=1.0)
        hi = assess_capacity_loss([10] * 10, 0.5, cfg, 1.0, 100,
                                  transfer_amplification=4.0)
        assert hi.slowdown < lo.slowdown

    def test_assessment_reports_inputs(self):
        a = assess_capacity_loss([10] * 8, 0.25, small_config(), 1.0, 80)
        assert a.spill_fraction == 0.25
        assert a.spilled_pages == 2
        assert a.spilled_access_fraction == pytest.approx(0.25)
