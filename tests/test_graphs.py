"""Tests for the networkx-backed BFS trace generator."""

import numpy as np
import pytest

from repro.analysis.sharing import profile_sharing
from repro.sim.driver import run_workload, time_of
from repro.workloads.graphs import (
    GraphWorkloadSpec,
    generate_bfs_trace,
    graph_footprint_lines,
)
from tests.conftest import small_config


@pytest.fixture(scope="module")
def trace():
    spec = GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
    return generate_bfs_trace(spec, small_config())


class TestStructure:
    def test_one_kernel_per_level_capped(self, trace):
        assert 2 <= trace.n_kernels <= 12

    def test_frontier_grows_then_shrinks(self, trace):
        sizes = [k.n_accesses for k in trace.kernels]
        peak = sizes.index(max(sizes))
        assert 0 < peak  # the source level is tiny

    def test_lines_within_layout(self, trace):
        spec = GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
        total = graph_footprint_lines(spec)
        for k in trace.kernels:
            assert k.lines.min() >= 0
            assert k.lines.max() < total

    def test_writes_only_to_vertex_state(self, trace):
        spec = GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
        from repro.workloads.graphs import _build_graph, _layout

        g = _build_graph(spec)
        n_edges = sum(len(list(g.neighbors(v)))
                      for v in range(g.number_of_nodes()))
        layout = _layout(g.number_of_nodes(), n_edges)
        for k in trace.kernels:
            written = k.lines[k.is_write]
            assert (written >= layout.state_start_line).all()

    def test_deterministic(self):
        spec = GraphWorkloadSpec(grid_width=16, grid_height=16, seed=5)
        t1 = generate_bfs_trace(spec, small_config())
        t2 = generate_bfs_trace(spec, small_config())
        for k1, k2 in zip(t1.kernels, t2.kernels):
            assert np.array_equal(k1.lines, k2.lines)


class TestBehaviour:
    def test_csr_is_shared_state_is_rw(self, trace):
        cfg = small_config()
        profile = profile_sharing(trace, cfg)
        dist = profile.access_distribution("page")
        # BFS over a shared graph: substantial sharing, some of it RW.
        assert dist.shared > 0.3
        assert dist.rw_shared > 0.05

    def test_runs_through_the_simulator(self, trace):
        cfg = small_config()
        spec = GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
        wl_spec = _as_workload_spec(spec)
        result = run_workload(wl_spec, cfg, trace=trace)
        assert result.total(include_warmup=True).accesses == trace.n_accesses
        assert time_of(result, cfg) > 0

    def test_carve_reduces_remote_traffic_on_bfs(self, trace):
        from repro.config import COHERENCE_NONE

        cfg = small_config()
        carve = cfg.with_rdc(coherence=COHERENCE_NONE)
        wl_spec = _as_workload_spec(
            GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
        )
        r_base = run_workload(wl_spec, cfg, trace=trace)
        r_carve = run_workload(wl_spec, carve, trace=trace)
        assert (
            r_carve.total(include_warmup=True).remote_reads
            < r_base.total(include_warmup=True).remote_reads
        )

    def test_hardware_coherence_costs_refetches_on_write_heavy_bfs(
        self, trace
    ):
        """BFS writes per-edge state, so GPU-VI invalidations force peer
        refetches the baseline's relaxed software coherence never pays —
        the §V-E caveat about frequent read-write sharing, in miniature."""
        from repro.config import COHERENCE_HARDWARE, COHERENCE_NONE

        wl_spec = _as_workload_spec(
            GraphWorkloadSpec(grid_width=24, grid_height=24, seed=3)
        )
        base = small_config()
        noc = run_workload(wl_spec, base.with_rdc(coherence=COHERENCE_NONE),
                           trace=trace).total(include_warmup=True)
        hwc = run_workload(wl_spec, base.with_rdc(coherence=COHERENCE_HARDWARE),
                           trace=trace).total(include_warmup=True)
        assert hwc.remote_reads > noc.remote_reads
        assert hwc.invalidates_sent > 0


def _as_workload_spec(spec: GraphWorkloadSpec):
    """Minimal WorkloadSpec shim so the driver can label/cache the run."""
    from repro.workloads.base import WorkloadSpec

    return WorkloadSpec(
        name=spec.name, abbr=spec.name, suite="graph",
        footprint_bytes=graph_footprint_lines(spec) * 128 * 1024,
        n_kernels=1, warmup_kernels=0,
    )
