"""Tests for epoch-counter invalidation."""

import pytest

from repro.core.epoch import EpochCounters


class TestEpochs:
    def test_streams_start_at_zero(self):
        e = EpochCounters()
        assert e.current(0) == 0
        assert e.current(7) == 0

    def test_advance_increments(self):
        e = EpochCounters()
        assert not e.advance(0)
        assert e.current(0) == 1

    def test_streams_independent(self):
        e = EpochCounters()
        e.advance(0)
        assert e.current(1) == 0

    def test_is_current(self):
        e = EpochCounters()
        assert e.is_current(0, stream=0)
        e.advance(0)
        assert not e.is_current(0, stream=0)
        assert e.is_current(1, stream=0)

    def test_max_value_matches_bits(self):
        assert EpochCounters(bits=20).max_value == (1 << 20) - 1

    def test_rollover(self):
        e = EpochCounters(bits=2)  # max 3
        for _ in range(3):
            assert not e.advance(0)
        assert e.advance(0)  # 4th increment rolls over
        assert e.current(0) == 0
        assert e.rollovers == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            EpochCounters(bits=0)
        with pytest.raises(ValueError):
            EpochCounters(bits=40)

    def test_many_advances_stay_in_range(self):
        e = EpochCounters(bits=3)
        for _ in range(100):
            e.advance(0)
            assert 0 <= e.current(0) <= e.max_value
