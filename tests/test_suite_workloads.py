"""Tests for the Table II benchmark suite definitions."""

import pytest

from repro.workloads import suite
from repro.workloads.base import generate_trace, trace_cost_estimate
from tests.conftest import small_config


class TestSuiteShape:
    def test_twenty_workloads(self):
        assert len(suite.SUITE) == 20

    def test_abbreviations_unique(self):
        assert len(suite.BY_ABBR) == 20

    def test_every_workload_has_a_group(self):
        assert set(suite.GROUPS) == set(suite.BY_ABBR)

    def test_group_sizes_match_paper(self):
        """Fig. 2: 8 benign, 3 fixed by RO replication, rest need RW."""
        groups = list(suite.GROUPS.values())
        assert groups.count(suite.GROUP_LOW_NUMA) == 8
        assert groups.count(suite.GROUP_RO_FIXED) == 3
        assert groups.count(suite.GROUP_RW_SHARED) == 8
        assert groups.count(suite.GROUP_LATENCY) == 1

    def test_suites_match_table2(self):
        by_suite = {}
        for w in suite.SUITE:
            by_suite.setdefault(w.suite, []).append(w.abbr)
        assert len(by_suite["HPC"]) == 13
        assert len(by_suite["ML"]) == 3
        assert len(by_suite["Other"]) == 4

    def test_footprints_match_table2_extremes(self):
        assert suite.get("RandAccess").footprint_bytes == 15 * 2**30
        assert suite.get("Lulesh").footprint_bytes == 24 * 2**20

    def test_lookup_by_abbr(self):
        assert suite.get("XSBench").name == "XSBench_17K_grid"

    def test_unknown_abbr(self):
        with pytest.raises(KeyError):
            suite.get("DOOM")

    def test_all_abbrs_order_matches_suite(self):
        assert suite.all_abbrs() == [w.abbr for w in suite.SUITE]


class TestTable2Rows:
    def test_row_count(self):
        assert len(suite.table2_rows()) == 20

    def test_footprint_formatting(self):
        rows = {abbr: fp for (_, _, abbr, fp) in suite.table2_rows()}
        assert rows["RandAccess"] == "15.0 GB"
        assert rows["Lulesh"] == "24 MB"


class TestGroupCharacteristics:
    def test_ro_group_has_no_rw_pages(self):
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_RO_FIXED:
                assert suite.get(abbr).rw_page_frac == 0.0

    def test_rw_group_has_rw_pages_and_shared_traffic(self):
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_RW_SHARED:
                w = suite.get(abbr)
                assert w.rw_page_frac > 0.5
                assert w.shared_access_frac >= 0.3

    def test_low_numa_group_is_benign(self):
        """Either little shared traffic or strongly compute-bound."""
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_LOW_NUMA:
                w = suite.get(abbr)
                assert w.shared_access_frac <= 0.1 or w.instr_per_access >= 100

    def test_latency_outlier_is_low_mlp(self):
        assert suite.get("RandAccess").concurrency_per_sm <= 8

    def test_false_sharing_prevails_in_rw_group(self):
        """Line-level writes are rare even where pages are read-write."""
        for abbr, group in suite.GROUPS.items():
            if group == suite.GROUP_RW_SHARED:
                assert suite.get(abbr).shared_write_frac <= 0.1


class TestSuiteGeneratability:
    def test_every_spec_generates(self):
        cfg = small_config()
        for w in suite.SUITE:
            cheap = w.scaled(
                n_kernels=1, warmup_kernels=0,
                min_accesses=500, max_accesses=1000,
            )
            t = generate_trace(cheap, cfg)
            assert t.n_accesses > 0

    def test_total_suite_cost_is_tractable(self):
        cfg = small_config()
        total = sum(trace_cost_estimate(w, cfg) for w in suite.SUITE)
        assert total < 8_000_000  # full-suite runs stay minutes, not hours
