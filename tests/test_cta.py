"""Tests for kernel/workload trace containers."""

import numpy as np
import pytest

from repro.gpu.cta import KernelTrace, WorkloadTrace
from tests.conftest import make_kernel, make_trace


class TestKernelTrace:
    def test_basic_properties(self):
        k = make_kernel([1, 2, 3, 2], writes=[0, 1, 0, 0])
        assert k.n_accesses == 4
        assert k.n_writes == 1
        assert k.footprint_lines() == 3

    def test_total_instructions(self):
        k = make_kernel([1, 2], instr_per_access=5.0)
        assert k.total_instructions == 10.0

    def test_arrays_coerced_to_dtypes(self):
        k = make_kernel([1, 2])
        assert k.lines.dtype == np.int64
        assert k.cta_ids.dtype == np.int32
        assert k.is_write.dtype == bool

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            KernelTrace(
                kernel_id=0, n_ctas=2,
                cta_ids=np.asarray([0]),
                lines=np.asarray([1, 2]),
                is_write=np.asarray([False, False]),
            )

    def test_cta_id_out_of_grid_rejected(self):
        with pytest.raises(ValueError):
            make_kernel([1, 2], cta_ids=[0, 9], n_ctas=2)

    def test_zero_ctas_rejected(self):
        with pytest.raises(ValueError):
            make_kernel([1], n_ctas=0, cta_ids=[0])

    def test_nonpositive_intensity_rejected(self):
        with pytest.raises(ValueError):
            make_kernel([1], instr_per_access=0)
        with pytest.raises(ValueError):
            make_kernel([1], concurrency_per_sm=0)

    def test_empty_kernel_allowed(self):
        k = make_kernel([])
        assert k.n_accesses == 0
        assert k.footprint_lines() == 0

    def test_warmup_default_false(self):
        assert not make_kernel([1]).warmup


class TestWorkloadTrace:
    def test_counts(self):
        t = make_trace([make_kernel([1, 2]), make_kernel([2, 3], kernel_id=1)])
        assert t.n_kernels == 2
        assert t.n_accesses == 4
        assert t.footprint_lines() == 3

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace(name="empty", kernels=[])

    def test_iteration(self):
        ks = [make_kernel([1]), make_kernel([2], kernel_id=1)]
        t = make_trace(ks)
        assert list(t) == ks
