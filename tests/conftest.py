"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    GpuConfig,
    LinkConfig,
    MemoryConfig,
    RdcConfig,
    SystemConfig,
)
from repro.gpu.cta import KernelTrace, WorkloadTrace


def small_config(**changes) -> SystemConfig:
    """A tiny, fast system: 4 GPUs, 16-line pages, 64-line caches.

    Uses the production defaults but can be overridden per test.  The
    default scale (1024) already shrinks everything; tests mostly tweak
    policies rather than geometry.
    """
    cfg = SystemConfig()
    return cfg.replace(**changes) if changes else cfg


def tiny_rdc_config(rdc_bytes: int = 2 * 2**30, **rdc_kw) -> SystemConfig:
    return small_config().with_rdc(rdc_bytes, **rdc_kw)


def make_kernel(
    lines,
    writes=None,
    n_ctas: int = 4,
    cta_ids=None,
    kernel_id: int = 0,
    **kw,
) -> KernelTrace:
    """Build a kernel trace from plain lists."""
    lines = np.asarray(lines, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(lines), dtype=bool)
    else:
        writes = np.asarray(writes, dtype=bool)
    if cta_ids is None:
        cta_ids = np.arange(len(lines), dtype=np.int32) % n_ctas
    else:
        cta_ids = np.asarray(cta_ids, dtype=np.int32)
    return KernelTrace(
        kernel_id=kernel_id,
        n_ctas=n_ctas,
        cta_ids=cta_ids,
        lines=lines,
        is_write=writes,
        **kw,
    )


def make_trace(kernels, name: str = "test") -> WorkloadTrace:
    return WorkloadTrace(name=name, kernels=list(kernels))


@pytest.fixture
def config() -> SystemConfig:
    return small_config()


@pytest.fixture
def carve_cfg() -> SystemConfig:
    return tiny_rdc_config()


@pytest.fixture(autouse=True)
def _no_sim_cache(monkeypatch):
    """Tests never read or write the on-disk simulation cache."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


__all__ = [
    "GpuConfig",
    "LinkConfig",
    "MemoryConfig",
    "RdcConfig",
    "small_config",
    "tiny_rdc_config",
    "make_kernel",
    "make_trace",
]
