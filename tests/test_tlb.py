"""Tests for the TLB hierarchy."""

from repro.memory.tlb import TlbHierarchy


class TestTranslate:
    def test_cold_miss_walks(self):
        t = TlbHierarchy()
        assert not t.translate(1)
        assert t.stats.walks == 1

    def test_second_access_hits_l1(self):
        t = TlbHierarchy()
        t.translate(1)
        assert t.translate(1)
        assert t.stats.l1_hits == 1

    def test_l2_backstop(self):
        t = TlbHierarchy(l1_entries=2, l2_entries=64)
        t.translate(1)
        t.translate(2)
        t.translate(3)  # evicts 1 from tiny L1
        assert t.translate(1)  # L2 hit refills L1
        assert t.stats.l2_hits == 1

    def test_hit_rates(self):
        t = TlbHierarchy()
        t.translate(1)
        t.translate(1)
        t.translate(1)
        assert t.stats.l1_hit_rate > 0.6
        assert t.stats.overall_hit_rate > 0.6

    def test_rates_zero_when_untouched(self):
        t = TlbHierarchy()
        assert t.stats.l1_hit_rate == 0.0
        assert t.stats.overall_hit_rate == 0.0


class TestShootdownAndFlush:
    def test_shootdown_removes_both_levels(self):
        t = TlbHierarchy()
        t.translate(7)
        t.shootdown(7)
        assert not t.translate(7)  # walks again
        assert t.stats.walks == 2

    def test_shootdown_absent_is_noop(self):
        t = TlbHierarchy()
        t.shootdown(42)

    def test_flush_clears_everything(self):
        t = TlbHierarchy()
        for p in range(10):
            t.translate(p)
        t.flush()
        assert not t.translate(0)


class TestReach:
    def test_reach_at_2mb_pages(self):
        t = TlbHierarchy(l2_entries=1024)
        # 1024 entries x 2 MB = 2 GB: why the paper keeps large pages.
        assert t.reach_bytes(2 * 2**20) == 2 * 2**30

    def test_reach_collapses_at_4kb_pages(self):
        t = TlbHierarchy(l2_entries=1024)
        assert t.reach_bytes(4 * 2**10) == 4 * 2**20
