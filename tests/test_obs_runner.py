"""Runner telemetry: metrics registry wiring + journal enrichment."""

from __future__ import annotations

import json
import os

from repro.obs import Observability
from repro.obs.metrics import default_registry
from repro.sim.runner import RunnerPolicy, Task, run_tasks

from .conftest import make_kernel, make_trace, small_config


def _ok(x):
    return x * 2


def _boom(_x):
    raise ValueError("deliberate test failure")


def _flaky(marker_dir, x):
    sentinel = os.path.join(marker_dir, "attempted")
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("first attempt always fails")
    return x + 100


def _simulate(_x):
    """A task whose result is a real RunResult (for digest enrichment)."""
    from repro.numa.system import MultiGpuSystem

    cfg = small_config()
    trace = make_trace([make_kernel(list(range(16)), n_ctas=4)])
    return MultiGpuSystem(cfg).run(trace)


class TestRegistryWiring:
    def test_attempts_counted(self):
        registry = default_registry()
        batch = run_tasks(
            [Task(key=k, fn=_ok, args=(1,)) for k in ("a", "b", "c")],
            RunnerPolicy(),
            registry=registry,
        )
        assert len(batch.results) == 3
        assert registry.get("runner.attempts").total() == 3
        assert registry.get("runner.retries").total() == 0

    def test_retries_and_failures_counted(self, tmp_path):
        registry = default_registry()
        tasks = [
            Task(key="flaky", fn=_flaky, args=(str(tmp_path), 1)),
            Task(key="dead", fn=_boom, args=(1,)),
        ]
        batch = run_tasks(
            tasks,
            RunnerPolicy(retries=1, backoff_base_s=0.0),
            registry=registry,
        )
        assert batch.results["flaky"] == 101
        assert "dead" in batch.failures
        # flaky: 2 attempts (1 retry); dead: 2 attempts (1 retry), fails.
        assert registry.get("runner.attempts").total() == 4
        assert registry.get("runner.retries").total() == 2
        assert registry.get("runner.failures").total() == 1

    def test_obs_supplies_registry_and_gets_retry_events(self, tmp_path):
        obs = Observability(trace=True)
        run_tasks(
            [Task(key="flaky", fn=_flaky, args=(str(tmp_path), 1))],
            RunnerPolicy(retries=1, backoff_base_s=0.0),
            obs=obs,
        )
        assert obs.registry.get("runner.retries").total() == 1
        retry_events = [
            ev for ev in obs.tracer.events() if ev.kind == "runner.retry"
        ]
        assert len(retry_events) == 1
        assert retry_events[0].payload["key"] == "flaky"

    def test_no_registry_is_free(self):
        batch = run_tasks(
            [Task(key="a", fn=_ok, args=(2,))], RunnerPolicy()
        )
        assert batch.results["a"] == 4


class TestJournalEnrichment:
    def test_done_record_carries_metrics_digest(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        batch = run_tasks(
            [Task(key="sim", fn=_simulate, args=(0,))],
            RunnerPolicy(journal_path=journal),
        )
        assert "sim" in batch.results
        done = [
            json.loads(line) for line in journal.read_text().splitlines()
            if json.loads(line)["event"] == "done"
        ]
        assert len(done) == 1
        digest = done[0]["metrics"]
        assert digest["kernels"] == 1
        assert digest["sim.accesses"] == 16

    def test_non_result_tasks_have_no_metrics_key(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_tasks(
            [Task(key="a", fn=_ok, args=(1,))],
            RunnerPolicy(journal_path=journal),
        )
        done = [
            json.loads(line) for line in journal.read_text().splitlines()
            if json.loads(line)["event"] == "done"
        ]
        assert "metrics" not in done[0]
