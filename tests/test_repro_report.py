"""Tests for the repro report dashboard (repro.obs.report + CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.regress import compare_records
from repro.obs.report import (
    bench_trend_section,
    build_report,
    comparison_markdown,
    comparison_section,
    inventory_section,
    link_matrix_of,
    link_matrix_section,
    load_journal_rows,
    load_metrics_docs,
    markdown_to_html,
    provenance_section,
)

from .test_regress import fake_record


def _digest(**over):
    digest = {
        "workload": "Lulesh", "config": "numa-gpu", "kernels": 5,
        "sim.accesses": 100_000, "sim.writes": 9_000,
        "mem.remote.read": 40_000, "mem.remote.write": 2_000,
        "remote_fraction": 0.42, "rdc.hit": 0, "rdc.miss": 0,
        "coh.invalidate": 0, "mig.page_moves": 0,
        "link.bytes": 1_000_000, "mem.pages_replicated": 0,
    }
    digest.update(over)
    return digest


def _write_journal(path, system="numa-gpu", rdc_hit=0):
    """A minimal journal: one meta record, one done point."""
    records = [
        {"event": "meta", "key": "", "ts": 1.0,
         "fingerprint": {"schema_version": 1, "code_version": 10,
                         "git_sha": "abc123def456", "python": "3.11.7"}},
        {"event": "start", "key": f"{system}/Lulesh", "ts": 2.0,
         "attempt": 1},
        {"event": "done", "key": f"{system}/Lulesh", "ts": 3.0,
         "attempt": 1, "elapsed_s": 0.5, "config_hash": "cafe",
         "metrics": {**_digest(config=system), "rdc.hit": rdc_hit}},
    ]
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return path


class TestLoaders:
    def test_journal_rows_and_meta(self, tmp_path):
        path = _write_journal(tmp_path / "j.jsonl")
        metas, rows = load_journal_rows([path])
        assert len(metas) == 1 and metas[0]["git_sha"] == "abc123def456"
        assert len(rows) == 1
        assert rows[0]["event"] == "done"
        assert rows[0]["metrics"]["sim.accesses"] == 100_000

    def test_failed_overrides_earlier_done(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "done", "key": "a", "ts": 1.0,
                                 "attempt": 1}) + "\n")
            fh.write(json.dumps({"event": "failed", "key": "a", "ts": 2.0,
                                 "kind": "timeout"}) + "\n")
        _, rows = load_journal_rows([path])
        assert rows[0]["event"] == "failed"

    def test_link_matrix_parsed_from_rendered_labels(self):
        doc = {"metrics": {"link.bytes": {"values": {
            "src=0,dst=1": 10, "src=1,dst=0": 20,
        }}}}
        assert link_matrix_of(doc) == [[0, 10], [20, 0]]

    def test_link_matrix_absent(self):
        assert link_matrix_of({"metrics": {}}) is None

    def test_unreadable_metrics_docs_skipped(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert load_metrics_docs([bad, tmp_path / "missing.json"]) == []


class TestSections:
    def test_comparison_pivots_systems_per_workload(self, tmp_path):
        j1 = _write_journal(tmp_path / "a.jsonl", system="numa-gpu")
        j2 = _write_journal(tmp_path / "b.jsonl", system="carve-hwc",
                            rdc_hit=4_200)
        _, rows = load_journal_rows([j1, j2])
        text = comparison_section(rows)
        assert "### Lulesh" in text
        assert "carve-hwc" in text and "numa-gpu" in text
        assert "4200" in text or "4,200" in text

    def test_inventory_marks_failures(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({
                "event": "failed", "key": "numa-gpu/Euler", "ts": 1.0,
                "kind": "timeout", "attempts": 3, "elapsed_s": 9.0,
            }) + "\n")
        _, rows = load_journal_rows([path])
        text = inventory_section(rows)
        assert "timeout" in text

    def test_empty_sections_degrade_gracefully(self):
        assert "No journal fingerprints" in provenance_section([])
        assert "No " in inventory_section([])
        assert "_No" in link_matrix_section([])
        assert "No BENCH" in bench_trend_section([])

    def test_bench_trend_renders_stamped_history(self):
        doc = {
            "_path": "BENCH_x.json", "bench": "x", "speedup": 2.5,
            "provenance": {"schema_version": 1,
                           "generated_at": "2026-08-06T00:00:00+00:00",
                           "git_sha": "bbb", "code_version": 10,
                           "trend_keys": ["speedup"]},
            "history": [{"generated_at": "2026-08-05T00:00:00+00:00",
                         "git_sha": "aaa", "code_version": 9,
                         "speedup": 2.0}],
        }
        text = bench_trend_section([doc])
        assert "aaa" in text and "bbb" in text
        assert "2.5" in text and "speedup" in text

    def test_bench_trend_flags_unstamped(self):
        text = bench_trend_section([{"_path": "BENCH_x.json", "bench": "x"}])
        assert "Unstamped" in text


class TestComparisonMarkdown:
    def test_failure_names_metric_and_delta(self):
        bad = fake_record()
        bad["deterministic"]["rdc.hit"] = 9_999
        report = compare_records(fake_record(), bad)
        md = comparison_markdown([report])
        assert "rdc.hit" in md
        assert "FAIL" in md
        assert "delta" in md
        assert "carve-hwc/Lulesh" in md

    def test_all_ok_is_compact(self):
        report = compare_records(fake_record(), fake_record())
        md = comparison_markdown([report])
        assert "1/1" in md and "FAIL" not in md

    def test_no_reports(self):
        assert "No baseline comparisons" in comparison_markdown([])


class TestBuildReport:
    def test_full_document(self, tmp_path):
        journal = _write_journal(tmp_path / "j.jsonl")
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps({
            "workload": "Lulesh",
            "metrics": {"link.bytes": {"values": {
                "src=0,dst=1": 10, "src=1,dst=0": 20}}},
        }))
        md = build_report(
            journal_paths=[journal], metrics_paths=[metrics],
            bench_paths=[], regression_reports=[],
        )
        for heading in ("## Provenance", "## Run inventory",
                        "## Per-link traffic matrices",
                        "## Benchmark trends"):
            assert heading in md
        assert "GPU 0" in md

    def test_html_rendering(self):
        md = "# Title\n\nSome _prose_.\n\n| a | b |\n|---|---|\n| 1 | 2 |\n"
        html_doc = markdown_to_html(md, title="T")
        assert html_doc.startswith("<!doctype html>")
        assert "<table>" in html_doc and "<td>1</td>" in html_doc
        assert "<h1>" in html_doc

    def test_html_escapes_content(self):
        html_doc = markdown_to_html("# <script>alert(1)</script>", "T")
        assert "&lt;script&gt;" in html_doc


@pytest.mark.slow
class TestReportCli:
    def test_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        journal = _write_journal(tmp_path / "j.jsonl")
        out = tmp_path / "r.md"
        html_out = tmp_path / "r.html"
        rc = main([
            "report", "--journal", str(journal),
            "--out", str(out), "--html", str(html_out),
        ])
        assert rc == 0
        md = out.read_text()
        assert "## Run inventory" in md and "numa-gpu/Lulesh" in md
        assert html_out.read_text().startswith("<!doctype html>")
