"""Tests for the experiment configuration registry and figure helpers."""

import pytest

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    REPLICATE_ALL,
    REPLICATE_READ_ONLY,
)
from repro.sim import experiments as E


class TestConfigRegistry:
    def test_all_eight_configs(self):
        cfgs = E.experiment_configs()
        assert len(cfgs) == 8

    def test_single_gpu(self):
        cfg = E.config_for(E.SINGLE_GPU)
        assert cfg.n_gpus == 1 and not cfg.has_rdc

    def test_numa_gpu_baseline(self):
        cfg = E.config_for(E.NUMA_GPU)
        assert cfg.n_gpus == 4 and not cfg.has_rdc
        assert cfg.replication == "none" and not cfg.migration

    def test_migration_config(self):
        assert E.config_for(E.NUMA_MIGRATION).migration

    def test_replication_configs(self):
        assert E.config_for(E.NUMA_REPL_RO).replication == REPLICATE_READ_ONLY
        assert E.config_for(E.IDEAL).replication == REPLICATE_ALL

    def test_carve_coherence_variants(self):
        assert E.config_for(E.CARVE_NOC).rdc.coherence == COHERENCE_NONE
        assert E.config_for(E.CARVE_SWC).rdc.coherence == COHERENCE_SOFTWARE
        assert E.config_for(E.CARVE_HWC).rdc.coherence == COHERENCE_HARDWARE

    def test_rdc_size_parameter(self):
        cfg = E.config_for(E.CARVE_HWC, rdc_bytes=2**30)
        assert cfg.rdc.size_bytes == 2**30

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            E.config_for("quantum-gpu")


class TestSuiteHelpers:
    @pytest.fixture(scope="class")
    def runs(self):
        wl = ["Lulesh"]
        # Class-scoped: simulate each config once for all tests below.
        return {
            name: E.run_suite(name, workloads=wl, use_cache=False)
            for name in (E.SINGLE_GPU, E.NUMA_GPU, E.IDEAL, E.CARVE_HWC)
        }

    def test_run_suite_covers_requested_workloads(self, runs):
        assert set(runs[E.NUMA_GPU].results) == {"Lulesh"}

    def test_speedups_vs_single(self, runs):
        sp = E.speedups_vs(runs[E.IDEAL], runs[E.SINGLE_GPU])
        assert 2.0 < sp["Lulesh"] < 4.2

    def test_relative_performance_bounded(self, runs):
        rel = E.relative_performance(runs[E.NUMA_GPU], runs[E.IDEAL])
        assert 0.0 < rel["Lulesh"] < 1.1

    def test_paper_ordering_on_lulesh(self, runs):
        """numa < carve <= ideal for a read-write-shared workload."""
        sp = {
            name: E.speedups_vs(run, runs[E.SINGLE_GPU])["Lulesh"]
            for name, run in runs.items()
            if name != E.SINGLE_GPU
        }
        assert sp[E.NUMA_GPU] < sp[E.CARVE_HWC] <= sp[E.IDEAL] * 1.02

    def test_suite_run_time_helper(self, runs):
        assert runs[E.NUMA_GPU].time_s("Lulesh") > 0
