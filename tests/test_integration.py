"""End-to-end tests asserting the paper's qualitative claims.

Each test runs a reduced-size workload through complete systems and
checks an ordering or threshold the paper reports.  These are the
regression net for the calibrated suite: if a refactor silently breaks a
mechanism (say, the RDC stops retaining across kernels), one of these
fails even though unit tests still pass.
"""

import pytest

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    REPLICATE_ALL,
    REPLICATE_READ_ONLY,
)
from repro.sim.driver import run_workload, time_of
from repro.workloads.base import WorkloadSpec
from tests.conftest import small_config


def rw_shared_spec(**kw) -> WorkloadSpec:
    """A fast Lulesh-like workload: heavy read-write page sharing."""
    base = dict(
        name="rwshare", abbr="rwshare", suite="HPC",
        footprint_bytes=2**20 * 1024, min_footprint_lines=8192,
        n_kernels=4, warmup_kernels=2, n_ctas=16,
        coverage=1.5, min_accesses=6000, max_accesses=16000,
        shared_page_frac=0.6, shared_access_frac=0.7,
        rw_page_frac=0.9, line_write_frac=0.1,
        write_frac=0.25, shared_write_frac=0.05,
        instr_per_access=6.0, concurrency_per_sm=32.0, seed=7,
    )
    base.update(kw)
    return WorkloadSpec(**base)


@pytest.fixture(scope="module")
def systems():
    """Simulate the rw-shared workload on every headline system once."""
    base = small_config()
    spec = rw_shared_spec()
    cfgs = {
        "single": base.single_gpu(),
        "numa": base,
        "repl_ro": base.replace(replication=REPLICATE_READ_ONLY),
        "ideal": base.replace(replication=REPLICATE_ALL),
        "carve_noc": base.with_rdc(coherence=COHERENCE_NONE),
        "carve_swc": base.with_rdc(coherence=COHERENCE_SOFTWARE),
        "carve_hwc": base.with_rdc(coherence=COHERENCE_HARDWARE),
    }
    results = {
        name: run_workload(spec, cfg, use_cache=False)
        for name, cfg in cfgs.items()
    }
    times = {name: time_of(results[name], cfgs[name]) for name in cfgs}
    return cfgs, results, times


class TestHeadlineOrdering:
    def test_ideal_is_fastest_multi_gpu(self, systems):
        _, _, t = systems
        assert t["ideal"] <= min(t["numa"], t["repl_ro"], t["carve_hwc"]) * 1.02

    def test_carve_beats_baseline_and_replication(self, systems):
        """The Fig. 13 ordering: CARVE > repl-ro > NUMA-GPU."""
        _, _, t = systems
        assert t["carve_hwc"] < t["repl_ro"] < t["numa"]

    def test_carve_hwc_close_to_upper_bound(self, systems):
        """Hardware coherence costs little over zero-cost coherence."""
        _, _, t = systems
        assert t["carve_hwc"] <= t["carve_noc"] * 1.15

    def test_swc_loses_most_rdc_benefit(self, systems):
        """Fig. 11: flushing the RDC per kernel forfeits its locality."""
        _, _, t = systems
        gain_noc = t["numa"] / t["carve_noc"]
        gain_swc = t["numa"] / t["carve_swc"]
        assert gain_swc < 0.75 * gain_noc

    def test_multi_gpu_beats_single(self, systems):
        _, _, t = systems
        assert t["ideal"] < t["single"] / 3.0


class TestRemoteTraffic:
    def test_carve_slashes_remote_fraction(self, systems):
        """Fig. 8: CARVE converts most remote accesses to local ones."""
        _, r, _ = systems
        assert r["carve_hwc"].remote_fraction < 0.5 * r["numa"].remote_fraction

    def test_ideal_has_no_remote_accesses(self, systems):
        _, r, _ = systems
        assert r["ideal"].remote_fraction == pytest.approx(0.0, abs=1e-9)

    def test_ro_replication_barely_helps_rw_pages(self, systems):
        """Fig. 2: read-only replication cannot fix read-write sharing."""
        _, r, _ = systems
        assert (
            r["repl_ro"].remote_fraction > 0.6 * r["numa"].remote_fraction
        )

    def test_single_gpu_all_local(self, systems):
        _, r, _ = systems
        assert r["single"].remote_fraction == 0.0


class TestCapacityPressure:
    def test_replicate_all_inflates_memory(self, systems):
        """Section I: unbounded replication costs ~2.4x capacity."""
        _, r, _ = systems
        assert r["ideal"].replication_pressure > 1.5
        assert r["numa"].replication_pressure == 1.0

    def test_carve_has_no_page_replicas(self, systems):
        _, r, _ = systems
        assert sum(r["carve_hwc"].pages_replicated) == 0


class TestReadOnlyWorkload:
    def test_ro_replication_cures_ro_sharing(self):
        """Fig. 2's middle group: read-only sharing is fully fixable."""
        spec = rw_shared_spec(rw_page_frac=0.0, line_write_frac=0.0)
        base = small_config()
        repl = base.replace(replication=REPLICATE_READ_ONLY)
        ideal = base.replace(replication=REPLICATE_ALL)
        t_repl = time_of(run_workload(spec, repl, use_cache=False), repl)
        t_ideal = time_of(run_workload(spec, ideal, use_cache=False), ideal)
        assert t_repl <= t_ideal * 1.05


class TestLatencyOutlier:
    def test_rdc_probe_penalty_on_thrashing_workload(self):
        """Fig. 9: a random workload larger than the RDC can lose."""
        spec = rw_shared_spec(
            footprint_bytes=15 * 2**30,
            shared_page_frac=1.0, shared_access_frac=0.95,
            rw_page_frac=1.0, line_write_frac=1.0,
            private_pattern="uniform", shared_pattern="uniform",
            shared_write_frac=0.25, instr_per_access=2.0,
            concurrency_per_sm=4.0, cold_page_frac=0.0,
            min_accesses=30000, max_accesses=40000, n_kernels=2,
            warmup_kernels=1,
        )
        base = small_config()
        carve = base.with_rdc(coherence=COHERENCE_NONE)
        t_numa = time_of(run_workload(spec, base, use_cache=False), base)
        t_carve = time_of(run_workload(spec, carve, use_cache=False), carve)
        assert t_carve > t_numa  # CARVE degrades this outlier


class TestLinkBandwidthSensitivity:
    def test_carve_flat_numa_steep(self):
        """Fig. 14: NUMA-GPU tracks link bandwidth, CARVE does not."""
        from repro.config import LinkConfig
        from repro.perf.model import PerformanceModel

        spec = rw_shared_spec()
        base = small_config()
        carve = base.with_rdc(coherence=COHERENCE_HARDWARE)
        r_numa = run_workload(spec, base, use_cache=False)
        r_carve = run_workload(spec, carve, use_cache=False)

        def at_bw(cfg, result, bw):
            priced = cfg.replace(link=LinkConfig(inter_gpu_bytes_per_s=bw))
            return PerformanceModel(priced).total_time_s(result)

        numa_ratio = at_bw(base, r_numa, 32e9) / at_bw(base, r_numa, 256e9)
        carve_ratio = at_bw(carve, r_carve, 32e9) / at_bw(carve, r_carve, 256e9)
        assert numa_ratio > 2.0      # strongly link-bound
        assert carve_ratio < 1.5     # largely insensitive
