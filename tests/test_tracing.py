"""Tests for distributed tracing (docs/tracing.md).

Covers the context (deterministic derivation, wire round-trip), the
crash-safe span spill (checksummed records, torn-tail tolerance), the
timeline assembler, and the property everything else leans on: a
SIGKILLed pool worker leaves its final spans on disk, untorn, for the
chaos flight recorder.

Worker functions are top-level so they survive pickling into pool
subprocesses.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.assemble import (
    PID_RUNNER,
    PID_SERVE,
    PID_WORKER_BASE,
    assemble_trace,
    open_spans,
    write_trace,
)
from repro.obs.metrics import default_registry
from repro.obs.trace import (
    RUNNER_SPILL,
    SpanSpill,
    TraceContext,
    derive_span_id,
    read_spans,
    read_spans_dir,
    spans_dir_for,
    worker_spill_name,
)
from repro.sim.runner import RunnerPolicy, Task, run_tasks


def _ok(x):
    return x * 2


def _tasks(keys):
    return [Task(key=k, fn=_ok, args=(1,)) for k in keys]


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_seeded_mint_is_deterministic(self):
        a = TraceContext.mint(seed="drill-7")
        b = TraceContext.mint(seed="drill-7")
        assert a == b
        assert a.trace_id != TraceContext.mint(seed="drill-8").trace_id

    def test_unseeded_mints_are_distinct(self):
        assert TraceContext.mint().trace_id != TraceContext.mint().trace_id

    def test_child_derivation_is_deterministic(self):
        root = TraceContext.mint(seed="x")
        c1 = root.child("attempt:k#1")
        assert c1 == root.child("attempt:k#1")
        assert c1.span_id != root.child("attempt:k#2").span_id
        assert c1.parent_id == root.span_id
        assert c1.trace_id == root.trace_id
        assert c1.span_id == derive_span_id(
            root.trace_id, root.span_id, "attempt:k#1"
        )

    def test_wire_round_trip(self):
        ctx = TraceContext.mint(seed="w").child("attempt:k#1")
        wire = ctx.to_wire()
        assert set(wire) == {"trace", "span", "parent"}
        json.dumps(wire)  # must be plain-JSON serialisable
        assert TraceContext.from_wire(wire) == ctx


# ---------------------------------------------------------------------------
# The span spill
# ---------------------------------------------------------------------------

class TestSpanSpill:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans" / "worker-00.jsonl"
        ctx = TraceContext.mint(seed="s").child("task")
        with SpanSpill(path, slot=3, node=1) as spill:
            assert spill.span_begin(ctx, "task", key="numa-gpu/Lulesh")
            assert spill.span_end(ctx, "task", key="numa-gpu/Lulesh",
                                  status="ok")
            assert spill.spans == 2 and spill.dropped == 0
            assert spill.bytes_written == path.stat().st_size
        records, damaged = read_spans(path)
        assert damaged == 0 and len(records) == 2
        begin, end = records
        assert begin["ph"] == "B" and end["ph"] == "E"
        assert begin["slot"] == 3 and begin["node"] == 1
        assert begin["span"] == ctx.span_id
        assert end["status"] == "ok"
        assert open_spans(records) == []

    def test_torn_tail_is_skipped_silently(self, tmp_path):
        path = tmp_path / "w.jsonl"
        ctx = TraceContext.mint(seed="t")
        with SpanSpill(path) as spill:
            spill.span_begin(ctx, "task", key="a")
            spill.span_end(ctx, "task", key="a")
        whole = path.read_text()
        half_line = whole.splitlines()[0][: len(whole) // 4]
        path.write_text(whole + half_line)  # crash mid-append
        records, damaged = read_spans(path)
        assert len(records) == 2 and damaged == 0

    def test_interior_damage_is_counted(self, tmp_path):
        path = tmp_path / "w.jsonl"
        ctx = TraceContext.mint(seed="d")
        with SpanSpill(path) as spill:
            spill.span_begin(ctx, "task", key="a")
            spill.span_end(ctx, "task", key="a")
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["key"] = "tampered"  # checksum now stale
        lines[0] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        records, damaged = read_spans(path)
        assert damaged == 1 and len(records) == 1

    def test_unwritable_spill_drops_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        spill = SpanSpill(blocker / "x.jsonl")  # parent is a file
        ctx = TraceContext.mint(seed="u")
        assert spill.span_begin(ctx, "task") is False
        assert spill.dropped == 1 and spill.spans == 0

    def test_read_spans_dir_merges_and_orders(self, tmp_path):
        ctx = TraceContext.mint(seed="m")
        for slot in (1, 0):
            with SpanSpill(tmp_path / worker_spill_name(slot),
                           slot=slot) as spill:
                spill.span_begin(ctx.child(f"t{slot}"), "task")
        records, damaged = read_spans_dir(tmp_path)
        assert damaged == 0
        assert [r["slot"] for r in records] == [0, 1]  # file order
        assert read_spans_dir(tmp_path / "absent") == ([], 0)


# ---------------------------------------------------------------------------
# Assembling a traced batch
# ---------------------------------------------------------------------------

class TestAssemble:
    def _traced_batch(self, tmp_path, keys=("a", "b", "c")):
        journal = tmp_path / "batch.jsonl"
        trace = TraceContext.mint(seed="assemble")
        registry = default_registry()
        batch = run_tasks(
            _tasks(keys),
            RunnerPolicy(jobs=2, journal_path=journal),
            registry=registry,
            trace=trace,
        )
        return journal, trace, batch, registry

    def test_pooled_batch_assembles_labeled_rows(self, tmp_path):
        journal, trace, batch, registry = self._traced_batch(tmp_path)
        assert batch.ok
        doc = assemble_trace(journal)
        other = doc["otherData"]
        # the trace id was recovered from the journal meta record
        assert other["trace_id"] == trace.trace_id
        assert other["unfinished_spans"] == 0
        assert other["damaged_span_records"] == 0
        names = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"] if e["name"] == "process_name"
        }
        assert names["runner"] == PID_RUNNER
        worker_rows = [n for n in names if n.startswith("worker ")]
        assert worker_rows and all(
            names[n] >= PID_WORKER_BASE for n in worker_rows
        )
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # one attempt span per task plus one worker task span per task
        assert len(slices) == 2 * len(batch.results)
        assert all(
            s["args"]["trace_id"] == trace.trace_id for s in slices
        )
        attempts = [s for s in slices if s["pid"] == PID_RUNNER]
        assert {s["args"]["key"] for s in attempts} == set(batch.results)
        # journal transitions render as instants on the runner row
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e["cat"] == "journal"]
        assert any(e["name"].startswith("done") for e in instants)
        # spill volume was credited to the trace counters
        assert registry.get("trace.spans").total() == 2 * 2 * len(
            batch.results
        )
        assert registry.get("trace.spill_bytes").total() > 0

    def test_trace_id_filters_a_shared_journal(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        first = TraceContext.mint(seed="one")
        second = TraceContext.mint(seed="two")
        for trace in (first, second):
            run_tasks(_tasks(("a",)),
                      RunnerPolicy(jobs=2, journal_path=journal),
                      trace=trace)
        # default: newest meta record's trace wins
        assert assemble_trace(journal)["otherData"]["trace_id"] == \
            second.trace_id
        doc = assemble_trace(journal, trace_id=first.trace_id)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(
            s["args"]["trace_id"] == first.trace_id for s in slices
        )

    def test_serve_events_get_their_own_row(self, tmp_path):
        journal, trace, _, _ = self._traced_batch(tmp_path, keys=("a",))
        events = [
            {"seq": 1, "ts": 0.0, "kind": "job.queued",
             "trace_id": trace.trace_id},
            {"seq": 2, "ts": 1.0, "kind": "job.done"},
        ]
        doc = assemble_trace(journal, serve_events=events)
        serve = [e for e in doc["traceEvents"] if e.get("cat") == "serve"]
        assert [e["name"] for e in serve] == ["job.queued", "job.done"]
        assert all(e["pid"] == PID_SERVE for e in serve)

    def test_write_trace_is_perfetto_loadable_json(self, tmp_path):
        journal, _, _, _ = self._traced_batch(tmp_path, keys=("a",))
        out = write_trace(tmp_path / "out" / "t.trace.json",
                          assemble_trace(journal))
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc and doc["displayTimeUnit"] == "ms"

    def test_untraced_batch_assembles_journal_only(self, tmp_path):
        journal = tmp_path / "plain.jsonl"
        run_tasks(_tasks(("a",)), RunnerPolicy(journal_path=journal))
        doc = assemble_trace(journal)
        assert doc["otherData"]["spans"] == 0
        assert not spans_dir_for(journal).exists()


# ---------------------------------------------------------------------------
# Crash integrity: the flight-recorder property (docs/chaos.md)
# ---------------------------------------------------------------------------

class TestCrashSpillIntegrity:
    def _crashed_batch(self, tmp_path, monkeypatch):
        """A pooled traced batch whose 'victim' task SIGKILLs its worker."""
        monkeypatch.setenv("REPRO_INJECT_FAULT", "crash:victim")
        journal = tmp_path / "batch.jsonl"
        trace = TraceContext.mint(seed="crash")
        batch = run_tasks(
            _tasks(("ok-1", "victim", "ok-2")),
            RunnerPolicy(jobs=2, journal_path=journal),
            trace=trace,
        )
        assert "victim" in batch.failures
        assert set(batch.results) == {"ok-1", "ok-2"}
        return journal, trace

    def test_victim_spans_survive_untorn(self, tmp_path, monkeypatch):
        journal, trace = self._crashed_batch(tmp_path, monkeypatch)
        records, damaged = read_spans_dir(spans_dir_for(journal))
        # the kill may tear the tail, never the interior
        assert damaged == 0
        victims = open_spans(records)
        # the worker flushed the task begin edge before dying: the
        # span is on disk with no end edge, attributed to its slot
        task_victims = [r for r in victims if r["name"] == "task"]
        assert len(task_victims) == 1
        (span,) = task_victims
        assert span["key"] == "victim"
        assert span["slot"] >= 0
        assert span["trace"] == trace.trace_id

    def test_assembled_timeline_flags_the_victim(self, tmp_path,
                                                 monkeypatch):
        journal, _ = self._crashed_batch(tmp_path, monkeypatch)
        doc = assemble_trace(journal)
        assert doc["otherData"]["unfinished_spans"] >= 1
        unfinished = [e for e in doc["traceEvents"]
                      if e["ph"] == "X" and "unfinished" in e["cat"]]
        assert any(e["args"]["key"] == "victim" for e in unfinished)
        assert all(e["args"]["unfinished"] is True for e in unfinished)

    def test_flight_recorder_names_the_victim_slot(self, tmp_path,
                                                   monkeypatch):
        journal, _ = self._crashed_batch(tmp_path, monkeypatch)
        from repro.sim.chaos import DrillReport, _flight_record

        report = DrillReport(seed=0, system="numa-gpu",
                             workloads=("a", "b"), jobs=2, pin=False,
                             root=str(tmp_path))
        _flight_record(report, journal)
        assert report.flight["damaged"] == 0
        assert report.flight["spans"] > 0
        (victim,) = report.flight["victims"]
        assert victim["slot"] >= 0
        assert [s["key"] for s in victim["spans"]] == ["victim"]
        rendered = report.render()
        assert "flight recorder:" in rendered
        assert f"victim slot {victim['slot']:02d}" in rendered

    def test_interior_damage_is_an_invariant_violation(self, tmp_path,
                                                       monkeypatch):
        journal, _ = self._crashed_batch(tmp_path, monkeypatch)
        from repro.sim.chaos import DrillReport, _flight_record

        spans_dir = spans_dir_for(journal)
        victim_file = next(
            p for p in sorted(spans_dir.glob("worker-*.jsonl"))
            if "victim" in p.read_text()
        )
        lines = victim_file.read_text().splitlines()
        record = json.loads(lines[0])
        record["key"] = "tampered"
        lines[0] = json.dumps(record, sort_keys=True)
        victim_file.write_text("\n".join(lines) + "\n")
        report = DrillReport(seed=0, system="numa-gpu",
                             workloads=("a", "b"), jobs=2, pin=False,
                             root=str(tmp_path))
        _flight_record(report, journal)
        assert report.flight["damaged"] == 1
        assert any("damaged span record" in p for p in report.problems)


# ---------------------------------------------------------------------------
# Tracing must not perturb results
# ---------------------------------------------------------------------------

class TestTracingInvariance:
    def test_results_identical_with_and_without_trace(self, tmp_path):
        keys = ("a", "b", "c", "d")
        plain = run_tasks(
            _tasks(keys),
            RunnerPolicy(jobs=2, journal_path=tmp_path / "plain.jsonl"),
        )
        traced = run_tasks(
            _tasks(keys),
            RunnerPolicy(jobs=2, journal_path=tmp_path / "traced.jsonl"),
            trace=TraceContext.mint(seed="inv"),
        )
        assert traced.results == plain.results
        assert traced.failures == plain.failures

    def test_trace_without_journal_is_silently_off(self, tmp_path):
        batch = run_tasks(_tasks(("a",)), RunnerPolicy(jobs=2),
                          trace=TraceContext.mint(seed="nj"))
        assert batch.ok
