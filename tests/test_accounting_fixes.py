"""Regression tests for kernel-boundary / migration accounting fixes.

Three historical bugs are pinned down here:

1. Write-back RDC flush traffic (link bytes, home DRAM writes, the
   ``remote_writes`` bump) was snapshotted *before* the kernel boundary
   ran, so it leaked into the next kernel's stats — and vanished
   entirely for the last kernel of a trace.
2. Page migration invalidated the *peers'* cached copies but left the
   requester's own RDC entries for the migrated page in place, letting a
   stale remote-cache copy shadow the now-local page.
3. The on-disk simulation cache wrote through a fixed ``.tmp`` name, so
   two processes storing the same key could rename each other's
   half-written files into place.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import (
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    LINE_BYTES,
    LINK_HEADER_BYTES,
    WRITE_BACK,
)
from repro.numa.system import ENGINE_REFERENCE, ENGINE_VECTORIZED, MultiGpuSystem

from tests.conftest import make_kernel, make_trace, small_config, tiny_rdc_config

ENGINES = [ENGINE_VECTORIZED, ENGINE_REFERENCE]


# ---------------------------------------------------------------------------
# Bug 1: write-back flush traffic belongs to the kernel that just ended.
# ---------------------------------------------------------------------------

def _write_back_cfg():
    return tiny_rdc_config(
        coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
    )


def _dirtying_kernels(system):
    """Kernels that leave GPU 0's RDC with one dirty line homed at GPU 1.

    Kernel 0: CTA 1 (-> GPU 1 under contiguous scheduling) first-touches
    line L, homing its page at GPU 1.  Kernel 1: CTA 0 (-> GPU 0) reads L
    (remote miss, RDC fill) then writes it (RDC hit; under write-back the
    home write is deferred to the kernel boundary).
    """
    lpp = system.amap.lines_per_page
    line = 7 * lpp
    k0 = make_kernel([line], cta_ids=[1], kernel_id=0)
    k1 = make_kernel(
        [line, line], writes=[False, True], cta_ids=[0, 0], kernel_id=1
    )
    return line, k0, k1


@pytest.mark.parametrize("engine", ENGINES)
def test_last_kernel_flush_is_not_dropped(engine):
    cfg = _write_back_cfg()
    system = MultiGpuSystem(cfg, engine=engine)
    _, k0, k1 = _dirtying_kernels(system)
    result = system.run(make_trace([k0, k1]))
    ks0, ks1 = result.kernels

    # Kernel 0 is purely local: no link traffic at all.
    assert all(b == 0 for row in ks0.link_bytes for b in row)
    assert ks0.gpus[0].remote_writes == 0

    # Kernel 1 (the LAST kernel): the read request header plus the
    # boundary flush of the dirty line, all attributed to this kernel.
    flush_bytes = LINK_HEADER_BYTES + LINE_BYTES
    assert ks1.link_bytes[0][1] == LINK_HEADER_BYTES + flush_bytes
    assert ks1.link_bytes[1][0] == flush_bytes  # read reply
    # One in-kernel remote write (deferred) + one flush write-back.
    assert ks1.gpus[0].remote_writes == 2
    # The flushed line lands in the home node's DRAM within kernel 1.
    assert ks1.gpus[1].dram_writes == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_flush_traffic_does_not_leak_into_next_kernel(engine):
    cfg = _write_back_cfg()
    system = MultiGpuSystem(cfg, engine=engine)
    line, k0, k1 = _dirtying_kernels(system)
    lpp = system.amap.lines_per_page
    # Kernel 2 only does a local read on GPU 1; with the flush correctly
    # attributed to kernel 1, kernel 2 must show zero link traffic.
    k2 = make_kernel([3 * lpp], cta_ids=[1], kernel_id=2)
    result = system.run(make_trace([k0, k1, k2]))
    ks1, ks2 = result.kernels[1], result.kernels[2]

    flush_bytes = LINK_HEADER_BYTES + LINE_BYTES
    assert ks1.link_bytes[0][1] == LINK_HEADER_BYTES + flush_bytes
    assert all(b == 0 for row in ks2.link_bytes for b in row)
    assert ks2.gpus[0].remote_writes == 0
    assert ks2.gpus[1].dram_writes == 0


# ---------------------------------------------------------------------------
# Bug 2: migration must invalidate the requester's RDC lines of the page.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_migration_invalidates_requester_rdc(engine):
    cfg = small_config(migration=True, migration_threshold=2).with_rdc(
        2 * 2**30, coherence=COHERENCE_NONE
    )
    system = MultiGpuSystem(cfg, engine=engine)
    lpp = system.amap.lines_per_page
    page = 5
    l0, l1 = page * lpp, page * lpp + 1

    # GPU 1 first-touches the page; GPU 0 then reads two of its lines
    # remotely, tripping the threshold on the second access.
    system.access(1, l0, False)
    system.access(0, l0, False)  # remote read #1: RDC fill at GPU 0
    rdc = system.nodes[0].carve.rdc
    assert rdc.contains(l0)
    system.access(0, l1, False)  # remote read #2: migrate to GPU 0

    assert system.pagetable.peek_home(page) == 0
    assert system.migration.stats.migrations == 1
    # The page is local to GPU 0 now; stale RDC copies must be gone.
    assert not rdc.contains(l0)
    assert not rdc.contains(l1)


# ---------------------------------------------------------------------------
# Bug 3: simulation-cache stores must not share a tmp file name.
# ---------------------------------------------------------------------------

@pytest.fixture
def sim_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    return tmp_path


def _spec_and_result():
    from repro.perf.stats import RunResult
    from repro.workloads.suite import get

    spec = get("Lulesh")
    return spec, RunResult(workload="t", config_label="c", n_gpus=4)


def test_store_round_trips_and_leaves_no_tmp(sim_cache_dir):
    from repro.sim import cache

    spec, result = _spec_and_result()
    cfg = small_config()
    cache.store(spec, cfg, result)
    assert list(sim_cache_dir.glob("*.pkl"))
    assert not list(sim_cache_dir.glob("*.tmp"))
    loaded = cache.load(spec, cfg)
    assert loaded == result


def test_interrupted_store_cleans_its_tmp(sim_cache_dir, monkeypatch):
    from repro.sim import cache

    spec, result = _spec_and_result()
    cfg = small_config()

    def boom(*a, **kw):
        raise OSError("disk full")

    monkeypatch.setattr(pickle, "dump", boom)
    with pytest.raises(OSError):
        cache.store(spec, cfg, result)
    # The uniquely named tmp file was removed; no entry was published.
    assert not list(sim_cache_dir.glob("*"))


def test_concurrent_stores_use_distinct_tmp_names(sim_cache_dir, monkeypatch):
    """Two stores of the same key must never write the same tmp path."""
    from repro.sim import cache

    spec, result = _spec_and_result()
    cfg = small_config()
    seen = []
    real_open = type(sim_cache_dir).open

    def spying_open(self, *a, **kw):
        if self.suffix == ".tmp":
            seen.append(self.name)
        return real_open(self, *a, **kw)

    monkeypatch.setattr(type(sim_cache_dir), "open", spying_open)
    cache.store(spec, cfg, result)
    cache.store(spec, cfg, result)
    assert len(seen) == 2 and seen[0] != seen[1]


def test_clear_sweeps_orphaned_tmp_files(sim_cache_dir):
    from repro.sim import cache

    spec, result = _spec_and_result()
    cache.store(spec, small_config(), result)
    orphan = sim_cache_dir / "deadbeef.1234.abcd1234.tmp"
    orphan.write_bytes(b"half-written")
    removed = cache.clear()
    assert removed == 2
    assert not list(sim_cache_dir.glob("*"))
