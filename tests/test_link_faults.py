"""Tests for NUMA-fabric fault injection (schedule, reroute, pricing)."""

from __future__ import annotations

import pytest

from repro.config import (
    ConfigError,
    LinkConfig,
    LinkFaultConfig,
    LinkFaultEvent,
    baseline_config,
)
from repro.numa.interconnect import (
    OUTAGE_RESIDUAL_SCALE,
    FaultSchedule,
    Interconnect,
)
from repro.perf.model import PerformanceModel
from repro.perf.stats import KernelStats
from repro.sim.driver import run_workload, time_of
from repro.sim.sweep import reprice_sweep
from repro.workloads.base import WorkloadSpec


def fault_spec():
    return WorkloadSpec(
        name="faults", abbr="faults", suite="HPC",
        footprint_bytes=2**20 * 1024,
        n_kernels=2, warmup_kernels=1, n_ctas=8,
        coverage=0.6, min_accesses=1500, max_accesses=2500,
        shared_page_frac=0.5, shared_access_frac=0.6,
        rw_page_frac=0.8, instr_per_access=5.0,
    )


class TestFaultSchedule:
    def test_deterministic_across_instances(self):
        cfg = LinkFaultConfig(seed=7, outage_prob=0.1, degrade_prob=0.3)
        a, b = FaultSchedule(4, cfg), FaultSchedule(4, cfg)
        for k in range(6):
            assert a.matrix(k) == b.matrix(k)

    def test_seed_changes_the_schedule(self):
        base = dict(outage_prob=0.2, degrade_prob=0.3)
        a = FaultSchedule(4, LinkFaultConfig(seed=1, **base))
        b = FaultSchedule(4, LinkFaultConfig(seed=2, **base))
        assert any(a.matrix(k) != b.matrix(k) for k in range(8))

    def test_events_override_random_draws(self):
        cfg = LinkFaultConfig(
            seed=3, outage_prob=0.5, degrade_prob=0.5,
            events=(LinkFaultEvent(2, 4, scale=0.5, src=0, dst=1),),
        )
        sched = FaultSchedule(4, cfg)
        for k in (2, 3, 4):
            assert sched.scale(k, 0, 1) == 0.5

    def test_wildcard_event_hits_every_link(self):
        cfg = LinkFaultConfig(events=(LinkFaultEvent(0, 0, scale=0.25),))
        sched = FaultSchedule(3, cfg)
        m = sched.matrix(0)
        assert all(
            m[s][d] == 0.25 for s in range(3) for d in range(3) if s != d
        )
        assert sched.matrix(1) is None  # event window over, all healthy

    def test_healthy_kernel_yields_none(self):
        sched = FaultSchedule(4, LinkFaultConfig(degrade_prob=1e-12, seed=0))
        assert sched.matrix(0) is None

    def test_degradation_depth_within_bounds(self):
        cfg = LinkFaultConfig(seed=0, degrade_prob=1.0, min_scale=0.25)
        sched = FaultSchedule(4, cfg)
        for k in range(3):
            m = sched.matrix(k)
            for s in range(4):
                for d in range(4):
                    if s != d:
                        assert 0.25 <= m[s][d] < 1.0


class TestOutageReroute:
    def _interconnect(self, n_gpus, events, reroute=True):
        faults = FaultSchedule(
            n_gpus, LinkFaultConfig(events=tuple(events), reroute=reroute)
        )
        ic = Interconnect(n_gpus, LinkConfig(), faults=faults)
        ic.begin_kernel(0)
        return ic

    def test_dead_link_bytes_take_both_detour_hops(self):
        ic = self._interconnect(
            4, [LinkFaultEvent(0, 0, scale=0.0, src=0, dst=1)]
        )
        ic.send(0, 1, 1000)
        ic.send(2, 3, 500)
        snap, scale = ic.snapshot_faulted_and_reset()
        # GPU 2 is the lowest-numbered healthy intermediate for 0 -> 1.
        assert snap[0][1] == 0
        assert snap[0][2] == 1000
        assert snap[2][1] == 1000
        assert snap[2][3] == 500  # unrelated traffic untouched
        assert scale[0][1] == 0.0

    def test_no_route_falls_back_to_residual(self):
        ic = self._interconnect(
            2, [LinkFaultEvent(0, 0, scale=0.0, src=0, dst=1)]
        )
        ic.send(0, 1, 1000)
        snap, scale = ic.snapshot_faulted_and_reset()
        assert snap[0][1] == 1000  # nowhere to reroute in a 2-GPU system
        assert scale[0][1] == OUTAGE_RESIDUAL_SCALE

    def test_reroute_disabled_keeps_bytes_in_place(self):
        ic = self._interconnect(
            4, [LinkFaultEvent(0, 0, scale=0.0, src=0, dst=1)],
            reroute=False,
        )
        ic.send(0, 1, 1000)
        snap, scale = ic.snapshot_faulted_and_reset()
        assert snap[0][1] == 1000
        assert scale[0][1] == OUTAGE_RESIDUAL_SCALE

    def test_healthy_epoch_matches_plain_snapshot(self):
        ic = self._interconnect(
            4, [LinkFaultEvent(5, 5, scale=0.0, src=0, dst=1)]
        )
        ic.send(0, 1, 1000)
        snap, scale = ic.snapshot_faulted_and_reset()
        assert scale is None
        assert snap[0][1] == 1000


class TestFaultPricing:
    def _kernel(self, n_gpus=2):
        ks = KernelStats(
            kernel_id=0, n_gpus=n_gpus, instr_per_access=5.0,
            concurrency_per_sm=8.0,
        )
        ks.link_bytes[0][1] = 10 * 2**20
        return ks

    def test_degraded_link_stretches_link_time(self):
        cfg = baseline_config().replace(n_gpus=2)
        model = PerformanceModel(cfg)
        healthy = model.kernel_time(self._kernel())
        degraded_ks = self._kernel()
        degraded_ks.link_scale = [[1.0, 0.5], [1.0, 1.0]]
        degraded = model.kernel_time(degraded_ks)
        assert degraded.time > healthy.time
        assert degraded.per_gpu[0] == pytest.approx(2 * healthy.per_gpu[0])

    def test_full_scale_epoch_prices_like_healthy(self):
        cfg = baseline_config().replace(n_gpus=2)
        model = PerformanceModel(cfg)
        ks = self._kernel()
        ks.link_scale = [[1.0, 1.0], [1.0, 1.0]]
        assert model.kernel_time(ks).time == pytest.approx(
            model.kernel_time(self._kernel()).time
        )


class TestEndToEnd:
    def test_degradation_slows_but_preserves_counters(self):
        spec = fault_spec()
        base = baseline_config()
        faulty = base.replace(link_faults=LinkFaultConfig(
            events=(LinkFaultEvent(0, 99, scale=0.5),),
        ))
        r0 = run_workload(spec, base, use_cache=False)
        r1 = run_workload(spec, faulty, use_cache=False)
        # Degradation changes pricing only: the byte/access counters are
        # those of the healthy fabric.
        t0, t1 = r0.total(), r1.total()
        assert t1.accesses == t0.accesses
        assert t1.remote_reads == t0.remote_reads
        assert [k.link_bytes for k in r1.kernels] == [
            k.link_bytes for k in r0.kernels
        ]
        assert time_of(r1, faulty) > time_of(r0, base)

    def test_outage_reroutes_demand_traffic(self):
        spec = fault_spec()
        base = baseline_config()
        faulty = base.replace(link_faults=LinkFaultConfig(
            events=(LinkFaultEvent(0, 99, scale=0.0, src=0, dst=1),),
        ))
        r0 = run_workload(spec, base, use_cache=False)
        r1 = run_workload(spec, faulty, use_cache=False)
        k0 = next(k for k in r0.kernels if not k.warmup)
        k1 = next(k for k in r1.kernels if not k.warmup)
        moved = k0.link_bytes[0][1]
        assert moved > 0
        assert k1.link_bytes[0][1] == 0
        assert k1.link_bytes[0][2] == k0.link_bytes[0][2] + moved
        assert k1.link_bytes[2][1] == k0.link_bytes[2][1] + moved

    def test_reprice_rejects_fault_schedule_changes(self):
        base = baseline_config()
        faulty = LinkFaultConfig(events=(LinkFaultEvent(0, 99, scale=0.5),))
        with pytest.raises(ValueError):
            reprice_sweep(
                "bad", [1.0], base,
                lambda v: base.replace(link_faults=faulty),
                [fault_spec()], use_cache=False,
            )


class TestValidation:
    def test_event_rejects_bad_ranges(self):
        for bad in (
            LinkFaultEvent(first_kernel=-1, last_kernel=0),
            LinkFaultEvent(first_kernel=5, last_kernel=2),
            LinkFaultEvent(0, 0, scale=1.5),
            LinkFaultEvent(0, 0, scale=-0.1),
            LinkFaultEvent(0, 0, src=-2),
        ):
            with pytest.raises(ConfigError):
                bad.validate()

    def test_config_rejects_bad_probabilities(self):
        for bad in (
            LinkFaultConfig(outage_prob=-0.1),
            LinkFaultConfig(outage_prob=0.7, degrade_prob=0.7),
            LinkFaultConfig(min_scale=0.0),
            LinkFaultConfig(min_scale=1.5),
        ):
            with pytest.raises(ConfigError):
                bad.validate()

    def test_system_validate_covers_link_faults(self):
        # SystemConfig.replace() re-validates, so the bad fault config is
        # rejected before it can reach any simulation.
        with pytest.raises(ConfigError):
            baseline_config().replace(
                link_faults=LinkFaultConfig(outage_prob=-0.5)
            )
