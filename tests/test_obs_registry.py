"""Tests for the metrics registry (repro.obs.registry / metrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import METRIC_NAMES, SPECS, default_registry, spec_for
from repro.obs.registry import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricSpec,
    MetricsRegistry,
)


def _registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestSpec:
    def test_rejects_bad_name(self):
        with pytest.raises(MetricError):
            MetricSpec(name="Bad Name", kind=KIND_COUNTER, unit="x")

    def test_rejects_bad_kind(self):
        with pytest.raises(MetricError):
            MetricSpec(name="a.b", kind="meter", unit="x")

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(MetricError):
            MetricSpec(name="a.b", kind=KIND_HISTOGRAM, unit="x",
                       buckets=(10, 5))


class TestCounter:
    def test_inc_and_total(self):
        r = _registry()
        c = r.counter("rdc.hit", "accesses", labels=("gpu",))
        c.inc(3, gpu=0)
        c.inc(2, gpu=1)
        c.inc(1, gpu=0)
        assert c.value(gpu=0) == 4
        assert c.value(gpu=1) == 2
        assert c.total() == 6

    def test_negative_increment_rejected(self):
        c = _registry().counter("x.y", "n")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_zero_increment_creates_no_cell(self):
        c = _registry().counter("x.y", "n", labels=("gpu",))
        c.inc(0, gpu=3)
        assert c.values() == {}

    def test_missing_label_rejected(self):
        c = _registry().counter("x.y", "n", labels=("gpu",))
        with pytest.raises(MetricError):
            c.inc(1)

    def test_extra_label_rejected(self):
        c = _registry().counter("x.y", "n")
        with pytest.raises(MetricError):
            c.inc(1, gpu=0)

    def test_inc_many_bulk(self):
        c = _registry().counter("x.y", "n", labels=("gpu",))
        c.inc_many([((0,), 5), ((1,), 7)])
        assert c.value(gpu=0) == 5
        assert c.value(gpu=1) == 7


class TestGauge:
    def test_set_overwrites(self):
        g = _registry().gauge("x.g", "pages", labels=("gpu",))
        g.set(4, gpu=0)
        g.set(9, gpu=0)
        assert g.value(gpu=0) == 9


class TestHistogram:
    def test_bucket_upper_bounds_inclusive(self):
        h = _registry().histogram("x.h", buckets=(10, 100), unit="n")
        h.observe(10)   # first bucket (inclusive)
        h.observe(11)   # second bucket
        h.observe(101)  # overflow
        state = h.values()[()]
        assert state["buckets"] == [1, 1, 1]
        assert state["count"] == 3
        assert state["sum"] == 122

    def test_observe_many(self):
        h = _registry().histogram("x.h", buckets=(10,), unit="n")
        h.observe_many([1, 2, 3, 1000])
        state = h.values()[()]
        assert state["count"] == 4
        assert state["buckets"] == [3, 1]


class TestRegistry:
    def test_register_is_get_or_create(self):
        r = _registry()
        a = r.counter("x.y", "n")
        b = r.counter("x.y", "n")
        assert a is b

    def test_register_spec_mismatch_raises(self):
        r = _registry()
        r.counter("x.y", "n")
        with pytest.raises(MetricError):
            r.gauge("x.y", "n")

    def test_contains_and_names(self):
        r = _registry()
        r.counter("x.y", "n")
        assert "x.y" in r
        assert "z.q" not in r
        assert r.names() == ["x.y"]

    def test_kernel_snapshots_are_deltas(self):
        r = _registry()
        c = r.counter("x.y", "n", labels=("gpu",))
        r.begin_kernel("k0")
        c.inc(5, gpu=0)
        r.end_kernel()
        r.begin_kernel("k1")
        c.inc(2, gpu=0)
        c.inc(3, gpu=1)
        r.end_kernel()
        snaps = r.kernel_snapshots
        assert [s.kernel_id for s in snaps] == ["k0", "k1"]
        assert snaps[0].counters["x.y"] == {"gpu=0": 5}
        assert snaps[1].counters["x.y"] == {"gpu=0": 2, "gpu=1": 3}

    def test_zero_delta_omitted_from_snapshot(self):
        r = _registry()
        c = r.counter("x.y", "n")
        r.begin_kernel("k0")
        c.inc(1)
        r.end_kernel()
        r.begin_kernel("k1")
        r.end_kernel()
        assert "x.y" not in r.kernel_snapshots[1].counters

    def test_snapshot_json_safe(self):
        r = default_registry()
        r.get("rdc.hit").inc(2, gpu=0)
        r.get("kernel.accesses").observe(500)
        json.dumps(r.snapshot())  # must not raise


class TestCatalogue:
    def test_all_specs_registered_by_default_registry(self):
        r = default_registry()
        for spec in SPECS:
            assert spec.name in r

    def test_metric_names_matches_specs(self):
        assert METRIC_NAMES == {s.name for s in SPECS}

    def test_spec_for_known_and_unknown(self):
        assert spec_for("link.bytes").labels == ("src", "dst")
        with pytest.raises(KeyError):
            spec_for("no.such.metric")

    def test_every_spec_documents_itself(self):
        for spec in SPECS:
            assert spec.description, spec.name
            assert spec.paper_ref, spec.name
            assert spec.unit, spec.name

    def test_kind_constants_cover_catalogue(self):
        kinds = {s.kind for s in SPECS}
        assert kinds <= {KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM}
        by_kind = {
            KIND_COUNTER: Counter, KIND_GAUGE: Gauge,
            KIND_HISTOGRAM: Histogram,
        }
        r = default_registry()
        for spec in SPECS:
            assert isinstance(r.get(spec.name), by_kind[spec.kind])
