"""Tests for the persistent worker pool (sim/pool.py) and its runner
integration: NUMA planning, shared-memory transport, worker reuse,
crash containment, metric gauges, and bit-identical pooled execution.

Worker functions must be top-level so they survive pickling into
worker subprocesses.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.obs.metrics import default_registry
from repro.sim.journal import Journal
from repro.sim.pool import (
    DEFAULT_SHM_MIN,
    ERR,
    OK_INLINE,
    OK_SHM,
    SHM_MIN_ENV,
    WorkerPool,
    _export_payload,
    numa_nodes,
    parse_cpulist,
    plan_affinity,
    result_payload,
    shm_min_bytes,
)
from repro.sim.runner import FAULT_ENV, RunnerPolicy, Task, run_tasks


def _ok(x):
    return x * 2


def _boom(_x):
    raise ValueError("deliberate test failure")


def _pid(_x):
    return os.getpid()


def _big(n):
    return b"\xab" * n


def _tasks(fn, keys, arg=1):
    return [Task(key=k, fn=fn, args=(arg,)) for k in keys]


# ---------------------------------------------------------------------------
# NUMA topology & affinity planning
# ---------------------------------------------------------------------------

class TestCpulist:
    def test_ranges_and_singletons(self):
        assert parse_cpulist("0-3,8,10-11") == [0, 1, 2, 3, 8, 10, 11]

    def test_single_cpu(self):
        assert parse_cpulist("0\n") == [0]

    def test_empty(self):
        assert parse_cpulist("") == []
        assert parse_cpulist(" , ") == []


class TestNumaNodes:
    def test_reads_sysfs_layout(self, tmp_path):
        for name, cpus in (("node0", "0-1"), ("node1", "2-3")):
            d = tmp_path / name
            d.mkdir()
            (d / "cpulist").write_text(cpus + "\n")
        (tmp_path / "node_junk").mkdir()  # not nodeN: ignored
        assert numa_nodes(tmp_path) == [[0, 1], [2, 3]]

    def test_missing_sysfs_falls_back_to_flat(self, tmp_path):
        nodes = numa_nodes(tmp_path / "does-not-exist")
        assert len(nodes) == 1
        assert nodes[0]  # every runnable CPU in one node

    def test_real_host_never_empty(self):
        nodes = numa_nodes()
        assert nodes and all(n for n in nodes)


class TestPlanAffinity:
    NODES = [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_unpinned_inherits(self):
        assert plan_affinity(3, pin=False) == [None, None, None]

    def test_round_robin_disjoint_slices(self):
        plan = plan_affinity(4, pin=True, nodes=self.NODES)
        # Workers 0/2 split node0, workers 1/3 split node1.
        assert plan == [(0, 1), (4, 5), (2, 3), (6, 7)]

    def test_one_worker_takes_whole_node(self):
        assert plan_affinity(2, pin=True, nodes=self.NODES) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
        ]

    def test_oversubscribed_node_is_shared(self):
        plan = plan_affinity(3, pin=True, nodes=[[0]])
        assert plan == [(0,), (0,), (0,)]

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            plan_affinity(0, pin=True)


# ---------------------------------------------------------------------------
# Result transport
# ---------------------------------------------------------------------------

class TestShmTransport:
    def test_small_payload_stays_inline(self):
        msg = _export_payload(b"tiny", shm_min=1024)
        assert msg[0] == OK_INLINE
        assert result_payload(msg) == b"tiny"

    def test_large_payload_round_trips_via_shm(self):
        payload = os.urandom(4096)
        msg = _export_payload(payload, shm_min=1)
        assert msg[0] == OK_SHM
        assert result_payload(msg) == payload

    def test_negative_threshold_disables_shm(self):
        msg = _export_payload(b"x" * 4096, shm_min=-1)
        assert msg[0] == OK_INLINE

    def test_threshold_env(self, monkeypatch):
        monkeypatch.delenv(SHM_MIN_ENV, raising=False)
        assert shm_min_bytes() == DEFAULT_SHM_MIN
        monkeypatch.setenv(SHM_MIN_ENV, "123")
        assert shm_min_bytes() == 123
        monkeypatch.setenv(SHM_MIN_ENV, "not-a-number")
        assert shm_min_bytes() == DEFAULT_SHM_MIN

    def test_end_to_end_shm_results(self, monkeypatch):
        monkeypatch.setenv(SHM_MIN_ENV, "1")  # every result goes via shm
        batch = run_tasks(
            [Task(key="big", fn=_big, args=(2_000_000,))],
            RunnerPolicy(jobs=2),
        )
        assert batch.ok
        assert batch.results["big"] == b"\xab" * 2_000_000

    def test_end_to_end_shm_disabled(self, monkeypatch):
        monkeypatch.setenv(SHM_MIN_ENV, "-1")
        batch = run_tasks(_tasks(_ok, ["a", "b"]), RunnerPolicy(jobs=2))
        assert batch.ok
        assert batch.results == {"a": 2, "b": 2}


# ---------------------------------------------------------------------------
# The pool itself
# ---------------------------------------------------------------------------

class TestWorkerPool:
    def test_workers_are_reused_across_tasks(self):
        # 8 tasks through 2 persistent workers must touch at most 2
        # processes; the old spawn-per-attempt fabric used 8.
        batch = run_tasks(_tasks(_pid, list("abcdefgh")), RunnerPolicy(jobs=2))
        assert batch.ok
        assert len(set(batch.results.values())) <= 2

    def test_crashed_worker_is_respawned_and_batch_completes(self, monkeypatch):
        # The victim kills its worker; with more tasks than workers the
        # batch can only complete if the dead slot is respawned.
        monkeypatch.setenv(FAULT_ENV, "crash:victim")
        keys = ["victim"] + [f"ok{i}" for i in range(6)]
        batch = run_tasks(_tasks(_ok, keys), RunnerPolicy(jobs=2))
        assert set(batch.failures) == {"victim"}
        assert len(batch.results) == 6

    def test_dead_pipe_surfaces_exactly_one_death_event(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:")
        pool = WorkerPool(jobs=1)
        pool.start()
        worker = pool.workers[0]
        assert pool.dispatch(worker, "doomed", _ok, (1,))
        deaths = []
        for _ in range(100):
            for kind, w, data in pool.events(timeout=0.2):
                assert kind == "died"
                deaths.append((w.index, data))
            if deaths:
                break
        assert len(deaths) == 1
        assert worker.conn_dead
        # The reaped slot is excluded from future waits: no busy events.
        pool.reap(worker)
        assert pool.events(timeout=0.05) == []
        assert pool.alive_count() == 0
        pool.shutdown(force=True)

    def test_shutdown_is_idempotent_and_kills_everything(self):
        pool = WorkerPool(jobs=2)
        pool.start()
        procs = [w.process for w in pool.workers]
        pool.shutdown()
        pool.shutdown(force=True)
        assert pool.alive_count() == 0
        assert all(not p.is_alive() for p in procs)

    def test_pinned_execution_still_correct(self):
        batch = run_tasks(
            _tasks(_ok, ["a", "b", "c"], arg=4),
            RunnerPolicy(jobs=2, pin=True),
        )
        assert batch.ok
        assert batch.results == {"a": 8, "b": 8, "c": 8}

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


# ---------------------------------------------------------------------------
# Pool telemetry
# ---------------------------------------------------------------------------

class TestPoolMetrics:
    def test_gauges_and_per_worker_counters(self):
        registry = default_registry()
        batch = run_tasks(
            _tasks(_ok, ["a", "b", "c"]),
            RunnerPolicy(jobs=2),
            registry=registry,
        )
        assert batch.ok
        assert registry.get("runner.attempts").value() == 3
        # All dispatches accounted for, attributed to real slot indices.
        tasks_by_worker = registry.get("pool.tasks").values()
        assert sum(tasks_by_worker.values()) == 3
        # Samples are keyed by worker slot index (jobs=2 -> slots 0/1).
        assert set(tasks_by_worker) <= {(0,), (1,)}
        # Final state after shutdown: nothing alive, nothing queued.
        assert registry.get("pool.workers").value() == 0
        assert registry.get("pool.queue_depth").value() == 0


# ---------------------------------------------------------------------------
# Policy semantics through the pool
# ---------------------------------------------------------------------------

class TestPoolPolicyParity:
    def test_fail_fast_cancels_pending_and_inflight(self):
        tasks = _tasks(_boom, ["a"]) + _tasks(_ok, list("bcdef"))
        batch = run_tasks(tasks, RunnerPolicy(jobs=2, keep_going=False))
        assert "a" in batch.failures
        # Everything not finished by the time the failure landed was
        # cancelled; nothing was silently dropped.
        assert set(batch.cancelled) | set(batch.results) == set("bcdef")

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        journal = tmp_path / "j.jsonl"
        monkeypatch.setenv(FAULT_ENV, "fail:c")
        first = run_tasks(
            _tasks(_ok, ["a", "b", "c"]),
            RunnerPolicy(jobs=2, journal_path=journal),
        )
        assert set(first.failures) == {"c"}

        monkeypatch.delenv(FAULT_ENV)
        second = run_tasks(
            _tasks(_ok, ["a", "b", "c"], arg=7),
            RunnerPolicy(jobs=2, journal_path=journal, resume=True),
        )
        assert second.ok
        assert sorted(second.resumed) == ["a", "b"]
        assert second.results["a"] == 2  # first run's result, not 14
        assert second.results["c"] == 14

    def test_pool_results_bit_identical_to_serial(self):
        # The acceptance bar: identical pickled bytes per point, not
        # just equality — and identical key order despite the pool
        # completing tasks in scheduling order.
        serial = run_tasks(_tasks(_pickled, list("abcd")), RunnerPolicy())
        pooled = run_tasks(
            _tasks(_pickled, list("abcd")), RunnerPolicy(jobs=4)
        )
        assert serial.ok and pooled.ok
        assert list(serial.results) == list(pooled.results) == list("abcd")
        for key in serial.results:
            assert pickle.dumps(serial.results[key]) == pickle.dumps(
                pooled.results[key]
            )


def _pickled(x):
    """A structured, deterministic payload worth byte-comparing."""
    return {"x": x, "squares": [i * i for i in range(50)], "tag": ("t", x)}


# ---------------------------------------------------------------------------
# Sidecar store race (journal.store_result)
# ---------------------------------------------------------------------------

def _hammer_store(path, key, n):
    journal = Journal(path)
    for i in range(n):
        journal.store_result(key, {"writer": os.getpid(), "i": i})


class TestSidecarRace:
    def test_concurrent_batches_storing_same_key(self, tmp_path):
        # Two processes hammering the same key must never collide on a
        # tmp name: with the old fixed ".tmp" suffix one writer could
        # rename the other's half-written file into place (or crash on
        # a vanished tmp).  Unique names + atomic replace fix it.
        path = tmp_path / "j.jsonl"
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_hammer_store, args=(path, "shared", 200))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        journal = Journal(path)
        stray = list(journal.results_dir.glob("*.tmp"))
        assert stray == []
        result = journal.load_result("shared")
        assert result is not None and result["i"] == 199

    def test_store_failure_leaves_no_tmp(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(Exception):
            journal.store_result("k", lambda: None)  # unpicklable
        assert list(journal.results_dir.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# Wire protocol sanity
# ---------------------------------------------------------------------------

class TestWireProtocol:
    def test_exception_reply_shape(self):
        pool = WorkerPool(jobs=1)
        pool.start()
        worker = pool.workers[0]
        assert pool.dispatch(worker, "boom", _boom, (1,))
        message = None
        for _ in range(100):
            events = pool.events(timeout=0.2)
            if events:
                kind, _, message = events[0]
                assert kind == "result"
                break
        assert message is not None
        tag, exc_type, text, tb = message
        assert tag == ERR
        assert exc_type == "ValueError"
        assert "deliberate" in text and "deliberate" in tb
        pool.shutdown()
