"""Engine equivalence: the vectorized hot path is counter-for-counter
identical to the reference per-access engine.

Every suite workload used here runs through both engines under the
paper's main configurations; the resulting :class:`RunResult` trees must
compare equal — every counter, every kernel, every GPU.  Any divergence
(reordered accesses, a dropped stat bump, a float grouping change) shows
up as a field-level mismatch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_SOFTWARE,
    WRITE_BACK,
)
from repro.numa.system import ENGINE_REFERENCE, MultiGpuSystem
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

from tests.conftest import small_config, tiny_rdc_config

WORKLOADS = ["Lulesh", "Euler", "SSSP"]

CONFIGS = {
    "baseline": lambda: small_config(),
    "carve-swc-wb": lambda: tiny_rdc_config(
        coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
    ),
    "carve-hwc": lambda: tiny_rdc_config(coherence=COHERENCE_HARDWARE),
    "baseline-migration": lambda: small_config(
        migration=True, migration_threshold=4
    ),
}


def _scaled_spec(abbr: str):
    """Shrink a suite workload so the cross-product stays test-sized."""
    return dataclasses.replace(
        get(abbr),
        n_kernels=3,
        warmup_kernels=1,
        max_accesses=12000,
        min_accesses=3000,
    )


@pytest.mark.parametrize("config_label", sorted(CONFIGS))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_engines_are_bit_identical(workload, config_label):
    cfg = CONFIGS[config_label]()
    trace = generate_trace(_scaled_spec(workload), cfg)
    vec = MultiGpuSystem(cfg).run(trace)
    ref = MultiGpuSystem(cfg, engine=ENGINE_REFERENCE).run(trace)
    assert vec == ref


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        MultiGpuSystem(small_config(), engine="interpretive-dance")
