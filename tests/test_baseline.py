"""Tests for run records, the baseline store, and bench stamping."""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import warnings
from pathlib import Path

import pytest

from repro.numa.system import ENGINE_VECTORIZED, MultiGpuSystem
from repro.obs import summary
from repro.obs.baseline import (
    DETERMINISTIC_KEYS,
    RECORD_KIND,
    SCHEMA_VERSION,
    BaselineStore,
    environment_fingerprint,
    git_sha,
    make_run_record,
    store_points,
    validate_record,
)
from repro.obs.metrics import default_registry
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

from .conftest import tiny_rdc_config

REPO_ROOT = Path(__file__).resolve().parent.parent


def _small_result_and_cfg():
    """A fast real RunResult on a small CARVE system."""
    cfg = tiny_rdc_config()
    spec = dataclasses.replace(
        get("Lulesh"), n_kernels=3, warmup_kernels=1,
        max_accesses=3000, min_accesses=500,
    )
    trace = generate_trace(spec, cfg)
    result = MultiGpuSystem(cfg, engine=ENGINE_VECTORIZED).run(trace)
    return result, cfg


def _record():
    result, cfg = _small_result_and_cfg()
    return make_run_record(
        result, cfg, "carve-hwc", "Lulesh",
        engine=ENGINE_VECTORIZED, wall_s=0.25, modelled_s=1e-4,
    )


class TestFingerprint:
    def test_core_fields(self):
        fp = environment_fingerprint()
        assert fp["schema_version"] == SCHEMA_VERSION
        assert isinstance(fp["code_version"], int)
        assert "python" in fp
        assert "config_hash" not in fp and "engine" not in fp

    def test_config_and_engine_contribute(self, carve_cfg):
        fp = environment_fingerprint(carve_cfg, ENGINE_VECTORIZED)
        assert len(fp["config_hash"]) == 16
        assert fp["engine"] == ENGINE_VECTORIZED

    def test_git_sha_best_effort(self):
        sha = git_sha()
        assert sha is None or (isinstance(sha, str) and len(sha) <= 12)


class TestRunRecord:
    def test_structure(self):
        rec = _record()
        assert rec["kind"] == RECORD_KIND
        assert rec["schema_version"] == SCHEMA_VERSION
        assert set(DETERMINISTIC_KEYS) <= set(rec["deterministic"])
        assert validate_record(rec) == []
        # JSON-safe end to end.
        assert json.loads(json.dumps(rec)) == rec

    def test_link_matrix_consistent_with_digest(self):
        rec = _record()
        matrix = rec["link_matrix"]
        assert sum(sum(row) for row in matrix) == \
            rec["deterministic"]["link.bytes"]
        assert all(matrix[i][i] == 0 for i in range(len(matrix)))

    def test_throughput_derived_from_wall(self):
        rec = _record()
        acc = rec["deterministic"]["sim.accesses"]
        assert rec["perf"]["accesses_per_s"] == pytest.approx(acc / 0.25)

    def test_non_result_rejected(self, carve_cfg):
        with pytest.raises(ValueError, match="cannot digest"):
            make_run_record(
                object(), carve_cfg, "s", "w",
                engine=ENGINE_VECTORIZED, wall_s=1.0, modelled_s=1.0,
            )

    def test_validate_flags_problems(self):
        assert validate_record("nope")
        assert any("kind" in p for p in validate_record({}))
        rec = _record()
        rec["schema_version"] = SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_record(rec))


class TestBaselineStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        rec = _record()
        path = store.save(rec)
        assert path == tmp_path / "b" / "carve-hwc" / "Lulesh.json"
        assert store.load("carve-hwc", "Lulesh") == rec
        assert store.load("carve-hwc", "Euler") is None

    def test_entries_sorted(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        rec = _record()
        for system, workload in (("z-sys", "W"), ("a-sys", "W")):
            store.save({**rec, "system": system, "workload": workload})
        got = [(e.system, e.workload) for e in store.entries()]
        assert got == [("a-sys", "W"), ("z-sys", "W")]

    def test_malformed_record_refused(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        with pytest.raises(ValueError, match="malformed"):
            store.save({"kind": "wrong"})

    def test_store_points_systems_major(self):
        pts = store_points(BaselineStore("x"), ["s1", "s2"], ["w1", "w2"])
        assert pts == [("s1", "w1"), ("s1", "w2"),
                       ("s2", "w1"), ("s2", "w2")]


class TestCommittedStore:
    """The baselines/ directory shipped in the repository is sound."""

    def test_committed_records_validate(self):
        store = BaselineStore(REPO_ROOT / "baselines")
        entries = store.entries()
        assert len(entries) >= 4
        for entry in entries:
            assert validate_record(entry.record) == [], entry.path
            assert entry.record["system"] == entry.system
            assert entry.record["workload"] == entry.workload


class _ExplodingResult:
    """RunResult-shaped, but the digest blows up mid-way."""

    workload = "boom"
    config_label = "boom"
    kernels = ()

    def total(self):
        raise RuntimeError("synthetic digest failure")


class TestDigestFailureAccounting:
    def test_counts_and_warns_once(self, monkeypatch):
        monkeypatch.setattr(summary, "_warned_digest_failure", False)
        registry = default_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert summary.summarize_result(
                _ExplodingResult(), registry=registry) is None
            assert summary.summarize_result(
                _ExplodingResult(), registry=registry) is None
        assert registry.get("obs.digest_errors").total() == 2
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "obs.digest_errors" in str(runtime[0].message)

    def test_duck_type_miss_stays_silent(self, monkeypatch):
        monkeypatch.setattr(summary, "_warned_digest_failure", False)
        registry = default_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert summary.summarize_result(None, registry=registry) is None
            assert summary.summarize_result({}, registry=registry) is None
        assert registry.get("obs.digest_errors").total() == 0
        assert not caught

    def test_failure_never_propagates_without_registry(self, monkeypatch):
        monkeypatch.setattr(summary, "_warned_digest_failure", True)
        assert summary.summarize_result(_ExplodingResult()) is None


def _load_bench_common():
    spec = importlib.util.spec_from_file_location(
        "bench_common", REPO_ROOT / "benchmarks" / "_common.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchStamping:
    def test_payload_is_stamped(self, tmp_path):
        common = _load_bench_common()
        out = tmp_path / "BENCH_x.json"
        common.save_bench_json(out, {"bench": "x", "speedup": 2.0},
                               trend_keys=("speedup",))
        doc = json.loads(out.read_text())
        stamp = doc["provenance"]
        assert stamp["schema_version"] == common.BENCH_SCHEMA_VERSION
        assert stamp["trend_keys"] == ["speedup"]
        assert isinstance(stamp["code_version"], int)
        assert doc["history"] == []

    def test_history_carried_forward(self, tmp_path):
        common = _load_bench_common()
        out = tmp_path / "BENCH_x.json"
        common.save_bench_json(out, {"bench": "x", "speedup": 2.0},
                               trend_keys=("speedup",))
        common.save_bench_json(out, {"bench": "x", "speedup": 2.5},
                               trend_keys=("speedup",))
        doc = json.loads(out.read_text())
        assert doc["speedup"] == 2.5
        assert len(doc["history"]) == 1
        assert doc["history"][0]["speedup"] == 2.0
        assert "generated_at" in doc["history"][0]

    def test_unstamped_previous_payload_ignored(self, tmp_path):
        common = _load_bench_common()
        out = tmp_path / "BENCH_x.json"
        out.write_text(json.dumps({"bench": "x", "speedup": 1.0}))
        common.save_bench_json(out, {"bench": "x", "speedup": 2.0},
                               trend_keys=("speedup",))
        doc = json.loads(out.read_text())
        assert doc["history"] == []  # no provenance: no trustworthy row

    def test_shipped_bench_payload_is_stamped(self):
        path = REPO_ROOT / "BENCH_hotpath.json"
        doc = json.loads(path.read_text())
        stamp = doc["provenance"]
        assert stamp["schema_version"] >= 1
        assert "speedup_geomean" in stamp["trend_keys"]
        assert isinstance(doc["history"], list)
