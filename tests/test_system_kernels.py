"""Kernel-level execution: boundaries, stats aggregation, streams."""

from repro.config import COHERENCE_HARDWARE, COHERENCE_SOFTWARE, WRITE_BACK
from repro.numa.system import MultiGpuSystem
from tests.conftest import make_kernel, make_trace, small_config, tiny_rdc_config


def kernel_all_gpus(lines_per_gpu, writes=False, kernel_id=0, **kw):
    """A kernel whose CTA i runs on GPU i (4 CTAs, contiguous schedule)."""
    lines, ctas, wr = [], [], []
    for cta, ls in enumerate(lines_per_gpu):
        for ln in ls:
            lines.append(ln)
            ctas.append(cta)
            wr.append(writes)
    return make_kernel(lines, writes=wr, cta_ids=ctas, n_ctas=4,
                       kernel_id=kernel_id, **kw)


class TestKernelBoundary:
    def test_l1_invalidated(self):
        s = MultiGpuSystem(small_config())
        s.access(0, 7, False)
        s.kernel_boundary()
        assert not s.nodes[0].l1.contains(7)

    def test_l2_remote_lines_dropped_local_kept(self):
        s = MultiGpuSystem(small_config())
        s.access(0, 7, False)    # local at GPU 0
        s.access(1, 7, False)    # remote copy in GPU 1's L2
        s.kernel_boundary()
        assert s.nodes[0].l2.contains(7)
        assert not s.nodes[1].l2.contains(7)

    def test_hwc_rdc_survives_boundary(self):
        s = MultiGpuSystem(tiny_rdc_config(coherence=COHERENCE_HARDWARE))
        s.access(0, 7, False)
        s.access(1, 7, False)
        s.kernel_boundary()
        assert s.nodes[1].carve.rdc.contains(7)

    def test_swc_writeback_rdc_flushes_dirty_home(self):
        cfg = tiny_rdc_config(
            coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
        )
        s = MultiGpuSystem(cfg)
        s.access(0, 7, False)
        s.access(1, 7, False)   # RDC fill at GPU 1
        s.access(1, 7, True)    # dirty in GPU 1's RDC (write-back defers)
        home_writes_before = s.nodes[0].dram.stats.writes
        s.kernel_boundary()
        assert s.nodes[0].dram.stats.writes == home_writes_before + 1


class TestRunKernel:
    def test_stats_per_gpu(self):
        s = MultiGpuSystem(small_config())
        k = kernel_all_gpus([[0], [100], [200], [300]])
        ks = s.run_kernel(k)
        for g in range(4):
            assert ks.gpus[g].accesses == 1
            assert ks.gpus[g].local_reads == 1

    def test_instructions_follow_intensity(self):
        s = MultiGpuSystem(small_config())
        k = kernel_all_gpus([[0, 1], [100, 101], [], []],
                            instr_per_access=5.0)
        ks = s.run_kernel(k)
        assert ks.gpus[0].instructions == 10.0

    def test_dram_counters_are_per_kernel_deltas(self):
        s = MultiGpuSystem(small_config())
        k0 = kernel_all_gpus([[0], [], [], []])
        k1 = kernel_all_gpus([[1], [], [], []], kernel_id=1)
        ks0 = s.run_kernel(k0)
        ks1 = s.run_kernel(k1)
        assert ks0.gpus[0].dram_reads == 1
        assert ks1.gpus[0].dram_reads == 1  # not cumulative

    def test_link_matrix_snapshot_per_kernel(self):
        s = MultiGpuSystem(small_config())
        k0 = kernel_all_gpus([[0], [], [], []])
        s.run_kernel(k0)
        # Kernel 1: GPU 1 reads GPU 0's line.
        k1 = kernel_all_gpus([[], [0], [], []], kernel_id=1)
        ks1 = s.run_kernel(k1)
        assert ks1.link_bytes[1][0] > 0
        k2 = kernel_all_gpus([[], [], [200], []], kernel_id=2)
        ks2 = s.run_kernel(k2)
        assert sum(sum(r) for r in ks2.link_bytes) == 0

    def test_warmup_flag_propagates(self):
        s = MultiGpuSystem(small_config())
        k = kernel_all_gpus([[0], [], [], []])
        k.warmup = True
        assert s.run_kernel(k).warmup


class TestRunTrace:
    def test_run_result_structure(self):
        s = MultiGpuSystem(small_config())
        trace = make_trace([
            kernel_all_gpus([[0], [100], [200], [300]]),
            kernel_all_gpus([[1], [101], [201], [301]], kernel_id=1),
        ])
        result = s.run(trace)
        assert len(result.kernels) == 2
        assert len(result.pages_mapped) == 4
        assert sum(result.pages_mapped) == s.pagetable.total_pages

    def test_remote_pages_touched_measures_shared_footprint(self):
        s = MultiGpuSystem(small_config())
        trace = make_trace([
            kernel_all_gpus([[0], [0], [0], [0]]),  # page 0 shared by all
        ])
        result = s.run(trace)
        # Three GPUs fetched page 0 remotely.
        assert sum(result.remote_pages_touched) == 3

    def test_inter_kernel_reuse_visible_only_with_hw_coherence(self):
        """The crux of Fig. 11: SWC refetches, HWC retains."""
        lines = list(range(0, 64))
        def shared_kernels():
            return [
                kernel_all_gpus([lines, lines, [], []], kernel_id=i)
                for i in range(3)
            ]
        swc = MultiGpuSystem(tiny_rdc_config(coherence=COHERENCE_SOFTWARE))
        hwc = MultiGpuSystem(tiny_rdc_config(coherence=COHERENCE_HARDWARE))
        r_swc = swc.run(make_trace(shared_kernels()))
        r_hwc = hwc.run(make_trace(shared_kernels()))
        # Later kernels: HWC serves shared reuse from the RDC, SWC goes
        # back over the link every kernel.
        swc_last = r_swc.kernels[-1].total()
        hwc_last = r_hwc.kernels[-1].total()
        assert hwc_last.remote_reads < swc_last.remote_reads
