"""Tests for the JSONL / Chrome-trace exporters (repro.obs.export)."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.config import COHERENCE_HARDWARE
from repro.numa.system import MultiGpuSystem
from repro.obs import Observability
from repro.obs.export import (
    build_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import METRIC_NAMES, default_registry
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

from .conftest import tiny_rdc_config


@pytest.fixture(scope="module")
def observed_run():
    cfg = tiny_rdc_config(coherence=COHERENCE_HARDWARE)
    spec = dataclasses.replace(
        get("Lulesh"), n_kernels=3, warmup_kernels=1,
        max_accesses=3000, min_accesses=500,
    )
    trace = generate_trace(spec, cfg)
    obs = Observability(trace=True)
    result = MultiGpuSystem(cfg, obs=obs).run(trace)
    return result, cfg, obs


class TestChromeTrace:
    def test_document_is_json_serializable(self, observed_run):
        result, cfg, obs = observed_run
        doc = build_chrome_trace(result, cfg, obs)
        json.loads(json.dumps(doc))

    def test_schema_essentials(self, observed_run):
        result, cfg, obs = observed_run
        doc = build_chrome_trace(result, cfg, obs)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["n_gpus"] == result.n_gpus
        events = doc["traceEvents"]
        assert events, "empty trace"
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert "ts" in ev and ev["ts"] >= 0

    def test_kernel_slices_cover_every_kernel_and_gpu(self, observed_run):
        result, cfg, obs = observed_run
        doc = build_chrome_trace(result, cfg, obs)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(result.kernels) * result.n_gpus
        assert all(e["dur"] >= 0 for e in slices)

    def test_counter_tracks_use_registered_names(self, observed_run):
        result, cfg, obs = observed_run
        doc = build_chrome_trace(result, cfg, obs)
        counter_names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "C"
        }
        assert counter_names, "no counter tracks"
        assert counter_names <= METRIC_NAMES

    def test_slices_are_ordered_per_gpu(self, observed_run):
        result, cfg, obs = observed_run
        doc = build_chrome_trace(result, cfg, obs)
        by_gpu: dict = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_gpu.setdefault(e["pid"], []).append(e["ts"])
        for starts in by_gpu.values():
            assert starts == sorted(starts)

    def test_write_chrome_trace_roundtrip(self, observed_run, tmp_path):
        result, cfg, obs = observed_run
        path = tmp_path / "t.trace.json"
        doc = write_chrome_trace(path, result, cfg, obs)
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))


class TestJsonl:
    def test_every_line_parses(self, observed_run):
        result, _cfg, obs = observed_run
        buf = io.StringIO()
        n = write_jsonl(buf, obs, result)
        lines = buf.getvalue().splitlines()
        assert len(lines) == n
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "header"
        assert records[0]["workload"] == result.workload
        assert records[-1]["record"] == "metrics"
        kinds = {r["record"] for r in records}
        assert kinds == {"header", "event", "metrics"}

    def test_event_count_matches_tracer(self, observed_run):
        _result, _cfg, obs = observed_run
        buf = io.StringIO()
        write_jsonl(buf, obs)
        events = [
            json.loads(line) for line in buf.getvalue().splitlines()
            if json.loads(line)["record"] == "event"
        ]
        assert len(events) == len(obs.tracer)


class TestMetricsJson:
    def test_accepts_observability(self, observed_run, tmp_path):
        _result, _cfg, obs = observed_run
        path = tmp_path / "m.json"
        write_metrics_json(path, obs, extra={"workload": "Lulesh"})
        doc = json.loads(path.read_text())
        assert doc["workload"] == "Lulesh"
        assert "sim.accesses" in doc["metrics"]
        assert len(doc["kernel_snapshots"]) \
            == len(obs.registry.kernel_snapshots)

    def test_accepts_bare_registry(self, tmp_path):
        r = default_registry()
        r.get("runner.attempts").inc(3)
        path = tmp_path / "m.json"
        doc = write_metrics_json(path, r)
        assert doc["metrics"]["runner.attempts"]["values"] == {"": 3}
