"""Tests for the ``repro serve`` job service (docs/serve.md).

Fast tests monkeypatch :func:`repro.serve.jobs.execute_request` with a
gated fake so scheduling behaviour (coalescing, backpressure, graceful
shutdown) is exercised deterministically, without simulating anything.
A small number of integration tests run the real simulator through the
full socket path.
"""

from __future__ import annotations

import json
import os
import threading
from types import SimpleNamespace

import pytest

from repro.lint.resolver import MetricNameResolver
from repro.obs.events import EVENT_KINDS
from repro.obs.metrics import SPECS, default_registry
from repro.serve import ServeClient, ThreadedServer
from repro.serve.jobs import JobRequest, RequestError
from repro.serve.routes import ROUTES, match_route, methods_for
from repro.serve.store import ResultStore, cas_key

WORKLOAD = "Lulesh"
OTHER_WORKLOADS = ("XSBench", "AMG", "CoMD", "MCB", "HPGMG")


def _fake_execute(started=None, release=None, ok=True):
    """A stand-in for execute_request, optionally gated on events."""

    def fake(request, journal_path, pool_jobs, registry=None,
             trace=None, on_event=None, pin=False):
        if started is not None:
            started.set()
        if release is not None:
            assert release.wait(30), "test never released the fake job"
        payload = {
            "system": request.system,
            "workloads": list(request.workloads),
            "rdc_gb": request.rdc_gb,
            "fingerprint": {"fake": True},
            "ok": ok,
            "elapsed_s": 0.0,
            "results": {},
            "failures": {} if ok else {
                WORKLOAD: {"key": f"{request.system}/{WORKLOAD}",
                           "kind": "exception",
                           "exception_type": "RuntimeError",
                           "message": "boom", "traceback": "",
                           "config_hash": "", "attempts": 1,
                           "elapsed_s": 0.0},
            },
            "cancelled": [],
        }
        return payload, SimpleNamespace(ok=ok)

    return fake


# ---------------------------------------------------------------------------
# Route registry
# ---------------------------------------------------------------------------

class TestRoutes:
    def test_every_route_matches_its_own_pattern(self):
        for spec in ROUTES:
            sample = spec.pattern.replace("<id>", "job-0001-abcdef01")
            matched = match_route(spec.method, sample)
            assert matched is not None
            assert matched[0] is spec

    def test_path_params_extracted(self):
        spec, params = match_route("GET", "/jobs/job-0007-cafe/result")
        assert spec.name == "job_result"
        assert params == {"id": "job-0007-cafe"}

    def test_unknown_path_matches_nothing(self):
        assert match_route("GET", "/nope") is None
        assert methods_for("/nope") == []

    def test_wrong_method_reports_allowed(self):
        assert match_route("DELETE", "/jobs") is None
        assert methods_for("/jobs") == ["GET", "POST"]


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------

class TestJobRequest:
    def test_minimal_payload_fills_defaults(self):
        req = JobRequest.from_payload(
            {"system": "numa-gpu", "workloads": [WORKLOAD]}
        )
        assert req.system == "numa-gpu"
        assert req.workloads == (WORKLOAD,)
        assert req.rdc_gb == 2.0 and req.use_cache is True

    @pytest.mark.parametrize("payload, fragment", [
        ([], "JSON object"),
        ({"workloads": [WORKLOAD]}, "system:"),
        ({"system": "warp-drive"}, "system:"),
        ({"system": "numa-gpu", "workloads": []}, "workloads:"),
        ({"system": "numa-gpu", "workloads": ["NotAWorkload"]},
         "NotAWorkload"),
        ({"system": "numa-gpu", "rdc_gb": -1}, "rdc_gb:"),
        ({"system": "numa-gpu", "use_cache": "yes"}, "use_cache:"),
        ({"system": "numa-gpu", "timeout_s": 0}, "timeout_s:"),
        ({"system": "numa-gpu", "retries": -2}, "retries:"),
        ({"system": "numa-gpu", "surprise": 1}, "unknown field"),
    ])
    def test_bad_payloads_name_the_field(self, payload, fragment):
        with pytest.raises(RequestError, match=None) as exc:
            JobRequest.from_payload(payload)
        assert fragment in str(exc.value)

    def test_cas_key_ignores_runner_knobs(self):
        base = {"system": "numa-gpu", "workloads": [WORKLOAD]}
        a = JobRequest.from_payload(base)
        b = JobRequest.from_payload({**base, "retries": 3,
                                     "timeout_s": 60.0})
        assert a.cas_key() == b.cas_key()

    def test_cas_key_varies_with_config(self):
        a = JobRequest.from_payload(
            {"system": "numa-gpu", "workloads": [WORKLOAD]})
        b = JobRequest.from_payload(
            {"system": "carve-hwc", "workloads": [WORKLOAD]})
        c = JobRequest.from_payload(
            {"system": "carve-hwc", "workloads": [WORKLOAD],
             "rdc_gb": 4.0})
        assert len({a.cas_key(), b.cas_key(), c.cas_key()}) == 3


# ---------------------------------------------------------------------------
# The content-addressed store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = cas_key(config_hash="abc", code_version=1,
                      system="numa-gpu", workloads=(WORKLOAD,))
        assert store.load(key) is None
        store.save(key, {"ok": True, "n": 42})
        assert store.load(key) == {"ok": True, "n": 42}
        assert store.keys() == [key]

    def test_workload_order_does_not_change_the_key(self):
        kw = dict(config_hash="abc", code_version=1, system="s")
        assert cas_key(workloads=("A", "B"), **kw) == \
            cas_key(workloads=("B", "A"), **kw)

    def test_corrupt_file_is_quarantined_and_counted(self, tmp_path):
        registry = default_registry()
        store = ResultStore(tmp_path, registry=registry)
        key = "deadbeef" * 4
        store.save(key, {"ok": True})
        path = store.result_path(key)
        path.write_text(path.read_text()[:-20] + "garbage}\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load(key) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert registry.get("serve.store_quarantined").total() == 1
        # quarantine cleared the slot: a fresh save works again
        store.save(key, {"ok": True})
        assert store.load(key) == {"ok": True}

    def test_checksum_mismatch_detected(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cafebabe" * 4
        store.save(key, {"value": 1})
        path = store.result_path(key)
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 2  # silent bit-flip, sum stale
        path.write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning):
            assert store.load(key) is None

    def test_key_mismatch_detected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a" * 32, {"value": 1})
        # file renamed to the wrong address
        store.result_path("a" * 32).rename(store.result_path("b" * 32))
        with pytest.warns(RuntimeWarning):
            assert store.load("b" * 32) is None


# ---------------------------------------------------------------------------
# Scheduling behaviour (fake executor — fast and deterministic)
# ---------------------------------------------------------------------------

class TestScheduling:
    def test_inflight_coalescing(self, tmp_path, monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            first = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert first.status == 201 and first["dedup"] == "new"
            assert started.wait(10)
            # same config while running → same job id, one execution
            second = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert second.status == 200
            assert second["dedup"] == "coalesced"
            assert second["id"] == first["id"]
            release.set()
            final = c.wait(first["id"], timeout=30)
            assert final["state"] == "done"
            snap = c.metricsz().body
            assert snap["serve.coalesced"]["values"][""] == 1

    def test_completed_config_is_a_cas_hit(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute())
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            first = c.submit("numa-gpu", workloads=[WORKLOAD])
            c.wait(first["id"], timeout=30)
            again = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert again.status == 200
            assert again["dedup"] == "cached"
            assert again["state"] == "done"
            assert again["id"] != first["id"]
            assert again["key"] == first["key"]
            # the cached job serves the stored payload
            assert c.result(again["id"])["fingerprint"] == {"fake": True}

    def test_cas_survives_restart(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute())
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD])
            c.wait(r["id"], timeout=30)
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            again = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert again["dedup"] == "cached"

    def test_queue_full_answers_429_with_retry_after(self, tmp_path,
                                                     monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1, queue_depth=1) as srv:
            c = ServeClient(port=srv.port)
            # distinct configs: dedup must not mask the queue
            c.submit("numa-gpu", workloads=[WORKLOAD])
            assert started.wait(10)          # executing, queue empty
            queued = c.submit("numa-gpu", workloads=[OTHER_WORKLOADS[0]])
            assert queued.status == 201      # fills the queue
            rejected = c.submit("numa-gpu",
                                workloads=[OTHER_WORKLOADS[1]])
            assert rejected.status == 429
            assert rejected.headers["retry-after"] == "5"
            assert rejected["retry_after_s"] == 5
            # a coalescing submit still bypasses the full queue
            again = c.submit("numa-gpu", workloads=[OTHER_WORKLOADS[0]])
            assert again.status == 200 and again["dedup"] == "coalesced"
            release.set()
            snap = c.metricsz().body
            assert snap["serve.rejected"]["values"][""] == 1

    def test_failed_jobs_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(ok=False))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD])
            final = c.wait(r["id"], timeout=30)
            assert final["state"] == "failed"
            assert final["failures"][WORKLOAD]["kind"] == "exception"
            # failure is a property of the attempt: resubmit re-runs
            again = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert again["dedup"] == "new"

    def test_graceful_shutdown_drains_inflight_cancels_queued(
            self, tmp_path, monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        srv = ThreadedServer(tmp_path, pool_jobs=1)
        srv.start()
        c = ServeClient(port=srv.port)
        running = c.submit("numa-gpu", workloads=[WORKLOAD])
        assert started.wait(10)
        queued = c.submit("numa-gpu", workloads=[OTHER_WORKLOADS[0]])
        stopper = threading.Thread(target=srv.stop)
        stopper.start()
        release.set()
        stopper.join(30)
        assert not stopper.is_alive()
        # the in-flight job completed and its result was stored ...
        store = ResultStore(tmp_path)
        running_req = JobRequest.from_payload(
            {"system": "numa-gpu", "workloads": [WORKLOAD]})
        assert store.load(running_req.cas_key()) is not None
        # ... while the queued one never executed
        queued_req = JobRequest.from_payload(
            {"system": "numa-gpu", "workloads": [OTHER_WORKLOADS[0]]})
        assert store.load(queued_req.cas_key()) is None
        assert running["id"] != queued["id"]


# ---------------------------------------------------------------------------
# The bounded store (LRU eviction, docs/serve.md)
# ---------------------------------------------------------------------------

class TestStoreGC:
    def _filled(self, root, keys, registry=None, max_bytes=None):
        store = ResultStore(root, registry=registry, max_bytes=max_bytes)
        for i, key in enumerate(keys):
            store.save(key, {"n": i, "pad": "x" * 64})
            # deterministic LRU order regardless of filesystem timestamp
            # resolution
            os.utime(store.result_path(key), (i, i))
        return store

    def test_unbounded_store_never_evicts(self, tmp_path):
        keys = ["a" * 32, "b" * 32]
        store = self._filled(tmp_path, keys)
        assert sorted(store.keys()) == keys

    def test_post_write_eviction_is_lru_and_counted(self, tmp_path):
        registry = default_registry()
        keys = ["a" * 32, "b" * 32]
        store = self._filled(tmp_path, keys, registry=registry)
        entry = store._entry_bytes(keys[0])
        store.max_bytes = 2 * entry  # room for two entries
        newest = "c" * 32
        store.save(newest, {"n": 2, "pad": "x" * 64})
        # oldest mtime went first; the just-written key is protected
        assert sorted(store.keys()) == sorted([keys[1], newest])
        assert registry.get("serve.store_evicted").total() == 1

    def test_load_refreshes_lru_position(self, tmp_path):
        registry = default_registry()
        keys = ["a" * 32, "b" * 32]
        store = self._filled(tmp_path, keys, registry=registry)
        store.max_bytes = 2 * store._entry_bytes(keys[0])
        assert store.load(keys[0]) is not None  # touch: "a" now newest
        store.save("c" * 32, {"n": 2, "pad": "x" * 64})
        assert sorted(store.keys()) == sorted([keys[0], "c" * 32])

    def test_startup_gc_enforces_the_bound(self, tmp_path):
        registry = default_registry()
        keys = ["a" * 32, "b" * 32, "c" * 32]
        store = self._filled(tmp_path, keys)
        bound = store._entry_bytes(keys[0]) * 2
        reopened = ResultStore(tmp_path, registry=registry,
                               max_bytes=bound)
        assert sorted(reopened.keys()) == sorted(keys[1:])
        assert registry.get("serve.store_evicted").total() == 1

    def test_eviction_removes_the_whole_entry(self, tmp_path):
        from repro.obs.trace import spans_dir_for

        key = "a" * 32
        store = self._filled(tmp_path, [key])
        journal = store.journal_path(key)
        journal.write_text('{"event": "meta"}\n')
        spans = spans_dir_for(journal)
        spans.mkdir()
        (spans / "worker-00.jsonl").write_text("{}\n")
        store.max_bytes = 1  # smaller than anything
        protected = "b" * 32
        store.save(protected, {"n": 1})
        assert store.keys() == [protected]
        assert not journal.exists() and not spans.exists()


# ---------------------------------------------------------------------------
# The event stream and the trace endpoint (docs/tracing.md)
# ---------------------------------------------------------------------------

class TestEventStreamAndTrace:
    def test_long_poll_cursor_and_terminal_drain(self, tmp_path,
                                                 monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            job = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert started.wait(10)
            first = c.events(job["id"])
            assert first.status == 200
            kinds = [e["kind"] for e in first["events"]]
            assert kinds == ["job.queued", "job.running"]
            assert first["next"] == first["events"][-1]["seq"]
            assert first["trace_id"]  # minted at submission
            assert first["events"][0]["trace_id"] == first["trace_id"]
            release.set()
            # the long poll parks until the terminal event arrives
            more = c.events(job["id"], since=first["next"], wait=10)
            assert [e["kind"] for e in more["events"]] == ["job.done"]
            assert more["state"] == "done"
            # a terminal job returns immediately, stream drained
            drained = c.events(job["id"], since=more["next"], wait=30)
            assert drained["events"] == []
            snap = c.metricsz().body
            assert snap["serve.stream_clients"]["values"][""] == 0

    def test_coalesced_submit_is_visible_in_the_stream(self, tmp_path,
                                                       monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            job = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert started.wait(10)
            c.submit("numa-gpu", workloads=[WORKLOAD])  # coalesces
            release.set()
            c.wait(job["id"], timeout=30)
            stream = c.events(job["id"])
            assert "job.coalesced" in [e["kind"] for e in stream["events"]]

    def test_events_error_cases(self, tmp_path):
        with ThreadedServer(tmp_path) as srv:
            c = ServeClient(port=srv.port)
            assert c.events("job-9999-missing").status == 404
            r = c.request("GET", "/jobs/job-9999-missing/events?since=x")
            assert r.status == 404  # unknown job wins over bad params

    def test_bad_cursor_is_a_400(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute())
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            job = c.submit("numa-gpu", workloads=[WORKLOAD])
            c.wait(job["id"], timeout=30)
            r = c.request("GET", f"/jobs/{job['id']}/events?since=x")
            assert r.status == 400

    def test_trace_unready_answers_409(self, tmp_path, monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            assert c.trace("job-9999-missing").status == 404
            job = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert started.wait(10)
            pending = c.trace(job["id"])
            assert pending.status == 409
            assert pending["state"] == "running"
            release.set()


# ---------------------------------------------------------------------------
# HTTP surface details (fake executor)
# ---------------------------------------------------------------------------

class TestHttpSurface:
    def test_unknown_job_404s(self, tmp_path):
        with ThreadedServer(tmp_path) as srv:
            c = ServeClient(port=srv.port)
            assert c.job("job-9999-missing").status == 404
            assert c.result("job-9999-missing").status == 404
            assert c.report("job-9999-missing").status == 404

    def test_unknown_route_404s_wrong_method_405s(self, tmp_path):
        with ThreadedServer(tmp_path) as srv:
            c = ServeClient(port=srv.port)
            assert c.request("GET", "/nope").status == 404
            r = c.request("DELETE", "/jobs")
            assert r.status == 405
            assert r.headers["allow"] == "GET, POST"

    def test_invalid_submissions_400(self, tmp_path):
        with ThreadedServer(tmp_path) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("warp-drive")
            assert r.status == 400 and "system:" in r["error"]
            r = c.submit("numa-gpu", workloads=["NotAWorkload"])
            assert r.status == 400 and "NotAWorkload" in r["error"]

    def test_result_before_completion_409s(self, tmp_path, monkeypatch):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr("repro.serve.jobs.execute_request",
                            _fake_execute(started, release))
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD])
            assert started.wait(10)
            pending = c.result(r["id"])
            assert pending.status == 409
            assert pending["state"] == "running"
            release.set()

    def test_healthz_and_job_list(self, tmp_path):
        with ThreadedServer(tmp_path, queue_depth=3) as srv:
            c = ServeClient(port=srv.port)
            h = c.healthz()
            assert h.status == 200 and h["ok"] is True
            assert h["accepting"] is True
            assert h["queue_capacity"] == 3
            listing = c.jobs()
            assert listing.status == 200
            assert listing["jobs"] == []

    def test_metricsz_names_resolve_against_the_contract(self, tmp_path):
        resolver = MetricNameResolver(SPECS, EVENT_KINDS)
        with ThreadedServer(tmp_path) as srv:
            c = ServeClient(port=srv.port)
            snap = c.metricsz().body
        assert "serve.submitted" in snap
        for name in snap:
            assert resolver.looks_like_metric(name), name
            assert resolver.resolve(name) is None, name


# ---------------------------------------------------------------------------
# Integration (real simulator through the real socket)
# ---------------------------------------------------------------------------

class TestIntegration:
    def test_submit_status_result_report_round_trip(self, tmp_path):
        with ThreadedServer(tmp_path, pool_jobs=1) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD],
                         use_cache=False)
            assert r.status == 201
            final = c.wait(r["id"], timeout=300)
            assert final["state"] == "done"
            result = c.result(r["id"])
            assert result.status == 200 and result["ok"] is True
            digest = result["results"][WORKLOAD]["metrics"]
            assert digest["sim.accesses"] > 0
            assert result["results"][WORKLOAD]["time_s"] > 0
            fp = result["fingerprint"]
            assert fp["config_hash"] and fp["code_version"]
            report = c.report(r["id"])
            assert report.status == 200
            assert report.headers["content-type"].startswith("text/html")
            assert "<html" in report.body
            # the journal really is the report's source
            store = ResultStore(tmp_path)
            assert store.journal_path(final["key"]).exists()

    def test_trace_endpoint_round_trip(self, tmp_path):
        from repro.obs.assemble import PID_WORKER_BASE

        # pool_jobs=2: the isolated pool path, so worker task spans
        # (not just runner attempt spans) appear in the timeline
        with ThreadedServer(tmp_path, pool_jobs=2) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD],
                         use_cache=False)
            final = c.wait(r["id"], timeout=300)
            assert final["state"] == "done"
            assert final["trace_id"] and final["events"] >= 3
            doc = c.trace(r["id"])
            assert doc.status == 200
            body = doc.body
            assert body["otherData"]["trace_id"] == final["trace_id"]
            assert body["otherData"]["unfinished_spans"] == 0
            slices = [e for e in body["traceEvents"] if e["ph"] == "X"]
            assert slices and all(
                e["args"]["trace_id"] == final["trace_id"] for e in slices
            )
            # the worker's task span landed on a labeled worker row
            assert any(e["pid"] >= PID_WORKER_BASE for e in slices)
            # the serve lifecycle rides along as its own row
            serve_row = [e for e in body["traceEvents"]
                         if e.get("cat") == "serve"]
            assert any(e["name"] == "job.done" for e in serve_row)
            # offline assembly of the same artifacts agrees
            offline = c.request("GET", f"/jobs/{r['id']}/trace")
            assert offline.status == 200

    def test_worker_crash_surfaces_failure_report(self, tmp_path,
                                                  monkeypatch):
        # SIGKILL the pool worker at task entry (legacy chaos hook);
        # pool_jobs=2 keeps the crash in an isolated worker process.
        monkeypatch.setenv("REPRO_INJECT_FAULT", f"crash:{WORKLOAD}")
        with ThreadedServer(tmp_path, pool_jobs=2) as srv:
            c = ServeClient(port=srv.port)
            r = c.submit("numa-gpu", workloads=[WORKLOAD],
                         use_cache=False)
            final = c.wait(r["id"], timeout=300)
            assert final["state"] == "failed"
            report = final["failures"][WORKLOAD]
            assert report["kind"] == "crash"
            assert report["key"] == f"numa-gpu/{WORKLOAD}"
            assert report["attempts"] >= 1
            # failed configs never enter the CAS
            assert ResultStore(tmp_path).keys() == []
