"""Tests for the access-pattern primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import patterns


RNG = np.random.default_rng(42)


class TestStream:
    def test_sequential(self):
        out = patterns.stream(100, 8, 5)
        assert list(out) == [100, 101, 102, 103, 104]

    def test_wraps(self):
        out = patterns.stream(0, 4, 6)
        assert list(out) == [0, 1, 2, 3, 0, 1]

    def test_offset(self):
        out = patterns.stream(0, 8, 3, offset=6)
        assert list(out) == [6, 7, 0]


class TestStrided:
    def test_stride(self):
        out = patterns.strided(0, 16, 4, stride=4)
        assert list(out) == [0, 4, 8, 12]

    def test_coprime_stride_covers_region(self):
        out = patterns.strided(0, 8, 8, stride=3)
        assert sorted(out) == list(range(8))

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            patterns.strided(0, 8, 4, stride=0)


class TestUniform:
    def test_in_bounds(self):
        out = patterns.uniform(50, 10, 1000, RNG)
        assert out.min() >= 50 and out.max() < 60

    def test_covers_region_eventually(self):
        out = patterns.uniform(0, 8, 1000, RNG)
        assert set(out) == set(range(8))


class TestZipf:
    def test_in_bounds(self):
        out = patterns.zipf(100, 50, 2000, RNG, alpha=1.2)
        assert out.min() >= 100 and out.max() < 150

    def test_skewed_popularity(self):
        out = patterns.zipf(0, 1000, 20_000, RNG, alpha=1.5)
        _, counts = np.unique(out, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The hottest line sees far more traffic than the median line.
        assert counts[0] > 10 * np.median(counts)

    def test_hot_lines_scattered_across_region(self):
        out = patterns.zipf(0, 1024, 20_000, RNG, alpha=1.5)
        values, counts = np.unique(out, return_counts=True)
        hot = values[np.argsort(counts)[-10:]]
        # Hot lines should not all cluster in the first page (16 lines).
        assert (hot >= 16).any()

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            patterns.zipf(0, 8, 4, RNG, alpha=1.0)


class TestStencil:
    def test_in_bounds(self):
        out = patterns.stencil(0, 100, 5000, RNG, row_lines=10)
        assert out.min() >= 0 and out.max() < 100

    def test_mostly_sequential(self):
        out = patterns.stencil(0, 1000, 900, RNG, row_lines=10)
        # The sweep base advances by one; offsets cluster around it.
        drift = np.abs(np.diff(out))
        assert np.median(drift) <= 11

    def test_invalid_row(self):
        with pytest.raises(ValueError):
            patterns.stencil(0, 100, 10, RNG, row_lines=0)


class TestDispatch:
    def test_known_patterns(self):
        for name in patterns.PATTERNS:
            out = patterns.generate(name, 0, 32, 10, RNG)
            assert len(out) == 10
            assert out.min() >= 0 and out.max() < 32

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            patterns.generate("fractal", 0, 32, 10, RNG)

    def test_validation(self):
        with pytest.raises(ValueError):
            patterns.stream(-1, 8, 4)
        with pytest.raises(ValueError):
            patterns.stream(0, 0, 4)
        with pytest.raises(ValueError):
            patterns.stream(0, 8, -1)

    def test_zero_count_allowed(self):
        assert len(patterns.stream(0, 8, 0)) == 0


class TestPatternProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(sorted(patterns.PATTERNS)),
        start=st.integers(min_value=0, max_value=10_000),
        n_lines=st.integers(min_value=1, max_value=500),
        count=st.integers(min_value=0, max_value=500),
    )
    def test_all_patterns_stay_in_region(self, name, start, n_lines, count):
        rng = np.random.default_rng(7)
        out = patterns.generate(name, start, n_lines, count, rng)
        assert len(out) == count
        if count:
            assert out.min() >= start
            assert out.max() < start + n_lines
