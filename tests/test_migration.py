"""Tests for the page migration engine."""

import pytest

from repro.numa.migration import MigrationEngine
from repro.numa.pagetable import PageTable


def engine(threshold=3, cap=2):
    pt = PageTable(4)
    pt.home_of(10, 0)
    return pt, MigrationEngine(pt, threshold=threshold, max_moves_per_page=cap)


class TestThreshold:
    def test_below_threshold_no_move(self):
        pt, m = engine(threshold=3)
        assert not m.note_remote_access(10, 1)
        assert not m.note_remote_access(10, 1)
        assert pt.peek_home(10) == 0

    def test_threshold_triggers_move(self):
        pt, m = engine(threshold=3)
        m.note_remote_access(10, 1)
        m.note_remote_access(10, 1)
        assert m.note_remote_access(10, 1)
        assert pt.peek_home(10) == 1
        assert m.stats.migrations == 1

    def test_counters_are_per_gpu(self):
        pt, m = engine(threshold=3)
        m.note_remote_access(10, 1)
        m.note_remote_access(10, 2)
        assert not m.note_remote_access(10, 3)
        assert pt.peek_home(10) == 0

    def test_counters_reset_after_move(self):
        pt, m = engine(threshold=2)
        m.note_remote_access(10, 1)
        m.note_remote_access(10, 1)  # moves to 1
        # GPU 0 now remote; needs a full threshold again.
        assert not m.note_remote_access(10, 0)
        assert m.note_remote_access(10, 0)
        assert pt.peek_home(10) == 0


class TestPingPongCap:
    def test_cap_blocks_further_moves(self):
        pt, m = engine(threshold=1, cap=2)
        assert m.note_remote_access(10, 1)  # move 1
        assert m.note_remote_access(10, 0)  # move 2
        assert not m.note_remote_access(10, 1)  # capped
        assert m.stats.blocked_by_cap == 1
        assert pt.peek_home(10) == 0

    def test_cap_is_per_page(self):
        pt, m = engine(threshold=1, cap=1)
        pt.home_of(11, 0)
        assert m.note_remote_access(10, 1)
        assert m.note_remote_access(11, 1)


class TestValidation:
    def test_bad_threshold(self):
        pt = PageTable(4)
        with pytest.raises(ValueError):
            MigrationEngine(pt, threshold=0)

    def test_bad_cap(self):
        pt = PageTable(4)
        with pytest.raises(ValueError):
            MigrationEngine(pt, threshold=1, max_moves_per_page=0)

    def test_observed_counter(self):
        pt, m = engine(threshold=10)
        for _ in range(5):
            m.note_remote_access(10, 1)
        assert m.stats.remote_accesses_observed == 5
