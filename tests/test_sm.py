"""Tests for the SM compute model."""

import pytest

from repro.config import GpuConfig
from repro.gpu.sm import ComputeModel


@pytest.fixture
def model() -> ComputeModel:
    return ComputeModel(GpuConfig())


class TestThroughput:
    def test_peak_rate(self, model):
        assert model.peak_instr_per_s == 64e9

    def test_compute_time(self, model):
        assert model.compute_time_s(64e9) == pytest.approx(1.0)

    def test_zero_instructions(self, model):
        assert model.compute_time_s(0) == 0.0

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.compute_time_s(-1)


class TestConcurrency:
    def test_scales_with_sms(self, model):
        assert model.concurrency(4.0) == 4.0 * 64

    def test_capped_by_warps(self, model):
        assert model.concurrency(1000.0) == 64 * 64

    def test_nonpositive_rejected(self, model):
        with pytest.raises(ValueError):
            model.concurrency(0)


class TestOccupancy:
    def test_full(self, model):
        assert model.occupancy(warps_per_cta=64, ctas_resident=64) == 1.0

    def test_partial(self, model):
        assert model.occupancy(warps_per_cta=32, ctas_resident=64) == 0.5

    def test_clamped_at_one(self, model):
        assert model.occupancy(warps_per_cta=64, ctas_resident=1000) == 1.0

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.occupancy(0, 4)
        with pytest.raises(ValueError):
            model.occupancy(4, -1)
