"""Per-access semantics of the MultiGpuSystem model.

These tests drive single accesses through a real system and assert on the
traffic each one generates — the core contract every figure rests on.
"""

from repro.config import (
    COHERENCE_NONE,
    LINE_BYTES,
    LINK_HEADER_BYTES,
)
from repro.numa.system import MultiGpuSystem
from tests.conftest import small_config, tiny_rdc_config


def system(cfg=None) -> MultiGpuSystem:
    return MultiGpuSystem(cfg or small_config())


def carve_system(**rdc_kw) -> MultiGpuSystem:
    return MultiGpuSystem(tiny_rdc_config(**rdc_kw))


REMOTE_LINE = 5  # will be homed at GPU 0 in most tests below


class TestFirstTouch:
    def test_first_access_maps_page_to_accessor(self):
        s = system()
        s.access(2, 100, False)
        page = 100 // s.amap.lines_per_page
        assert s.pagetable.peek_home(page) == 2

    def test_subsequent_access_is_remote_for_others(self):
        s = system()
        s.access(0, REMOTE_LINE, False)
        ks = s.access(1, REMOTE_LINE, False)
        assert ks.gpus[1].remote_reads == 1

    def test_local_access_generates_no_link_traffic(self):
        s = system()
        ks = s.access(0, REMOTE_LINE, False)
        assert sum(sum(row) for row in ks.link_bytes) == 0
        assert ks.gpus[0].local_reads == 1


class TestReadPath:
    def test_l1_hit_after_fill(self):
        s = system()
        s.access(0, 7, False)
        ks = s.access(0, 7, False)
        assert ks.gpus[0].l1_hits == 1
        assert ks.gpus[0].local_reads == 0  # did not reach memory

    def test_l2_hit_after_l1_eviction(self):
        s = system()
        cfg = s.config
        s.access(0, 0, False)
        # Evict line 0 from the (l1_lines)-entry L1 by streaming past it,
        # in a different L2 set region so line 0 can survive in L2.
        for i in range(1, cfg.l1_lines + 1):
            s.access(0, i, False)
        ks = s.access(0, 0, False)
        st = ks.gpus[0]
        assert st.l1_hits == 0
        # Either an L2 hit or (if also evicted) a local read; with equal
        # L1/L2 sizes the line may be gone — accept L2 hit or DRAM read,
        # but never a remote access.
        assert st.remote_reads == 0

    def test_local_miss_reads_own_dram(self):
        s = system()
        ks = s.access(3, 50, False)
        assert ks.gpus[3].dram_reads == 1
        assert ks.gpus[3].local_reads == 1

    def test_remote_read_traffic(self):
        s = system()
        s.access(0, REMOTE_LINE, False)  # home at 0
        ks = s.access(2, REMOTE_LINE, False)
        # Request header out, line + header back.
        assert ks.link_bytes[2][0] == LINK_HEADER_BYTES
        assert ks.link_bytes[0][2] == LINK_HEADER_BYTES + LINE_BYTES
        assert ks.gpus[2].remote_reads == 1

    def test_remote_read_served_by_home_llc_when_cached(self):
        s = system()
        s.access(0, REMOTE_LINE, False)  # home caches it in its L2
        ks = s.access(2, REMOTE_LINE, False)
        # The home's L2 had the line: no DRAM access at the home.
        assert ks.gpus[0].dram_reads == 0

    def test_remote_line_cached_in_requester_llc(self):
        s = system()
        s.access(0, REMOTE_LINE, False)
        s.access(2, REMOTE_LINE, False)
        ks = s.access(2, REMOTE_LINE, False)
        assert ks.gpus[2].remote_reads == 0  # L1 hit now
        assert ks.gpus[2].l1_hits == 1


class TestWritePath:
    def test_local_write_no_link_traffic(self):
        s = system()
        ks = s.access(1, 30, True)
        assert sum(sum(row) for row in ks.link_bytes) == 0
        assert ks.gpus[1].local_writes == 1

    def test_local_write_miss_goes_to_dram(self):
        s = system()
        ks = s.access(1, 30, True)
        assert ks.gpus[1].dram_writes == 1

    def test_local_write_absorbed_by_l2(self):
        s = system()
        s.access(1, 30, False)  # fills L2
        ks = s.access(1, 30, True)
        assert ks.gpus[1].dram_writes == 0  # dirty in L2 instead

    def test_remote_write_goes_through_to_home(self):
        s = system()
        s.access(0, REMOTE_LINE, False)
        ks = s.access(2, REMOTE_LINE, True)
        assert ks.gpus[2].remote_writes == 1
        assert ks.link_bytes[2][0] == LINK_HEADER_BYTES + LINE_BYTES

    def test_dirty_l2_eviction_writes_back(self):
        cfg = small_config()
        s = system(cfg)
        s.access(0, 0, True)   # miss -> DRAM write (no allocate)
        s.access(0, 0, False)  # fill L2
        s.access(0, 0, True)   # dirty in L2
        before = s.nodes[0].dram.stats.writes
        # Evict line 0 from its L2 set by filling the set's ways with
        # conflicting local lines.
        n_sets = s.nodes[0].l2.n_sets
        for w in range(s.nodes[0].l2.ways + 1):
            s.access(0, (w + 1) * n_sets, False)
        assert s.nodes[0].dram.stats.writes == before + 1


class TestCarveReadPath:
    def test_rdc_miss_then_hit(self):
        s = carve_system(coherence=COHERENCE_NONE)
        s.access(0, REMOTE_LINE, False)  # home at 0
        ks1 = s.access(2, REMOTE_LINE, False)
        assert ks1.gpus[2].rdc_misses == 1
        assert ks1.gpus[2].rdc_inserts == 1
        # Kill the L1/L2 copies so the next access reaches the RDC.
        s.nodes[2].l1.invalidate_all()
        s.nodes[2].l2.invalidate_remote()
        ks2 = s.access(2, REMOTE_LINE, False)
        assert ks2.gpus[2].rdc_hits == 1
        assert ks2.gpus[2].remote_reads == 0

    def test_rdc_hit_counts_as_local(self):
        s = carve_system(coherence=COHERENCE_NONE)
        s.access(0, REMOTE_LINE, False)
        s.access(2, REMOTE_LINE, False)
        s.nodes[2].l1.invalidate_all()
        s.nodes[2].l2.invalidate_remote()
        ks = s.access(2, REMOTE_LINE, False)
        assert ks.gpus[2].local_reads == 1
        assert sum(sum(row) for row in ks.link_bytes) == 0

    def test_rdc_probe_and_fill_cost_local_dram(self):
        s = carve_system(coherence=COHERENCE_NONE)
        s.access(0, REMOTE_LINE, False)
        ks = s.access(2, REMOTE_LINE, False)
        # Probe read + fill write at the requester.
        assert ks.gpus[2].dram_reads == 1
        assert ks.gpus[2].dram_writes == 1

    def test_local_data_never_enters_rdc(self):
        s = carve_system(coherence=COHERENCE_NONE)
        s.access(0, 40, False)
        assert not s.nodes[0].carve.rdc.contains(40)

    def test_write_through_rdc_update(self):
        s = carve_system(coherence=COHERENCE_NONE)
        s.access(0, REMOTE_LINE, False)
        s.access(2, REMOTE_LINE, False)  # RDC now holds the line at GPU 2
        ks = s.access(2, REMOTE_LINE, True)
        # Write updates the RDC copy (local DRAM write) and still goes home.
        assert ks.gpus[2].remote_writes == 1
        assert ks.link_bytes[2][0] == LINK_HEADER_BYTES + LINE_BYTES
        assert ks.gpus[2].dram_writes >= 1


class TestMigration:
    def test_page_migrates_after_threshold(self):
        cfg = small_config(migration=True, migration_threshold=3)
        s = system(cfg)
        s.access(0, REMOTE_LINE, False)
        page = REMOTE_LINE // s.amap.lines_per_page
        for _ in range(3):
            s.nodes[1].l1.invalidate_all()
            s.nodes[1].l2.invalidate_all()
            s.access(1, REMOTE_LINE, False)
        assert s.pagetable.peek_home(page) == 1

    def test_migration_charges_page_transfer(self):
        cfg = small_config(migration=True, migration_threshold=1)
        s = system(cfg)
        s.access(0, REMOTE_LINE, False)
        ks = s.access(1, REMOTE_LINE, False)
        lpp = s.amap.lines_per_page
        assert ks.link_bytes[0][1] >= lpp * LINE_BYTES
        assert ks.gpus[1].migrations == 1

    def test_no_migration_when_disabled(self):
        s = system()
        s.access(0, REMOTE_LINE, False)
        for _ in range(50):
            s.nodes[1].l1.invalidate_all()
            s.nodes[1].l2.invalidate_all()
            s.access(1, REMOTE_LINE, False)
        page = REMOTE_LINE // s.amap.lines_per_page
        assert s.pagetable.peek_home(page) == 0


class TestReplication:
    def test_replica_makes_access_local(self):
        from repro.numa.replication import ReplicationPlan

        cfg = small_config()
        page = 0
        plan = ReplicationPlan("read_only", {page: [0, 1, 2, 3]})
        s = MultiGpuSystem(cfg, plan)
        s.access(0, REMOTE_LINE, False)  # maps page 0 at GPU 0 + replicas
        ks = s.access(3, REMOTE_LINE, False)
        assert ks.gpus[3].local_reads == 1
        assert ks.gpus[3].remote_reads == 0
