"""Hypothesis property tests over the full system model.

These drive randomly generated access streams through differently
configured systems and assert conservation laws and invariants the
simulator must uphold regardless of workload.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
)
from repro.numa.system import MultiGpuSystem
from tests.conftest import make_kernel, make_trace, small_config, tiny_rdc_config

# A compact access-stream strategy: (cta, line, is_write) triples.
ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=255),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def run_stream(cfg, accesses, n_kernels=2):
    ctas = [a[0] for a in accesses]
    lines = [a[1] for a in accesses]
    writes = [a[2] for a in accesses]
    kernels = [
        make_kernel(lines, writes=writes, cta_ids=ctas, n_ctas=4, kernel_id=k)
        for k in range(n_kernels)
    ]
    system = MultiGpuSystem(cfg)
    return system, system.run(make_trace(kernels))


class TestConservationLaws:
    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_every_access_is_accounted(self, accesses):
        _, result = run_stream(small_config(), accesses)
        total = result.total(include_warmup=True)
        assert total.accesses == 2 * len(accesses)

    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_demand_split_partitions_memory_accesses(self, accesses):
        """local + remote = accesses that reached the memory system."""
        _, result = run_stream(small_config(), accesses)
        t = result.total(include_warmup=True)
        served_by_memory = (
            t.local_reads + t.local_writes + t.remote_reads + t.remote_writes
        )
        cache_hits = t.l1_hits + t.l2_hits
        # Writes always reach memory accounting (write-through L1), reads
        # are absorbed by cache hits.
        assert served_by_memory + cache_hits >= t.accesses
        assert served_by_memory <= t.accesses

    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_remote_fraction_bounded(self, accesses):
        _, result = run_stream(small_config(), accesses)
        assert 0.0 <= result.remote_fraction <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_link_traffic_iff_remote_accesses(self, accesses):
        _, result = run_stream(small_config(), accesses)
        t = result.total(include_warmup=True)
        link_total = sum(
            sum(sum(row) for row in k.link_bytes) for k in result.kernels
        )
        if t.remote_reads + t.remote_writes == 0:
            assert link_total == 0
        else:
            assert link_total > 0

    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_pages_mapped_equals_touched_pages(self, accesses):
        cfg = small_config()
        system, result = run_stream(cfg, accesses)
        pages = {a[1] // cfg.lines_per_page for a in accesses}
        assert sum(result.pages_mapped) == len(pages)


class TestRdcInvariants:
    @settings(max_examples=25, deadline=None)
    @given(ACCESSES)
    def test_rdc_only_holds_remote_lines(self, accesses):
        cfg = tiny_rdc_config(coherence=COHERENCE_NONE)
        system, _ = run_stream(cfg, accesses)
        for node in system.nodes:
            rdc = node.carve.rdc
            for s in range(rdc.n_sets):
                line = int(rdc._tags[s])
                if line < 0:
                    continue
                page = line // system.amap.lines_per_page
                assert system.pagetable.peek_home(page) != node.gpu_id

    @settings(max_examples=20, deadline=None)
    @given(ACCESSES)
    def test_write_through_rdc_never_dirty(self, accesses):
        cfg = tiny_rdc_config(coherence=COHERENCE_HARDWARE)
        system, _ = run_stream(cfg, accesses)
        for node in system.nodes:
            assert not any(node.carve.rdc._dirty)

    @settings(max_examples=20, deadline=None)
    @given(ACCESSES)
    def test_swc_rdc_empty_after_final_boundary(self, accesses):
        cfg = tiny_rdc_config(coherence=COHERENCE_SOFTWARE)
        system, _ = run_stream(cfg, accesses)
        for node in system.nodes:
            assert node.carve.rdc.occupancy() == 0.0


class TestCacheInvariants:
    @settings(max_examples=20, deadline=None)
    @given(ACCESSES)
    def test_l2_dirty_lines_are_locally_homed(self, accesses):
        cfg = small_config()
        ctas = [a[0] for a in accesses]
        lines = [a[1] for a in accesses]
        writes = [a[2] for a in accesses]
        system = MultiGpuSystem(cfg)
        k = make_kernel(lines, writes=writes, cta_ids=ctas, n_ctas=4)
        # Drive the accesses without the end-of-kernel invalidation so the
        # caches stay populated for inspection.
        for gpu, ls, ws in __import__(
            "repro.gpu.scheduler", fromlist=["schedule_kernel"]
        ).schedule_kernel(k, cfg):
            from repro.perf.stats import KernelStats

            ks = KernelStats(0, cfg.n_gpus, 1.0, 32.0)
            system._process_chunk(gpu, ls, ws, ks)
        for node in system.nodes:
            for s in node.l2._sets:
                for line, state in s.items():
                    if state.dirty:
                        page = line // system.amap.lines_per_page
                        assert system.pagetable.peek_home(page) == node.gpu_id

    @settings(max_examples=20, deadline=None)
    @given(ACCESSES)
    def test_deterministic_given_stream(self, accesses):
        cfg = small_config()
        _, r1 = run_stream(cfg, accesses)
        _, r2 = run_stream(cfg, accesses)
        t1, t2 = r1.total(include_warmup=True), r2.total(include_warmup=True)
        assert t1 == t2


class TestTimingProperties:
    @settings(max_examples=20, deadline=None)
    @given(ACCESSES)
    def test_time_is_finite_and_positive(self, accesses):
        from repro.perf.model import PerformanceModel

        cfg = small_config()
        _, result = run_stream(cfg, accesses)
        t = PerformanceModel(cfg).total_time_s(result)
        assert np.isfinite(t) and t > 0
