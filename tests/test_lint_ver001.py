"""VER001 — CODE_VERSION bump gate, exercised on throwaway git repos.

Builds a tiny repository with the result-affecting layout
(``src/repro/core/...`` + ``src/repro/sim/cache.py``), then simulates
the PR diff VER001 gates in CI: a core change without a
``CODE_VERSION`` bump must produce a finding; the same change plus the
bump must pass; a bogus base ref must be a configuration error
(exit 2), never a silent pass.
"""

import shutil
import subprocess

import pytest

from repro.lint.engine import run_lint
from repro.lint.findings import LintConfigError
from repro.lint.versioning import CodeVersionRule

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not available"
)

BASE_REF = "lint-base"


def git(repo, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=repo, check=True, capture_output=True,
    )


@pytest.fixture
def repo(tmp_path):
    """A git repo at the base revision, checked out on a work branch."""
    git(tmp_path, "init", "-q", "-b", BASE_REF)
    core = tmp_path / "src" / "repro" / "core"
    sim = tmp_path / "src" / "repro" / "sim"
    core.mkdir(parents=True)
    sim.mkdir(parents=True)
    (core / "imst.py").write_text("X = 1\n")
    (sim / "cache.py").write_text("CODE_VERSION = 10\n")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "base")
    git(tmp_path, "checkout", "-qb", "work")
    return tmp_path


def lint(repo):
    return run_lint(
        repo / "src" / "repro",
        select=["VER001"],
        repo_root=repo,
        ver_base=BASE_REF,
    )


class TestCodeVersionGate:
    def test_clean_when_nothing_changed(self, repo):
        result = lint(repo)
        assert result.exit_code == 0
        assert result.findings == []

    def test_fires_on_core_change_without_bump(self, repo):
        (repo / "src" / "repro" / "core" / "imst.py").write_text("X = 2\n")
        git(repo, "commit", "-qam", "core change")
        result = lint(repo)
        assert result.exit_code == 1
        (finding,) = result.findings
        assert finding.rule == "VER001"
        assert "src/repro/core/imst.py" in finding.message
        assert "CODE_VERSION" in finding.message

    def test_fires_on_uncommitted_core_change(self, repo):
        # The worktree diff counts too, not just committed changes.
        (repo / "src" / "repro" / "core" / "imst.py").write_text("X = 2\n")
        assert lint(repo).exit_code == 1

    def test_clean_with_version_bump(self, repo):
        (repo / "src" / "repro" / "core" / "imst.py").write_text("X = 2\n")
        (repo / "src" / "repro" / "sim" / "cache.py").write_text(
            "CODE_VERSION = 11\n"
        )
        git(repo, "commit", "-qam", "core change + bump")
        assert lint(repo).exit_code == 0

    def test_clean_on_non_result_affecting_change(self, repo):
        tools = repo / "tools"
        tools.mkdir()
        (tools / "helper.py").write_text("Y = 1\n")
        git(repo, "add", "-A")
        git(repo, "commit", "-qam", "tooling only")
        assert lint(repo).exit_code == 0

    def test_bad_base_ref_is_config_error(self, repo):
        with pytest.raises(LintConfigError):
            run_lint(
                repo / "src" / "repro",
                select=["VER001"],
                repo_root=repo,
                ver_base="no-such-ref",
            )

    def test_rule_is_not_in_the_default_selection(self):
        from repro.lint.engine import DEFAULT_RULE_IDS

        assert CodeVersionRule.id not in DEFAULT_RULE_IDS


class TestNoticeSkip:
    """Without an explicit --ver-base, VER001 degrades to a notice."""

    def test_no_git_repo_skips_with_notice(self, tmp_path):
        # A bare directory tree, no `git init`: the rule cannot run,
        # but that is a local-environment fact, not a lint failure.
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "imst.py").write_text("X = 1\n")
        result = run_lint(
            tmp_path / "src" / "repro",
            select=["VER001"],
            repo_root=tmp_path,
            ver_base=None,
        )
        assert result.exit_code == 0
        assert result.findings == []
        assert any("VER001 skipped" in n for n in result.notices)

    def test_missing_default_refs_skip_with_notice(self, repo):
        # A real repo whose refs are neither origin/main nor main:
        # unset base -> try both, then notice instead of exit 2.
        result = run_lint(
            repo / "src" / "repro",
            select=["VER001"],
            repo_root=repo,
            ver_base=None,
        )
        assert result.exit_code == 0
        assert any("VER001 skipped" in n for n in result.notices)

    def test_explicit_bad_ref_still_exits_two(self, tmp_path):
        # Explicitly requesting a base in a non-repo stays a hard
        # configuration error — CI must never silently skip the gate.
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text("X = 1\n")
        with pytest.raises(LintConfigError):
            run_lint(
                pkg,
                select=["VER001"],
                repo_root=tmp_path,
                ver_base="main",
            )


class TestScopeDrivenPrefixes:
    def test_committed_scope_widens_the_gate(self, repo):
        # With a committed lint-scope.json listing memory/ as
        # result-affecting, a memory/ change without a bump fires even
        # though the legacy hard-coded list never covered memory/.
        import json

        (repo / "lint-scope.json").write_text(json.dumps({
            "version": 1,
            "package": "repro",
            "roots": [], "exclude": [], "modules": {},
            "result_affecting": ["src/repro/memory/"],
        }))
        memory = repo / "src" / "repro" / "memory"
        memory.mkdir()
        (memory / "cache.py").write_text("Z = 1\n")
        git(repo, "add", "-A")
        git(repo, "commit", "-qam", "memory change")
        result = run_lint(
            repo / "src" / "repro",
            select=["VER001"],
            repo_root=repo,
            ver_base=BASE_REF,
        )
        assert result.exit_code == 1
        (finding,) = result.findings
        assert "src/repro/memory/cache.py" in finding.message
