"""Tests for the bottleneck timing model."""

import pytest

from repro.config import LINE_BYTES
from repro.perf.model import PerformanceModel, geometric_mean, speedup
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult
from tests.conftest import small_config


def kernel_with(gpu0: GpuKernelStats, concurrency=32.0, n_gpus=4) -> KernelStats:
    ks = KernelStats(0, n_gpus, 1.0, concurrency)
    ks.gpus[0] = gpu0
    return ks


class TestKernelTime:
    def test_compute_bound(self):
        m = PerformanceModel(small_config())
        ks = kernel_with(GpuKernelStats(instructions=64e9))
        kt = m.kernel_time(ks)
        assert kt.bottlenecks[0] == "compute"
        assert kt.per_gpu[0] == pytest.approx(1.0)

    def test_local_dram_bound(self):
        m = PerformanceModel(small_config())
        n = 10**9
        st = GpuKernelStats(dram_reads=n, dram_row_hits=n)
        kt = m.kernel_time(kernel_with(st))
        assert kt.bottlenecks[0] == "local_dram"
        assert kt.per_gpu[0] == pytest.approx(n * LINE_BYTES / 1e12)

    def test_link_bound(self):
        m = PerformanceModel(small_config())
        ks = kernel_with(GpuKernelStats())
        ks.link_bytes[0][1] = 64 * 10**9
        kt = m.kernel_time(ks)
        assert kt.bottlenecks[0] == "link"
        assert kt.per_gpu[0] == pytest.approx(1.0)

    def test_latency_bound(self):
        m = PerformanceModel(small_config())
        st = GpuKernelStats(latency_ns=1e15)
        kt = m.kernel_time(kernel_with(st, concurrency=1.0))
        assert kt.bottlenecks[0] == "latency"

    def test_kernel_barrier_takes_slowest_gpu(self):
        m = PerformanceModel(small_config())
        ks = KernelStats(0, 2, 1.0, 32.0)
        ks.gpus[0].instructions = 64e9
        ks.gpus[1].instructions = 128e9
        kt = m.kernel_time(ks)
        assert kt.time >= 2.0

    def test_launch_overhead_scaled(self):
        cfg = small_config()
        m = PerformanceModel(cfg)
        kt = m.kernel_time(kernel_with(GpuKernelStats()))
        assert kt.launch_overhead == pytest.approx(
            cfg.kernel_launch_overhead_s / cfg.scale
        )

    def test_row_misses_reduce_effective_bandwidth(self):
        m = PerformanceModel(small_config())
        n = 10**9
        hits = kernel_with(GpuKernelStats(dram_reads=n, dram_row_hits=n))
        misses = kernel_with(GpuKernelStats(dram_reads=n, dram_row_misses=n))
        assert m.kernel_time(misses).per_gpu[0] > m.kernel_time(hits).per_gpu[0]


class TestRunTime:
    def _run(self, kernels):
        r = RunResult("wl", "cfg", 4)
        r.kernels = kernels
        return r

    def test_total_sums_kernels(self):
        m = PerformanceModel(small_config())
        ks = kernel_with(GpuKernelStats(instructions=64e9))
        ks2 = kernel_with(GpuKernelStats(instructions=64e9))
        ks2.kernel_id = 1
        rt = m.run_time(self._run([ks, ks2]))
        assert rt.total_s == pytest.approx(2.0, rel=1e-3)

    def test_warmup_kernels_not_priced(self):
        m = PerformanceModel(small_config())
        warm = kernel_with(GpuKernelStats(instructions=64e9))
        warm.warmup = True
        main = kernel_with(GpuKernelStats(instructions=64e9))
        rt = m.run_time(self._run([warm, main]))
        assert rt.total_s == pytest.approx(1.0, rel=1e-3)

    def test_bottleneck_histogram(self):
        m = PerformanceModel(small_config())
        ks = kernel_with(GpuKernelStats(instructions=64e9))
        rt = m.run_time(self._run([ks]))
        hist = rt.bottleneck_histogram()
        assert hist["compute"] >= 1


class TestSpeedupHelpers:
    def test_speedup(self):
        cfg = small_config()
        slow = RunResult("wl", "slow", 4)
        fast = RunResult("wl", "fast", 4)
        s1 = kernel_with(GpuKernelStats(instructions=128e9))
        s2 = kernel_with(GpuKernelStats(instructions=64e9))
        slow.kernels, fast.kernels = [s1], [s2]
        assert speedup(slow, fast, cfg) == pytest.approx(2.0, rel=1e-3)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
