"""Test package for the CARVE reproduction."""
