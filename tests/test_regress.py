"""Tests for the two-tier regression checker and the baseline CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.baseline import (
    DETERMINISTIC_KEYS,
    RECORD_KIND,
    SCHEMA_VERSION,
)
from repro.obs.regress import (
    TIER_EXACT,
    RegressionPolicy,
    compare_records,
    summarize_reports,
)


def fake_record(**overrides) -> dict:
    det = {key: 0 for key in DETERMINISTIC_KEYS}
    det.update({
        "kernels": 5,
        "sim.accesses": 100_000,
        "sim.writes": 9_000,
        "remote_fraction": 0.421337,
        "rdc.hit": 4_200,
        "link.bytes": 22,
    })
    rec = {
        "kind": RECORD_KIND,
        "schema_version": SCHEMA_VERSION,
        "system": "carve-hwc",
        "workload": "Lulesh",
        "recorded_at": 0.0,
        "fingerprint": {
            "schema_version": SCHEMA_VERSION,
            "code_version": 10,
            "git_sha": "abc123",
            "python": "3.11",
            "config_hash": "deadbeefdeadbeef",
            "engine": "vectorized",
        },
        "deterministic": det,
        "link_matrix": [[0, 10], [12, 0]],
        "perf": {
            "modelled_total_s": 2.0,
            "wall_s": 0.5,
            "accesses_per_s": 200_000.0,
        },
    }
    rec.update(overrides)
    return rec


class TestExactTier:
    def test_identical_records_pass(self):
        report = compare_records(fake_record(), fake_record())
        assert report.ok
        assert not report.failures()
        assert "ok" in report.render()

    def test_rdc_hit_drift_fails_with_readable_diff(self):
        current = fake_record()
        current["deterministic"]["rdc.hit"] += 1
        report = compare_records(fake_record(), current)
        assert not report.ok
        failed = {f.metric for f in report.failures()}
        assert failed == {"rdc.hit"}
        text = report.render()
        assert "rdc.hit" in text and "FAIL" in text
        assert "4200" in text and "4201" in text

    def test_every_deterministic_key_gates(self):
        for key in DETERMINISTIC_KEYS:
            current = fake_record()
            base_value = current["deterministic"][key]
            current["deterministic"][key] = (
                base_value + 1 if isinstance(base_value, int)
                else base_value + 0.1
            )
            report = compare_records(fake_record(), current)
            assert not report.ok, key
            assert key in {f.metric for f in report.failures()}

    def test_link_matrix_drift_fails(self):
        current = fake_record(link_matrix=[[0, 11], [12, 0]])
        report = compare_records(fake_record(), current)
        assert {f.metric for f in report.failures()} == {"link.matrix"}
        note = report.failures()[0].note
        assert "traffic shape" in note

    def test_config_hash_mismatch_fails(self):
        current = fake_record()
        current["fingerprint"]["config_hash"] = "0000000000000000"
        report = compare_records(fake_record(), current)
        assert "fingerprint.config_hash" in \
            {f.metric for f in report.failures()}

    def test_extra_digest_keys_still_gate(self):
        current = fake_record()
        current["deterministic"]["rdc.stale"] = 7
        report = compare_records(fake_record(), current)
        assert "rdc.stale" in {f.metric for f in report.failures()}


class TestBandTier:
    def test_throughput_regression_fails(self):
        current = fake_record()
        current["perf"]["accesses_per_s"] = 90_000.0  # -55%
        report = compare_records(fake_record(), current)
        assert not report.ok
        assert {f.metric for f in report.failures()} == \
            {"perf.accesses_per_s"}
        assert "perf.accesses_per_s" in report.render()

    def test_throughput_improvement_always_passes(self):
        current = fake_record()
        current["perf"]["accesses_per_s"] = 10 * 200_000.0
        assert compare_records(fake_record(), current).ok

    def test_small_slowdown_within_band_passes(self):
        current = fake_record()
        current["perf"]["accesses_per_s"] = 150_000.0  # -25% < 50%
        assert compare_records(fake_record(), current).ok

    def test_modelled_time_band_is_two_sided(self):
        for direction in (+1, -1):
            current = fake_record()
            current["perf"]["modelled_total_s"] = 2.0 * (1 + direction * 1e-3)
            report = compare_records(fake_record(), current)
            assert {f.metric for f in report.failures()} == \
                {"perf.modelled_total_s"}, direction

    def test_deterministic_only_skips_band(self):
        current = fake_record()
        current["perf"]["accesses_per_s"] = 1.0
        current["perf"]["modelled_total_s"] = 99.0
        policy = RegressionPolicy(deterministic_only=True)
        report = compare_records(fake_record(), current, policy)
        assert report.ok
        assert all(f.tier == TIER_EXACT for f in report.findings)

    def test_custom_wall_epsilon(self):
        current = fake_record()
        current["perf"]["accesses_per_s"] = 150_000.0  # -25%
        policy = RegressionPolicy(wall_epsilon=0.1)
        report = compare_records(fake_record(), current, policy)
        assert not report.ok

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RegressionPolicy(wall_epsilon=-0.1).validate()
        with pytest.raises(ValueError):
            RegressionPolicy(modelled_epsilon=-1.0).validate()


class TestFingerprintNotes:
    def test_engine_drift_is_note_not_failure(self):
        current = fake_record()
        current["fingerprint"]["engine"] = "reference"
        report = compare_records(fake_record(), current)
        assert report.ok
        assert any("engine differs" in n for n in report.notes)

    def test_code_version_drift_noted(self):
        current = fake_record()
        current["fingerprint"]["code_version"] = 11
        report = compare_records(fake_record(), current)
        assert report.ok
        assert any("CODE_VERSION" in n for n in report.notes)


class TestSchemaGuard:
    def test_future_schema_baseline_fails(self):
        future = fake_record(schema_version=SCHEMA_VERSION + 1)
        report = compare_records(future, fake_record())
        assert not report.ok
        assert any(f.metric == "record.baseline" and "newer" in f.note
                   for f in report.findings)

    def test_malformed_current_fails(self):
        report = compare_records(fake_record(), {"kind": "junk"})
        assert not report.ok
        assert any(f.metric == "record.current" for f in report.findings)


class TestSummarizeReports:
    def test_rollup_counts(self):
        bad = fake_record()
        bad["deterministic"]["rdc.hit"] = 1
        reports = [
            compare_records(fake_record(), fake_record()),
            compare_records(fake_record(), bad),
        ]
        text = summarize_reports(reports)
        assert "1/2 point(s) ok, 1 FAILED" in text
        assert "rdc.hit" in text


class TestBaselineParser:
    def test_defaults(self):
        args = build_parser().parse_args(["baseline", "compare"])
        assert args.action == "compare"
        assert args.dir == "baselines"
        assert args.repeats == 2
        assert not args.deterministic_only

    def test_trace_metrics_out_accepted(self):
        args = build_parser().parse_args(
            ["trace", "Lulesh", "--metrics-out", "m.json"]
        )
        assert args.metrics_out == "m.json"

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.out == "report.md"
        assert args.journal is None and args.html is None


@pytest.mark.slow
class TestBaselineCliRoundTrip:
    """record -> compare on an unchanged tree, then seeded perturbations."""

    POINT = ["--systems", "numa-gpu", "--workloads", "Lulesh",
             "--repeats", "1"]

    def _record(self, tmp_path):
        store = tmp_path / "store"
        rc = main(["baseline", "record", "--dir", str(store)] + self.POINT)
        assert rc == 0
        return store

    def test_roundtrip_exits_zero(self, tmp_path):
        store = self._record(tmp_path)
        rc = main(["baseline", "compare", "--dir", str(store)] + self.POINT)
        assert rc == 0

    def test_reference_engine_bit_exact(self, tmp_path):
        store = self._record(tmp_path)
        rc = main([
            "baseline", "compare", "--dir", str(store),
            "--engine", "reference", "--deterministic-only",
        ] + self.POINT)
        assert rc == 0

    def test_injected_counter_drift_fails(self, tmp_path, capsys):
        store = self._record(tmp_path)
        path = store / "numa-gpu" / "Lulesh.json"
        record = json.loads(path.read_text())
        record["deterministic"]["rdc.hit"] += 7
        path.write_text(json.dumps(record))
        report_md = tmp_path / "gate.md"
        rc = main([
            "baseline", "compare", "--dir", str(store),
            "--report", str(report_md),
        ] + self.POINT)
        assert rc == 1
        out = capsys.readouterr().out
        assert "rdc.hit" in out and "FAIL" in out
        md = report_md.read_text()
        assert "rdc.hit" in md and "FAIL" in md and "delta" in md

    def test_injected_throughput_regression_fails(self, tmp_path, capsys):
        store = self._record(tmp_path)
        path = store / "numa-gpu" / "Lulesh.json"
        record = json.loads(path.read_text())
        record["perf"]["accesses_per_s"] *= 1e6  # current can't keep up
        path.write_text(json.dumps(record))
        rc = main(["baseline", "compare", "--dir", str(store)] + self.POINT)
        assert rc == 1
        assert "perf.accesses_per_s" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main([
            "baseline", "compare", "--dir", str(tmp_path / "empty"),
        ] + self.POINT)
        assert rc == 2
        assert "no baseline" in capsys.readouterr().err.lower()

    def test_list_shows_recorded_points(self, tmp_path, capsys):
        store = self._record(tmp_path)
        rc = main(["baseline", "list", "--dir", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "numa-gpu" in out and "Lulesh" in out
