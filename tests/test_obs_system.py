"""Observability vs the simulator: fidelity, alignment, and hooks.

The two load-bearing contracts (see docs/observability.md):

* **Bit-identity** — attaching an :class:`Observability` must not change
  the ``RunResult``, on either execution engine.
* **Alignment** — registry totals must equal the run's own counters,
  remembering that the registry includes warmup kernels
  (``RunResult.total(include_warmup=True)``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_SOFTWARE,
    WRITE_BACK,
)
from repro.numa.replication import ReplicationPlan
from repro.numa.system import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    MultiGpuSystem,
)
from repro.obs import Observability
from repro.obs.events import (
    EVENT_EPOCH_FLUSH,
    EVENT_KERNEL,
    EVENT_MIGRATION,
    EVENT_REPLICATION,
)
from repro.obs.summary import summarize_result
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

from .conftest import make_kernel, make_trace, small_config, tiny_rdc_config


def _small_trace_and_cfg(cfg=None):
    """A short real workload on a small system, warmup included."""
    cfg = cfg or tiny_rdc_config(coherence=COHERENCE_HARDWARE)
    spec = dataclasses.replace(
        get("Lulesh"), n_kernels=3, warmup_kernels=1,
        max_accesses=3000, min_accesses=500,
    )
    return generate_trace(spec, cfg), cfg


def _run(cfg, trace, engine=ENGINE_VECTORIZED, obs=None):
    return MultiGpuSystem(cfg, engine=engine, obs=obs).run(trace)


class TestBitIdentity:
    @pytest.mark.parametrize("engine", [ENGINE_VECTORIZED, ENGINE_REFERENCE])
    def test_observed_run_identical(self, engine):
        trace, cfg = _small_trace_and_cfg()
        bare = _run(cfg, trace, engine)
        observed = _run(cfg, trace, engine, obs=Observability(trace=True))
        assert bare == observed

    def test_baseline_config_identical(self):
        trace, cfg = _small_trace_and_cfg(small_config())
        assert _run(cfg, trace) == _run(cfg, trace, obs=Observability())


class TestAlignment:
    def test_counters_match_run_totals_including_warmup(self):
        trace, cfg = _small_trace_and_cfg()
        obs = Observability()
        result = _run(cfg, trace, obs=obs)
        total = result.total(include_warmup=True)
        r = obs.registry
        assert r.get("sim.accesses").total() == total.accesses
        assert r.get("rdc.hit").total() == total.rdc_hits
        assert r.get("mem.remote.read").total() == total.remote_reads
        assert r.get("coh.invalidate").total() == total.invalidates_sent

    def test_link_bytes_matches_matrices(self):
        trace, cfg = _small_trace_and_cfg()
        obs = Observability()
        result = _run(cfg, trace, obs=obs)
        expected = sum(
            ks.link_bytes[s][d]
            for ks in result.kernels
            for s in range(result.n_gpus)
            for d in range(result.n_gpus)
        )
        assert sum(obs.registry.get("link.bytes").values().values()) \
            == expected

    def test_one_snapshot_per_kernel(self):
        trace, cfg = _small_trace_and_cfg()
        obs = Observability()
        result = _run(cfg, trace, obs=obs)
        snaps = obs.registry.kernel_snapshots
        assert len(snaps) == len(result.kernels)
        per_kernel = [
            sum(s.counters.get("sim.accesses", {}).values()) for s in snaps
        ]
        assert per_kernel == [
            sum(g.accesses for g in ks.gpus) for ks in result.kernels
        ]


class TestHooks:
    def test_migration_counted_and_traced(self):
        cfg = small_config(migration=True, migration_threshold=2)
        lpp = cfg.lines_per_page
        # CTA 0 (GPU 0) touches page 0 first; CTAs on GPU 1 then walk its
        # lines (distinct lines, so caches can't absorb the remote reads).
        lines = [0] + list(range(1, 9))
        cta_ids = [0] + [1] * 8
        trace = make_trace([make_kernel(lines, cta_ids=cta_ids, n_ctas=4,
                                        kernel_id=0)])
        obs = Observability(trace=True)
        result = _run(cfg, trace, obs=obs)
        moved = result.total(include_warmup=True).migrations
        assert moved >= 1
        assert obs.registry.get("mig.page_moves").total() == moved
        kinds = [ev.kind for ev in obs.tracer.events()]
        assert kinds.count(EVENT_MIGRATION) == moved
        assert lpp >= 1  # geometry sanity: lines 0/1 share page 0

    def test_epoch_flush_counted_under_software_coherence(self):
        cfg = tiny_rdc_config(
            coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
        )
        trace, cfg = _small_trace_and_cfg(cfg)
        obs = Observability(trace=True)
        _run(cfg, trace, obs=obs)
        flushed = obs.registry.get("epoch.flush_lines").total()
        flush_events = [
            ev for ev in obs.tracer.events() if ev.kind == EVENT_EPOCH_FLUSH
        ]
        assert flushed == sum(ev.payload["flushed"] for ev in flush_events)

    def test_replication_installs_traced(self):
        cfg = small_config()
        plan = ReplicationPlan(policy="read_only",
                               replica_holders={0: [0, 1, 2, 3]})
        lines = list(range(8))
        trace = make_trace([make_kernel(lines, n_ctas=4, kernel_id=0)])
        obs = Observability(trace=True)
        system = MultiGpuSystem(cfg, plan, obs=obs)
        result = system.run(trace)
        replicated = obs.registry.get("repl.pages").total()
        assert replicated >= 1
        installs = [
            ev for ev in obs.tracer.events() if ev.kind == EVENT_REPLICATION
        ]
        assert sum(len(ev.payload["holders"]) for ev in installs) \
            == replicated
        assert result.total(include_warmup=True).accesses == len(lines)

    def test_kernel_events_bracket_each_kernel(self):
        trace, cfg = _small_trace_and_cfg()
        obs = Observability(trace=True)
        result = _run(cfg, trace, obs=obs)
        kernel_events = [
            ev for ev in obs.tracer.events() if ev.kind == EVENT_KERNEL
        ]
        begins = [e for e in kernel_events if e.payload["phase"] == "begin"]
        ends = [e for e in kernel_events if e.payload["phase"] == "end"]
        assert len(begins) == len(ends) == len(result.kernels)

    def test_end_of_run_gauges(self):
        trace, cfg = _small_trace_and_cfg()
        obs = Observability(trace=True)
        _run(cfg, trace, obs=obs)
        mapped = obs.registry.get("mem.pages_mapped")
        assert sum(mapped.values().values()) > 0
        occ = obs.registry.get("rdc.occupancy")
        assert all(0.0 <= v <= 1.0 for v in occ.values().values())


class TestSummary:
    def test_digest_shape(self):
        trace, cfg = _small_trace_and_cfg()
        result = _run(cfg, trace)
        digest = summarize_result(result)
        assert digest is not None
        total = result.total()
        assert digest["kernels"] == len(result.kernels)
        assert digest["sim.accesses"] == total.accesses
        assert digest["mem.remote.read"] == total.remote_reads
        assert 0.0 <= digest["remote_fraction"] <= 1.0

    def test_non_result_returns_none(self):
        assert summarize_result(None) is None
        assert summarize_result({"not": "a result"}) is None
