"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sim import experiments as E
from repro.sim.runner import KIND_CRASH, FailureReport


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "DOOM"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Lulesh", "--system", "magic"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Lulesh"])
        assert args.system == "carve-hwc"
        assert not args.no_cache

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite", "carve-hwc"])
        assert args.jobs == 1
        assert args.timeout is None
        assert args.retries == 0
        assert args.keep_going
        assert not args.resume
        assert args.journal is None

    def test_suite_flags(self):
        args = build_parser().parse_args([
            "suite", "numa-gpu", "--workloads", "Lulesh", "XSBench",
            "--jobs", "4", "--timeout", "120", "--retries", "2",
            "--fail-fast", "--journal", "/tmp/j.jsonl", "--resume",
        ])
        assert args.workloads == ["Lulesh", "XSBench"]
        assert args.jobs == 4 and args.timeout == 120.0
        assert args.retries == 2
        assert not args.keep_going
        assert args.resume and args.journal == "/tmp/j.jsonl"

    def test_suite_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RandAccess" in out and "rw-shared" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "carve-hwc" in out and "ideal" in out

    def test_sharing(self, capsys):
        assert main(["sharing", "Lulesh"]) == 0
        out = capsys.readouterr().out
        assert "rw-shared" in out
        assert "shared working-set cover" in out

    def test_cache_status(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        assert "cached run(s)" in capsys.readouterr().out

    def test_cache_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "x.pkl").write_bytes(b"x")
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    @pytest.mark.slow
    def test_run_end_to_end(self, capsys):
        # Lulesh is the smallest trace in the suite; no-cache keeps the
        # test hermetic.
        assert main(["run", "Lulesh", "--system", "numa-gpu",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Lulesh on numa-gpu" in out
        assert "demand access mix" in out


class TestExitStatus:
    def test_suite_with_failures_exits_1(self, capsys, monkeypatch):
        def fake_run_suite(config_name, **kwargs):
            run = E.SuiteRun(config_name=config_name, config=None)
            run.failures["Lulesh"] = FailureReport(
                key=f"{config_name}/Lulesh", kind=KIND_CRASH,
                exception_type="WorkerCrash",
                message="worker died without a result (killed by signal 9)",
                traceback="", config_hash="deadbeef", attempts=2,
                elapsed_s=1.5,
            )
            return run

        monkeypatch.setattr(E, "run_suite", fake_run_suite)
        rc = main(["suite", "carve-hwc", "--workloads", "Lulesh"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "crash x2" in captured.out
        assert "WorkerCrash" in captured.err
        assert "--resume" in captured.err

    def test_suite_all_ok_exits_0(self, capsys, monkeypatch):
        class FakeRun:
            results = {"Lulesh": object()}
            failures = {}
            cancelled = []
            ok = True

            def time_s(self, abbr):
                return 1.25

        monkeypatch.setattr(E, "run_suite", lambda *a, **k: FakeRun())
        assert main(["suite", "carve-hwc", "--workloads", "Lulesh"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_configuration_exits_2(self, capsys):
        # A negative RDC size survives argument parsing but fails
        # SystemConfig.validate() at the experiments entry point.
        rc = main(["run", "Lulesh", "--rdc-gb", "-1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "invalid configuration" in err
