"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "DOOM"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Lulesh", "--system", "magic"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Lulesh"])
        assert args.system == "carve-hwc"
        assert not args.no_cache


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RandAccess" in out and "rw-shared" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "carve-hwc" in out and "ideal" in out

    def test_sharing(self, capsys):
        assert main(["sharing", "Lulesh"]) == 0
        out = capsys.readouterr().out
        assert "rw-shared" in out
        assert "shared working-set cover" in out

    def test_cache_status(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        assert "cached run(s)" in capsys.readouterr().out

    def test_cache_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "x.pkl").write_bytes(b"x")
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    @pytest.mark.slow
    def test_run_end_to_end(self, capsys):
        # Lulesh is the smallest trace in the suite; no-cache keeps the
        # test hermetic.
        assert main(["run", "Lulesh", "--system", "numa-gpu",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Lulesh on numa-gpu" in out
        assert "demand access mix" in out
