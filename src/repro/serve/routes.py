"""The HTTP route registry of ``repro serve`` — a documented contract.

Every endpoint the service exposes is declared here, once, as a
:class:`RouteSpec`.  ``docs/serve.md`` is the human-readable mirror of
this table and ``tools/check_docs.py`` keeps the two in lockstep (the
same scheme as the metric contract in :mod:`repro.obs.metrics`): a
route added here without a doc row — or referenced in docs without a
spec here — fails CI.

Endpoint patterns are **stable contracts**.  Renaming one breaks every
client, script, and doc that refers to it; add a new route and
deprecate the old one instead.

This module is deliberately dependency-free (no simulator imports):
the docs checker runs in a CI job with no third-party packages
installed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

#: Placeholder segments (``<id>``) match one non-empty path segment.
_PLACEHOLDER_RE = re.compile(r"<([a-z_]+)>")


@dataclass(frozen=True)
class RouteSpec:
    """The declared identity of one endpoint — the documented contract.

    ``pattern`` uses ``<name>`` placeholders for path parameters
    (``/jobs/<id>/result``); ``name`` keys the handler lookup in
    :mod:`repro.serve.service`; ``description`` is mirrored into
    ``docs/serve.md``.
    """

    method: str
    pattern: str
    name: str
    description: str

    def rendered(self) -> str:
        """The doc-facing form: ``"GET /jobs/<id>/result"``."""
        return f"{self.method} {self.pattern}"

    def regex(self) -> re.Pattern:
        parts = _PLACEHOLDER_RE.sub(
            lambda m: f"(?P<{m.group(1)}>[^/]+)", self.pattern
        )
        return re.compile(f"^{parts}$")


#: The full, ordered route contract.  docs/serve.md mirrors this table.
ROUTES: tuple = (
    RouteSpec("POST", "/jobs", "submit",
              "Submit a suite config; returns a job id (dedup-aware)."),
    RouteSpec("GET", "/jobs", "list_jobs",
              "List every job this service instance knows about."),
    RouteSpec("GET", "/jobs/<id>", "job_status",
              "Job status: lifecycle state, dedup disposition, failure "
              "reports."),
    RouteSpec("GET", "/jobs/<id>/result", "job_result",
              "The completed job's result payload (per-workload digest "
              "+ times)."),
    RouteSpec("GET", "/jobs/<id>/report", "job_report",
              "The HTML dashboard rendered from the job's execution "
              "journal."),
    RouteSpec("GET", "/jobs/<id>/events", "job_events",
              "Long-poll stream of job lifecycle and per-point "
              "completion events."),
    RouteSpec("GET", "/jobs/<id>/trace", "job_trace",
              "The assembled Perfetto trace_event timeline of the "
              "job's execution."),
    RouteSpec("GET", "/healthz", "healthz",
              "Liveness + queue occupancy snapshot."),
    RouteSpec("GET", "/metricsz", "metricsz",
              "JSON snapshot of the service's metric registry."),
)

#: Every contracted endpoint in doc-rendered form.
ROUTE_NAMES = frozenset(spec.rendered() for spec in ROUTES)


def match_route(method: str, path: str) -> Optional[tuple]:
    """``(spec, path-params)`` for a request line, or ``None``.

    A path that matches some route's pattern under a *different* method
    still returns ``None``; the server turns that into 405 vs 404 by
    consulting :func:`methods_for`.
    """
    for spec in ROUTES:
        if spec.method != method:
            continue
        m = spec.regex().match(path)
        if m:
            return spec, m.groupdict()
    return None


def methods_for(path: str) -> list[str]:
    """Methods under which *path* would match any route (405 support)."""
    return sorted({
        spec.method for spec in ROUTES if spec.regex().match(path)
    })


__all__ = [
    "ROUTES",
    "ROUTE_NAMES",
    "RouteSpec",
    "match_route",
    "methods_for",
]
