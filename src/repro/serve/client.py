"""Blocking HTTP client for ``repro serve`` (stdlib ``http.client``).

The tests, the load bench, and the CI end-to-end driver all talk to the
service through this helper, so the wire contract documented in
``docs/serve.md`` is exercised by every consumer the repo ships.

Every call returns a :class:`ServeResponse` — status code plus decoded
body — and raises nothing on 4xx/5xx; callers assert on ``status``
(backpressure, 429, is an *expected* answer, not an exception).
"""

from __future__ import annotations

import http.client
import json

# Wall-clock reads here time out client-side polling of a live server —
# service telemetry, never a simulation input.  DET001-allowlisted in
# repro/lint/rules.py.
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange: status, headers, and the decoded body."""

    status: int
    headers: dict
    #: Decoded JSON for ``application/json`` responses, else raw text.
    body: object

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __getitem__(self, key):
        return self.body[key]


class ServeClient:
    """A thin, connection-per-request client for one service instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw exchange ----------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> ServeResponse:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            else:
                decoded = raw.decode("utf-8", errors="replace")
            return ServeResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.getheaders()},
                body=decoded,
            )
        finally:
            conn.close()

    # -- endpoint wrappers (one per route in repro.serve.routes) ---------

    def submit(self, system: str, workloads=None, **kwargs
               ) -> ServeResponse:
        """``POST /jobs``; extra kwargs pass through to the request body
        (rdc_gb, use_cache, timeout_s, retries)."""
        payload = {"system": system, **kwargs}
        if workloads is not None:
            payload["workloads"] = list(workloads)
        return self.request("POST", "/jobs", payload)

    def jobs(self) -> ServeResponse:
        return self.request("GET", "/jobs")

    def job(self, job_id: str) -> ServeResponse:
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> ServeResponse:
        return self.request("GET", f"/jobs/{job_id}/result")

    def report(self, job_id: str) -> ServeResponse:
        return self.request("GET", f"/jobs/{job_id}/report")

    def events(self, job_id: str, since: int = 0,
               wait: float = 0.0) -> ServeResponse:
        """``GET /jobs/<id>/events`` — long-poll when *wait* > 0."""
        query = f"since={since}"
        if wait > 0:
            query += f"&wait={wait}"
        return self.request("GET", f"/jobs/{job_id}/events?{query}")

    def trace(self, job_id: str) -> ServeResponse:
        """``GET /jobs/<id>/trace`` — the assembled Perfetto document."""
        return self.request("GET", f"/jobs/{job_id}/trace")

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metricsz(self) -> ServeResponse:
        return self.request("GET", "/metricsz")

    # -- conveniences ----------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.1) -> ServeResponse:
        """Poll ``GET /jobs/<id>`` until the job is terminal.

        Returns the final status response; raises :class:`TimeoutError`
        if the job is still live when *timeout* expires.
        """
        deadline = time.monotonic() + timeout
        while True:
            response = self.job(job_id)
            if response.status == 200 and response["state"] in (
                    "done", "failed", "cancelled"):
                return response
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s "
                    f"(last: {response.body!r})"
                )
            time.sleep(poll_s)


__all__ = ["ServeClient", "ServeResponse"]
