"""The HTTP frontend of ``repro serve`` — stdlib asyncio, no framework.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`:
parse one request, dispatch through the route registry
(:mod:`repro.serve.routes`), write one response, close.  Every response
body is JSON except the per-job HTML report.  The wire contract —
status codes, headers, schemas — is documented in ``docs/serve.md``.

Backpressure is explicit: when the submission queue is full, ``POST
/jobs`` answers **429** with a ``Retry-After`` header instead of
buffering unboundedly; during shutdown it answers **503** while
in-flight work drains.

:class:`ThreadedServer` runs the whole service inside a background
thread with its own event loop — the harness tests and the load bench
drive a real socket without managing asyncio themselves.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import threading
import urllib.parse
from pathlib import Path
from typing import Optional

from repro.obs.metrics import default_registry
from repro.serve.jobs import (
    DONE,
    FAILED,
    JobRequest,
    JobService,
    QueueFullError,
    RequestError,
    ShuttingDownError,
)
from repro.serve.routes import match_route, methods_for
from repro.serve.store import ResultStore

#: Largest accepted request body; a suite config is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20

#: Ceiling on one ``GET /jobs/<id>/events`` long-poll wait, seconds.
#: Clients re-poll with the returned ``next`` cursor; capping the wait
#: bounds how long a dead client can hold a connection open.
MAX_EVENT_WAIT_S = 30.0

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeApp:
    """Route handlers bound to one :class:`JobService` + store."""

    def __init__(self, service: JobService):
        self.service = service

    # Handlers return (status, headers-dict, body-bytes-or-obj).  A dict
    # or list body is JSON-encoded; bytes pass through (report HTML).

    def submit(self, params, body):
        try:
            request = JobRequest.from_payload(body)
            job, disposition = self.service.submit(request)
        except RequestError as exc:
            return 400, {}, {"error": str(exc)}
        except QueueFullError as exc:
            return (429,
                    {"Retry-After": str(self.service.retry_after_s)},
                    {"error": str(exc),
                     "retry_after_s": self.service.retry_after_s})
        except ShuttingDownError as exc:
            return 503, {}, {"error": str(exc)}
        status = 200 if disposition != "new" else 201
        return status, {}, {
            "id": job.id,
            "key": job.key,
            "state": job.state,
            "dedup": disposition,
        }

    def list_jobs(self, params, body):
        return 200, {}, {
            "jobs": [j.status_payload() for j in self.service.jobs()],
            "queue_depth": self.service.queue_size(),
        }

    def job_status(self, params, body):
        job = self.service.get(params["id"])
        if job is None:
            return 404, {}, {"error": f"no such job {params['id']!r}"}
        return 200, {}, job.status_payload()

    def job_result(self, params, body):
        job = self.service.get(params["id"])
        if job is None:
            return 404, {}, {"error": f"no such job {params['id']!r}"}
        if job.state not in (DONE, FAILED) or job.result is None:
            return 409, {}, {
                "error": f"job {job.id} has no result yet "
                         f"(state: {job.state})",
                "state": job.state,
            }
        return 200, {}, job.result

    def job_report(self, params, body):
        job = self.service.get(params["id"])
        if job is None:
            return 404, {}, {"error": f"no such job {params['id']!r}"}
        journal = self.service.store.journal_path(job.key)
        if not job.terminal or not journal.exists():
            return 409, {}, {
                "error": f"job {job.id} has no report yet "
                         f"(state: {job.state})",
                "state": job.state,
            }
        # Imported lazily: report rendering is the one handler that
        # needs the analysis stack, and it only runs on demand.
        from repro.obs.report import build_report, markdown_to_html

        md = build_report(
            journal_paths=(journal,),
            title=f"repro serve · {job.id} · {job.request.system}",
        )
        html = markdown_to_html(
            md, title=f"repro serve · {job.id}"
        )
        return 200, {"Content-Type": "text/html; charset=utf-8"}, \
            html.encode("utf-8")

    async def job_events(self, params, body):
        """Long-poll event stream (docs/tracing.md documents a session).

        Query parameters: ``since`` (last seq already seen, default 0)
        and ``wait`` (seconds to park when nothing is fresh, default 0,
        capped at :data:`MAX_EVENT_WAIT_S`).  The response carries a
        ``next`` cursor to pass as the following ``since``.
        """
        job = self.service.get(params["id"])
        if job is None:
            return 404, {}, {"error": f"no such job {params['id']!r}"}
        try:
            since = int(params.get("since", 0))
            wait_s = float(params.get("wait", 0.0))
        except (TypeError, ValueError):
            return 400, {}, {
                "error": "since/wait must be numeric query parameters"
            }
        wait_s = max(0.0, min(wait_s, MAX_EVENT_WAIT_S))
        events = await self.service.wait_events(job, since=since,
                                                timeout_s=wait_s)
        next_seq = events[-1]["seq"] if events else since
        return 200, {}, {
            "id": job.id,
            "state": job.state,
            "trace_id": job.trace_id,
            "next": next_seq,
            "events": events,
        }

    def job_trace(self, params, body):
        job = self.service.get(params["id"])
        if job is None:
            return 404, {}, {"error": f"no such job {params['id']!r}"}
        journal = self.service.store.journal_path(job.key)
        if not job.terminal or not journal.exists():
            return 409, {}, {
                "error": f"job {job.id} has no trace yet "
                         f"(state: {job.state})",
                "state": job.state,
            }
        # Lazy import, same rationale as job_report: assembly pulls in
        # the analysis stack and only runs on demand.
        from repro.obs.assemble import assemble_trace

        doc = assemble_trace(
            journal,
            title=f"repro serve · {job.id} · {job.request.system}",
            trace_id=job.trace_id,
            serve_events=job.events,
        )
        return 200, {}, doc

    def healthz(self, params, body):
        return 200, {}, {
            "ok": True,
            "accepting": self.service.accepting,
            "queue_depth": self.service.queue_size(),
            "queue_capacity": self.service.queue_depth,
            "jobs": len(self.service.jobs()),
        }

    def metricsz(self, params, body):
        registry = self.service.registry
        if registry is None:
            return 200, {}, {}
        return 200, {}, registry.snapshot()


async def handle_connection(app: ServeApp, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    try:
        status, headers, body = await _handle_request(app, reader)
    except Exception as exc:  # defensive: a handler bug must not kill the loop
        status, headers, body = 500, {}, {
            "error": f"{type(exc).__name__}: {exc}"
        }
    try:
        _write_response(writer, status, headers, body)
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _handle_request(app: ServeApp, reader: asyncio.StreamReader):
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        return 400, {}, {"error": "empty request"}
    parts = request_line.split()
    if len(parts) != 3:
        return 400, {}, {"error": f"malformed request line: "
                                  f"{request_line!r}"}
    method, target, _version = parts
    path, _, query = target.partition("?")

    content_length = 0
    while True:
        line = (await reader.readline()).decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return 400, {}, {"error": "bad Content-Length"}
    if content_length > MAX_BODY_BYTES:
        return 413, {}, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}

    body_obj = None
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body_obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, {"error": f"request body is not valid JSON: "
                                      f"{exc}"}

    matched = match_route(method, path)
    if matched is None:
        allowed = methods_for(path)
        if allowed:
            return (405, {"Allow": ", ".join(allowed)},
                    {"error": f"{method} not allowed on {path}; "
                              f"allowed: {', '.join(allowed)}"})
        return 404, {}, {"error": f"no route for {method} {path}"}
    spec, params = matched
    # Query parameters merge under the path parameters (a path segment
    # always wins over a same-named query key).
    for key, value in urllib.parse.parse_qsl(query):
        params.setdefault(key, value)
    handler = getattr(app, spec.name)
    result = handler(params, body_obj)
    if inspect.isawaitable(result):  # long-poll handlers are async
        result = await result
    return result


def _write_response(writer: asyncio.StreamWriter, status: int,
                    headers: dict, body) -> None:
    if isinstance(body, (dict, list)):
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        headers.setdefault("Content-Type", "application/json")
    else:
        payload = body if isinstance(body, bytes) else str(body).encode()
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    headers.setdefault("Content-Length", str(len(payload)))
    headers.setdefault("Connection", "close")
    head.extend(f"{k}: {v}" for k, v in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(payload)


async def serve(host: str, port: int, *, store_dir, pool_jobs: int = 2,
                queue_depth: int = 8, registry=None,
                ready: Optional[threading.Event] = None,
                shutdown: Optional[asyncio.Event] = None,
                bound_port: Optional[list] = None,
                store_max_bytes: Optional[int] = None,
                pool_pin: bool = False) -> None:
    """Run the service until *shutdown* is set (or forever).

    *ready*/*bound_port* let a launcher learn the ephemeral port when
    binding port 0 (tests, the bench harness).  *store_max_bytes*
    bounds the result store with LRU eviction; *pool_pin* NUMA-pins
    the simulator workers.
    """
    if registry is None:
        registry = default_registry()
    store = ResultStore(Path(store_dir), registry=registry,
                        max_bytes=store_max_bytes)
    service = JobService(store, pool_jobs=pool_jobs,
                         queue_depth=queue_depth, registry=registry,
                         pool_pin=pool_pin)
    app = ServeApp(service)
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: handle_connection(app, r, w), host, port
    )
    if bound_port is not None:
        bound_port.append(server.sockets[0].getsockname()[1])
    if ready is not None:
        ready.set()
    try:
        if shutdown is None:
            async with server:
                await server.serve_forever()
        else:
            async with server:
                await shutdown.wait()
    finally:
        # Graceful drain: stop accepting, finish the running job,
        # cancel the queue — then the sockets go away.
        await service.stop()
        server.close()
        await server.wait_closed()


class ThreadedServer:
    """The service on a background thread — for tests and the bench.

    Binds an ephemeral port by default; ``stop()`` performs the same
    graceful drain as Ctrl-C on the CLI path.
    """

    def __init__(self, store_dir, *, host: str = "127.0.0.1",
                 port: int = 0, pool_jobs: int = 1, queue_depth: int = 8,
                 registry=None, store_max_bytes: Optional[int] = None,
                 pool_pin: bool = False):
        self.store_dir = Path(store_dir)
        self.host = host
        self.registry = registry if registry is not None \
            else default_registry()
        self._requested_port = port
        self._pool_jobs = pool_jobs
        self._queue_depth = queue_depth
        self._store_max_bytes = store_max_bytes
        self._pool_pin = pool_pin
        self._ready = threading.Event()
        self._bound: list = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    def __enter__(self) -> "ThreadedServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self, timeout: float = 30.0) -> None:
        def _run():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            self._shutdown = asyncio.Event()
            try:
                self._loop.run_until_complete(serve(
                    self.host, self._requested_port,
                    store_dir=self.store_dir,
                    pool_jobs=self._pool_jobs,
                    queue_depth=self._queue_depth,
                    registry=self.registry,
                    ready=self._ready,
                    shutdown=self._shutdown,
                    bound_port=self._bound,
                    store_max_bytes=self._store_max_bytes,
                    pool_pin=self._pool_pin,
                ))
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("repro serve failed to start "
                               f"within {timeout}s")
        self.port = self._bound[0]

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("repro serve did not shut down "
                               f"within {timeout}s")
        self._thread = None


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_EVENT_WAIT_S",
    "ServeApp",
    "ThreadedServer",
    "serve",
]
