"""Job model and asyncio execution fabric for ``repro serve``.

The service separates four concerns the batch CLI fuses together:

* **request** — :class:`JobRequest`, the validated, immutable statement
  of *what* to run (suite config + workloads + runner knobs).  Its
  :meth:`~JobRequest.cas_key` is the content address of the answer.
* **job** — :class:`Job`, one request's trip through the lifecycle
  state machine ``queued → running → done | failed | cancelled``.
* **execution** — :func:`execute_request`, a plain blocking function
  that drives :func:`repro.sim.experiments.run_suite` on the worker
  pool and shapes the result payload.  It runs on a thread
  (``asyncio.to_thread``) so the event loop keeps serving status
  requests while the simulator grinds.
* **scheduling** — :class:`JobService`, the asyncio manager: a bounded
  submission queue (explicit backpressure), dedup against in-flight
  jobs (coalescing) and against the CAS store (cache hits), a single
  executor draining the queue, and graceful shutdown that finishes the
  running job and cancels the rest.

Failed jobs are **never** written to the CAS: a failure is a property
of the attempt (timeout, crash, flaky machine), not of the config, so
resubmitting the same config after a failure re-runs it.
"""

from __future__ import annotations

import asyncio
import functools

# Wall-clock reads in this module are service telemetry (job latency,
# timestamps shown to clients) — they never feed simulation results.
# DET001-allowlisted in repro/lint/rules.py with this justification.
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.baseline import environment_fingerprint
from repro.obs.summary import summarize_result
from repro.obs.trace import TraceContext
from repro.serve.store import ResultStore, cas_key
from repro.sim.cache import CODE_VERSION
from repro.sim.experiments import GB, config_for, experiment_configs, run_suite
from repro.sim.runner import RunnerPolicy, config_hash
from repro.workloads import suite

# Lifecycle states (docs/serve.md documents the full state machine).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

# Dedup dispositions reported back to the submitter.
DISP_NEW = "new"
DISP_COALESCED = "coalesced"
DISP_CACHED = "cached"


class RequestError(ValueError):
    """A submission payload that fails validation (HTTP 400)."""


class QueueFullError(RuntimeError):
    """The submission queue is at capacity (HTTP 429)."""


class ShuttingDownError(RuntimeError):
    """The service no longer accepts submissions (HTTP 503)."""


@dataclass(frozen=True)
class JobRequest:
    """The validated, immutable description of one suite run."""

    system: str
    workloads: tuple
    rdc_gb: float = 2.0
    use_cache: bool = True
    timeout_s: Optional[float] = None
    retries: int = 0

    @classmethod
    def from_payload(cls, payload) -> "JobRequest":
        """Build a request from a decoded JSON body, or raise
        :class:`RequestError` naming the offending field."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        known = {"system", "workloads", "rdc_gb", "use_cache",
                 "timeout_s", "retries"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestError(f"unknown field(s): {', '.join(unknown)}")

        system = payload.get("system")
        valid_systems = sorted(experiment_configs())
        if system not in valid_systems:
            raise RequestError(
                f"system: expected one of {valid_systems}, got {system!r}"
            )

        workloads = payload.get("workloads")
        if workloads is None:
            workloads = list(suite.all_abbrs())
        if (not isinstance(workloads, (list, tuple)) or not workloads
                or not all(isinstance(w, str) for w in workloads)):
            raise RequestError(
                "workloads: expected a non-empty list of workload "
                "abbreviations"
            )
        bad = sorted(set(workloads) - set(suite.all_abbrs()))
        if bad:
            raise RequestError(
                f"workloads: unknown abbreviation(s) {', '.join(bad)}"
            )

        rdc_gb = payload.get("rdc_gb", 2.0)
        if not isinstance(rdc_gb, (int, float)) or isinstance(rdc_gb, bool) \
                or rdc_gb <= 0:
            raise RequestError(f"rdc_gb: expected a positive number, "
                               f"got {rdc_gb!r}")

        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise RequestError(f"use_cache: expected a boolean, "
                               f"got {use_cache!r}")

        timeout_s = payload.get("timeout_s")
        if timeout_s is not None and (
                not isinstance(timeout_s, (int, float))
                or isinstance(timeout_s, bool) or timeout_s <= 0):
            raise RequestError(f"timeout_s: expected a positive number "
                               f"or null, got {timeout_s!r}")

        retries = payload.get("retries", 0)
        if not isinstance(retries, int) or isinstance(retries, bool) \
                or retries < 0:
            raise RequestError(f"retries: expected a non-negative "
                               f"integer, got {retries!r}")

        return cls(system=system, workloads=tuple(workloads),
                   rdc_gb=float(rdc_gb), use_cache=use_cache,
                   timeout_s=timeout_s, retries=retries)

    def cas_key(self) -> str:
        """The content address of this request's result.

        ``config_for`` validates the resolved system config upfront, so
        a request that would fail deep inside the simulator fails here,
        at submission time, instead.
        """
        config = config_for(self.system, rdc_bytes=int(self.rdc_gb * GB))
        return cas_key(
            config_hash=config_hash(config),
            code_version=CODE_VERSION,
            system=self.system,
            workloads=self.workloads,
        )

    def to_payload(self) -> dict:
        return {
            "system": self.system,
            "workloads": list(self.workloads),
            "rdc_gb": self.rdc_gb,
            "use_cache": self.use_cache,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }


@dataclass
class Job:
    """One request's trip through the lifecycle state machine."""

    id: str
    key: str
    request: JobRequest
    state: str = QUEUED
    dedup: str = DISP_NEW
    #: Wall-clock submission time (client-facing telemetry only).
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    #: FailureReport records keyed by workload abbr (state ``failed``),
    #: or a single ``{"kind": "exception", ...}`` under ``_service`` if
    #: the executor itself blew up.
    failures: dict = field(default_factory=dict)
    cancelled_workloads: list = field(default_factory=list)
    error: Optional[str] = None
    #: The job's distributed-trace root (docs/tracing.md); None for
    #: cache hits, which never execute.
    trace: Optional[TraceContext] = None
    #: Lifecycle + per-point events, in emission order, each carrying a
    #: monotonically increasing ``seq`` — the long-poll stream's source.
    events: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.trace_id if self.trace is not None else None

    def status_payload(self) -> dict:
        payload = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "dedup": self.dedup,
            "request": self.request.to_payload(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "trace_id": self.trace_id,
            "events": len(self.events),
        }
        if self.failures:
            payload["failures"] = self.failures
        if self.cancelled_workloads:
            payload["cancelled"] = list(self.cancelled_workloads)
        if self.error:
            payload["error"] = self.error
        return payload


def execute_request(request: JobRequest, journal_path, pool_jobs: int,
                    registry=None, *, trace: Optional[TraceContext] = None,
                    on_event=None, pin: bool = False) -> tuple:
    """Run one request on the worker fabric (blocking).

    Returns ``(payload, suite_run)``: the JSON-safe result payload and
    the raw :class:`~repro.sim.experiments.SuiteRun` (whose ``ok`` flag
    decides done vs failed and whether the payload enters the CAS).
    *trace* roots the batch's distributed trace (docs/tracing.md) and
    *on_event* receives per-point completion events — both purely
    observational; *pin* NUMA-pins the pool workers.
    """
    t0 = time.monotonic()  # service latency only — never a sim input
    policy = RunnerPolicy(
        jobs=pool_jobs,
        pin=pin,
        timeout_s=request.timeout_s,
        retries=request.retries,
        keep_going=True,
        journal_path=journal_path,
    )
    run = run_suite(
        request.system,
        workloads=list(request.workloads),
        rdc_bytes=int(request.rdc_gb * GB),
        use_cache=request.use_cache,
        runner=policy,
        registry=registry,
        trace=trace,
        on_event=on_event,
    )
    elapsed = time.monotonic() - t0
    payload = {
        "system": request.system,
        "workloads": list(request.workloads),
        "rdc_gb": request.rdc_gb,
        "fingerprint": environment_fingerprint(
            config=run.config,
            trace_id=trace.trace_id if trace is not None else None,
        ),
        "ok": run.ok,
        "elapsed_s": elapsed,
        "results": {
            abbr: {
                "time_s": run.time_s(abbr),
                "metrics": summarize_result(result),
            }
            for abbr, result in sorted(run.results.items())
        },
        "failures": {
            abbr: {"key": f"{request.system}/{abbr}", **report.to_record()}
            for abbr, report in sorted(run.failures.items())
        },
        "cancelled": sorted(run.cancelled),
    }
    return payload, run


#: Queue sentinel: tells the executor to exit after the current job.
_SHUTDOWN = object()


class JobService:
    """The asyncio scheduling core behind the HTTP frontend.

    One executor coroutine drains a bounded queue; the simulator runs
    on a worker thread so the event loop stays responsive.  All state
    mutation happens on the event loop thread — handlers and the
    executor never race.
    """

    def __init__(self, store: ResultStore, *, pool_jobs: int = 2,
                 queue_depth: int = 8, registry=None,
                 retry_after_s: int = 5, pool_pin: bool = False):
        self.store = store
        self.pool_jobs = pool_jobs
        self.pool_pin = pool_pin
        self.queue_depth = queue_depth
        self.registry = registry
        self.retry_after_s = retry_after_s
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._jobs: dict = {}        # job id -> Job
        self._active: dict = {}      # cas key -> non-terminal Job
        self._seq = 0
        self._accepting = False
        self._executor_task: Optional[asyncio.Task] = None
        # Long-poll plumbing: one shared Event per job id, swapped out
        # on every emission so all waiters wake (docs/tracing.md).
        self._signals: dict = {}     # job id -> asyncio.Event
        self._stream_clients = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._accepting = True
        self._executor_task = asyncio.create_task(
            self._run_executor(), name="repro-serve-executor"
        )

    async def stop(self) -> None:
        """Graceful shutdown: finish the running job, cancel the queue.

        Ordering matters: close the front door first (new submits get
        503), then mark everything still queued as cancelled, then let
        the executor drain — the sentinel is only read after any job
        already dequeued has finished.
        """
        self._accepting = False
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SHUTDOWN and item.state == QUEUED:
                self._finish(item, CANCELLED)
        await self._queue.put(_SHUTDOWN)
        if self._executor_task is not None:
            await self._executor_task
            self._executor_task = None
        self._set_queue_gauge()

    # -- submission ------------------------------------------------------

    def submit(self, request: JobRequest) -> tuple:
        """Admit one request; returns ``(job, disposition)``.

        The disposition is *this submission's* fate (``new``,
        ``coalesced``, ``cached``) — a coalesced submission returns the
        live job, whose own ``dedup`` records how *it* was created.
        Raises :class:`QueueFullError` (→ 429) or
        :class:`ShuttingDownError` (→ 503).  Dedup order: a live job
        with the same key wins over the CAS (it is fresher — it *is*
        the computation), the CAS wins over a new execution.
        """
        if not self._accepting:
            raise ShuttingDownError("service is shutting down")
        self._count("serve.submitted")
        key = request.cas_key()

        active = self._active.get(key)
        if active is not None and not active.terminal:
            self._count("serve.coalesced")
            self._emit(active, "job.coalesced")
            return active, DISP_COALESCED

        cached = self.store.load(key)
        if cached is not None:
            self._count("serve.deduped")
            job = self._new_job(key, request, dedup=DISP_CACHED)
            job.state = DONE
            job.result = cached
            job.finished_at = job.submitted_at
            self._count_completed(DONE)
            self._emit(job, "job.cached", key=key)
            return job, DISP_CACHED

        job = self._new_job(key, request, dedup=DISP_NEW)
        # New executions get a trace root; its id threads through the
        # runner into every worker span and the journal meta record.
        job.trace = TraceContext.mint()
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            del self._jobs[job.id]
            self._count("serve.rejected")
            raise QueueFullError(
                f"submission queue full ({self.queue_depth} deep); "
                f"retry after {self.retry_after_s}s"
            ) from None
        self._active[key] = job
        self._set_queue_gauge()
        self._emit(job, "job.queued", trace_id=job.trace_id)
        return job, DISP_NEW

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> list:
        return [self._jobs[i] for i in sorted(self._jobs)]

    def queue_size(self) -> int:
        return self._queue.qsize()

    @property
    def accepting(self) -> bool:
        return self._accepting

    # -- executor --------------------------------------------------------

    async def _run_executor(self) -> None:
        while True:
            item = await self._queue.get()
            self._set_queue_gauge()
            if item is _SHUTDOWN:
                return
            if item.state != QUEUED:  # cancelled while queued
                continue
            await self._execute(item)

    async def _execute(self, job: Job) -> None:
        job.state = RUNNING
        job.started_at = time.time()  # client-facing timestamp only
        self._emit(job, "job.running")
        journal_path = self.store.journal_path(job.key)
        loop = asyncio.get_running_loop()

        def forward(event: dict) -> None:
            # Runs on the executor thread: hop back to the loop thread,
            # where all job-state mutation (and waiter wakeup) lives.
            data = dict(event)
            kind = data.pop("kind", "point")
            loop.call_soon_threadsafe(
                functools.partial(self._emit, job, kind, **data)
            )

        try:
            payload, run = await asyncio.to_thread(
                execute_request, job.request, journal_path,
                self.pool_jobs, self.registry,
                trace=job.trace, on_event=forward, pin=self.pool_pin,
            )
        except Exception as exc:  # config/runner blew up, not a point
            job.error = f"{type(exc).__name__}: {exc}"
            job.failures["_service"] = {
                "kind": "exception",
                "exception_type": type(exc).__name__,
                "message": str(exc),
            }
            self._finish(job, FAILED)
            return
        job.result = payload
        job.failures = payload["failures"]
        job.cancelled_workloads = payload["cancelled"]
        if run.ok:
            # Only fully-successful results enter the CAS: a partial
            # result must not shadow a future clean run of the config.
            await asyncio.to_thread(self.store.save, job.key, payload)
            self._finish(job, DONE)
        else:
            self._finish(job, FAILED)

    # -- internals -------------------------------------------------------

    def _new_job(self, key: str, request: JobRequest, *,
                 dedup: str) -> Job:
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:04d}-{key[:8]}",
            key=key,
            request=request,
            dedup=dedup,
            submitted_at=time.time(),  # client-facing timestamp only
        )
        self._jobs[job.id] = job
        return job

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()  # client-facing timestamp only
        if self._active.get(job.key) is job:
            del self._active[job.key]
        self._count_completed(state)
        if job.started_at is not None and state in (DONE, FAILED):
            self._observe_latency(job.finished_at - job.started_at)
        self._emit(job, f"job.{state}")

    # -- event streaming -------------------------------------------------

    def _emit(self, job: Job, kind: str, **data) -> None:
        """Append one event to the job's log and wake all waiters.

        Loop-thread only (the executor thread forwards through
        ``call_soon_threadsafe``).  The signal is popped, not cleared:
        every current waiter wakes off the old Event, the next waiter
        lazily creates a fresh one.
        """
        job.events.append({
            "seq": len(job.events) + 1,
            "ts": time.time(),  # client-facing timestamp only
            "kind": kind,
            **data,
        })
        signal = self._signals.pop(job.id, None)
        if signal is not None:
            signal.set()

    async def wait_events(self, job: Job, since: int = 0,
                          timeout_s: float = 0.0) -> list:
        """Events with ``seq > since``, long-polling up to *timeout_s*.

        Returns immediately when fresh events exist or the job is
        terminal (no more events will ever come); otherwise parks on
        the job's signal.  An empty list means "nothing yet — poll
        again with the same ``since``".
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout_s)
        self._stream_clients += 1
        self._set_stream_gauge()
        try:
            while True:
                fresh = [e for e in job.events if e["seq"] > since]
                if fresh or job.terminal:
                    return fresh
                remaining = deadline - loop.time()
                if remaining <= 0:
                    return []
                signal = self._signals.setdefault(job.id, asyncio.Event())
                try:
                    await asyncio.wait_for(signal.wait(), remaining)
                except asyncio.TimeoutError:
                    return []
        finally:
            self._stream_clients -= 1
            self._set_stream_gauge()

    @property
    def stream_clients(self) -> int:
        return self._stream_clients

    def _metric(self, name: str):
        from repro.obs.metrics import spec_for

        return self.registry.register(spec_for(name))

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self._metric(name).inc()

    def _count_completed(self, state: str) -> None:
        if self.registry is not None:
            self._metric("serve.completed").inc(state=state)

    def _set_queue_gauge(self) -> None:
        if self.registry is not None:
            self._metric("serve.queue_depth").set(self._queue.qsize())

    def _set_stream_gauge(self) -> None:
        if self.registry is not None:
            self._metric("serve.stream_clients").set(self._stream_clients)

    def _observe_latency(self, seconds: float) -> None:
        if self.registry is not None:
            self._metric("serve.latency_s").observe(seconds)


__all__ = [
    "CANCELLED",
    "DISP_CACHED",
    "DISP_COALESCED",
    "DISP_NEW",
    "DONE",
    "FAILED",
    "Job",
    "JobRequest",
    "JobService",
    "QUEUED",
    "QueueFullError",
    "RequestError",
    "RUNNING",
    "ShuttingDownError",
    "TERMINAL_STATES",
    "execute_request",
]
