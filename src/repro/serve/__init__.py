"""``repro serve`` — the simulator as a service (docs/serve.md).

An asyncio job service over the fault-tolerant sweep fabric: submit a
suite config over HTTP, get a job id, poll status, fetch the JSON
result or the rendered HTML report.  Identical configs are deduplicated
against a content-addressed on-disk result store and coalesced while in
flight; a bounded submission queue gives explicit backpressure (429 +
``Retry-After``).

Layers (each importable on its own):

* :mod:`repro.serve.routes` — the endpoint contract (dependency-free;
  ``tools/check_docs.py`` checks docs against it)
* :mod:`repro.serve.store` — content-addressed result store (CAS)
* :mod:`repro.serve.jobs` — job model, validation, scheduling core
* :mod:`repro.serve.service` — the asyncio HTTP frontend
* :mod:`repro.serve.client` — blocking client for tests/bench/scripts
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.jobs import (
    Job,
    JobRequest,
    JobService,
    QueueFullError,
    RequestError,
    ShuttingDownError,
)
from repro.serve.routes import ROUTES, RouteSpec
from repro.serve.service import ThreadedServer, serve
from repro.serve.store import ResultStore, cas_key

__all__ = [
    "Job",
    "JobRequest",
    "JobService",
    "QueueFullError",
    "RequestError",
    "ResultStore",
    "ROUTES",
    "RouteSpec",
    "ServeClient",
    "ServeResponse",
    "ShuttingDownError",
    "ThreadedServer",
    "cas_key",
    "serve",
]
