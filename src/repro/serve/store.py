"""Content-addressed result store for ``repro serve``.

A job's identity is its *configuration*, not its submission: the store
key is a truncated sha256 over the canonical JSON of

    {code_version, config_hash, system, workloads}

so two submissions of the same suite config — from different clients,
hours apart — address the same result, and a simulator change
(``CODE_VERSION`` bump) invalidates every stored result at once, the
same rule the sim-cache and baseline fingerprints already follow.

On disk the store mirrors the journal-v2 durability posture:

* every result file is a checksummed envelope (``sum`` = truncated
  sha256 over the canonical JSON of the rest, via
  :func:`repro.sim.journal.record_checksum`);
* writes are atomic — unique temp name in the same directory, then
  ``os.replace``;
* a file that fails decode or checksum on load is **quarantined** (moved
  aside to ``<name>.corrupt``), counted on ``serve.store_quarantined``,
  and treated as a miss — corruption costs a re-run, never a crash or a
  silently wrong cache hit.

The store can be **bounded** (``max_bytes``): when the total footprint
exceeds the bound, whole entries — result envelope plus journal plus
span spills — are evicted least-recently-*used* first (``load`` touches
the result file's mtime), at startup and after every write.  Evictions
count on ``serve.store_evicted``; the CAS re-runs an evicted config on
its next submission, so eviction costs time, never correctness.

Layout under the store root::

    store/
      results/<key>.json       checksummed result envelopes (the CAS)
      journals/<key>.jsonl     execution journal per job (report source)
      journals/<key>-spans/    span spills of the job's trace
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
import warnings
from pathlib import Path
from typing import Optional

from repro.obs.trace import spans_dir_for
from repro.sim.journal import record_checksum

ENVELOPE_KIND = "repro.serve_result"
ENVELOPE_SCHEMA = 1

#: hex digits kept of the sha256 key — same truncation as the sim cache.
KEY_LEN = 32


def cas_key(*, config_hash: str, code_version: int, system: str,
            workloads) -> str:
    """The content address of one suite request.

    ``config_hash`` covers every physical parameter of the simulated
    system; ``code_version`` covers the simulator implementation;
    ``system``/``workloads`` cover what the suite actually runs.
    Together they are exactly the inputs that determine the result.
    """
    basis = json.dumps(
        {
            "code_version": code_version,
            "config_hash": config_hash,
            "system": system,
            "workloads": sorted(workloads),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:KEY_LEN]


class ResultStore:
    """On-disk CAS of completed job results, keyed by :func:`cas_key`."""

    def __init__(self, root, registry=None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.journals_dir = self.root / "journals"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.journals_dir.mkdir(parents=True, exist_ok=True)
        self._registry = registry
        self._warned_corrupt = False
        self.max_bytes = max_bytes
        # Startup GC: a restarted service honours a newly-lowered bound
        # (or one it crashed past) before serving anything.
        self._evict()

    # -- paths -----------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def journal_path(self, key: str) -> Path:
        return self.journals_dir / f"{key}.jsonl"

    # -- CAS operations --------------------------------------------------

    def save(self, key: str, payload: dict) -> Path:
        """Store *payload* under *key*, atomically, with a checksum.

        The envelope carries the key so a file moved to the wrong name
        is detectable, and the checksum so a torn or bit-flipped file
        is detectable.
        """
        envelope = {
            "kind": ENVELOPE_KIND,
            "schema": ENVELOPE_SCHEMA,
            "key": key,
            "payload": payload,
        }
        envelope["sum"] = record_checksum(envelope)
        target = self.result_path(key)
        tmp = target.with_name(
            f"{target.stem}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            tmp.write_text(
                json.dumps(envelope, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, target)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._evict(protect=key)
        return target

    def load(self, key: str) -> Optional[dict]:
        """The stored payload for *key*, or ``None``.

        Undecodable / checksum-failing / mis-keyed files are quarantined
        and reported as a miss — the caller re-runs the job and the
        fresh result overwrites nothing (the corrupt file was moved
        aside).
        """
        path = self.result_path(key)
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not an object")
            claimed = envelope.get("sum")
            actual = record_checksum(envelope)
            if claimed != actual:
                raise ValueError(
                    f"checksum mismatch: claimed {claimed!r}, "
                    f"computed {actual!r}"
                )
            if envelope.get("kind") != ENVELOPE_KIND:
                raise ValueError(f"unexpected kind {envelope.get('kind')!r}")
            if envelope.get("key") != key:
                raise ValueError(
                    f"envelope key {envelope.get('key')!r} != file key "
                    f"{key!r}"
                )
            payload = envelope["payload"]
        except (ValueError, KeyError, OSError) as exc:
            self._quarantine(path, exc)
            return None
        try:
            os.utime(path)  # LRU touch: a hit is a use
        except OSError:
            pass
        return payload

    def has(self, key: str) -> bool:
        return self.result_path(key).exists()

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    # -- bounded-store GC ------------------------------------------------

    def _entry_paths(self, key: str) -> list[Path]:
        """Everything one CAS entry owns on disk."""
        return [
            self.result_path(key),
            self.journal_path(key),
            spans_dir_for(self.journal_path(key)),
        ]

    def _entry_bytes(self, key: str) -> int:
        total = 0
        for path in self._entry_paths(key):
            try:
                if path.is_dir():
                    total += sum(
                        f.stat().st_size
                        for f in path.rglob("*") if f.is_file()
                    )
                elif path.exists():
                    total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict(self, protect: Optional[str] = None) -> int:
        """LRU-evict whole entries until the footprint fits the bound.

        *protect* names a key never evicted (the one just written — a
        bound smaller than a single result must not eat the result it
        was asked to store).  Returns the number of entries evicted.
        """
        if self.max_bytes is None:
            return 0
        entries = []  # (last-use mtime, key, bytes)
        for path in self.results_dir.glob("*.json"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, path.stem, self._entry_bytes(path.stem)))
        entries.sort()
        total = sum(size for _, _, size in entries)
        evicted = 0
        for _, key, size in entries:
            if total <= self.max_bytes:
                break
            if key == protect:
                continue
            for path in self._entry_paths(key):
                try:
                    if path.is_dir():
                        shutil.rmtree(path, ignore_errors=True)
                    elif path.exists():
                        path.unlink()
                except OSError:
                    continue
            total -= size
            evicted += 1
            if self._registry is not None:
                from repro.obs.metrics import spec_for

                self._registry.register(
                    spec_for("serve.store_evicted")
                ).inc()
        return evicted

    # -- corruption handling ---------------------------------------------

    def _quarantine(self, path: Path, exc: Exception) -> None:
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            pass
        if self._registry is not None:
            from repro.obs.metrics import spec_for

            self._registry.register(spec_for("serve.store_quarantined")).inc()
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"repro serve: quarantined corrupt result file {path.name} "
                f"({exc}); the job will be re-run on next submission. "
                "Further corrupt files in this store will be quarantined "
                "silently (counted on serve.store_quarantined).",
                RuntimeWarning,
                stacklevel=3,
            )


__all__ = [
    "ENVELOPE_KIND",
    "ENVELOPE_SCHEMA",
    "KEY_LEN",
    "ResultStore",
    "cas_key",
]
