"""Address arithmetic helpers.

The simulator's native address unit is the *line number*: a line-granularity
index into a flat global address space.  Pages are contiguous runs of
``lines_per_page`` lines; DRAM channels and rows are derived from the line
number with the minimalist interleaving the paper's baseline uses (line
granularity channel interleave, row-sized locality within a channel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINE_BYTES


@dataclass(frozen=True)
class AddressMap:
    """Derives page/channel/row coordinates from a line number."""

    lines_per_page: int
    n_channels: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.lines_per_page <= 0:
            raise ValueError("lines_per_page must be positive")
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if self.row_bytes < LINE_BYTES:
            raise ValueError("row must hold at least one line")

    @property
    def lines_per_row(self) -> int:
        return max(1, self.row_bytes // LINE_BYTES)

    def page_of(self, line: int) -> int:
        """Page number containing *line*."""
        return line // self.lines_per_page

    def first_line_of_page(self, page: int) -> int:
        return page * self.lines_per_page

    def line_offset_in_page(self, line: int) -> int:
        return line % self.lines_per_page

    def channel_of(self, line: int) -> int:
        """Memory channel servicing *line* (line-granularity interleave)."""
        return line % self.n_channels

    def row_of(self, line: int) -> int:
        """DRAM row coordinate of *line* within its channel.

        Consecutive lines on the same channel (i.e. lines ``n_channels``
        apart) fall in the same row until ``lines_per_row`` lines have been
        consumed, mirroring a minimalist open-page address mapping.
        """
        return (line // self.n_channels) // self.lines_per_row

    def lines_of_page(self, page: int) -> range:
        start = self.first_line_of_page(page)
        return range(start, start + self.lines_per_page)


def bytes_to_lines(n_bytes: int) -> int:
    """Number of whole lines covering *n_bytes* (at least one)."""
    if n_bytes <= 0:
        return 0
    return max(1, (n_bytes + LINE_BYTES - 1) // LINE_BYTES)


def lines_to_bytes(n_lines: int) -> int:
    return n_lines * LINE_BYTES
