"""TLB hierarchy model.

The baseline GPU (Table III / Section III) has per-SM L1 TLBs and a shared
L2 TLB, and relies on 2 MB pages for coverage.  TLB behaviour motivates the
paper's large-page assumption (footnote 1: shrinking pages to avoid false
sharing would wreck TLB coverage), so we model it to expose that trade-off:
the :mod:`repro.analysis` ablations compare page sizes by TLB reach.

As with the L1 data cache, per-SM L1 TLBs are modelled as one aggregate
structure per GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import SetAssociativeCache


@dataclass
class TlbStats:
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def walks(self) -> int:
        """Page-table walks (misses in both levels)."""
        return self.l2_misses

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def overall_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        if not total:
            return 0.0
        return (self.l1_hits + self.l2_hits) / total


class TlbHierarchy:
    """Two-level TLB over page numbers.

    Default geometry: 64-entry aggregate L1 (fully assoc.), 1024-entry
    8-way L2, which at 2 MB pages covers 2 GB — ample for most of Table
    II's footprints, and the reason the paper keeps large pages.
    """

    def __init__(
        self,
        l1_entries: int = 64,
        l2_entries: int = 1024,
        l2_ways: int = 8,
    ) -> None:
        self.l1 = SetAssociativeCache(l1_entries, l1_entries, name="l1tlb")
        self.l2 = SetAssociativeCache(l2_entries, l2_ways, name="l2tlb")
        self.stats = TlbStats()

    def translate(self, page: int) -> bool:
        """Look up *page*; returns True on an L1 or L2 hit.

        A full miss installs the translation in both levels (a page-table
        walk is implied and counted in :attr:`TlbStats.walks`).
        """
        if self.l1.lookup(page):
            self.stats.l1_hits += 1
            return True
        self.stats.l1_misses += 1
        if self.l2.lookup(page):
            self.stats.l2_hits += 1
            self.l1.insert(page)
            return True
        self.stats.l2_misses += 1
        self.l2.insert(page)
        self.l1.insert(page)
        return False

    def shootdown(self, page: int) -> None:
        """Invalidate a translation (page migration / remap)."""
        self.l1.invalidate_line(page)
        self.l2.invalidate_line(page)

    def flush(self) -> None:
        self.l1.invalidate_all()
        self.l2.invalidate_all()

    def reach_bytes(self, page_bytes: int) -> int:
        """Address space covered by a full L2 TLB at the given page size."""
        return self.l2.n_lines * page_bytes
