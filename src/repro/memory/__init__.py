"""memory subpackage of the CARVE reproduction."""
