"""DRAM (HBM) channel model.

The paper's simulator models per-channel read/write queues, an open-page
policy with minimalist address mapping, and FR-FCFS scheduling that
prioritises reads and drains writes in batches.  Reproducing per-command
timing in Python is neither feasible nor necessary for the paper's
conclusions; what the timing model needs from DRAM is

* how many bytes moved (bandwidth roofline), and
* the average access latency (row hits are cheaper than row misses), and
* a write-interference factor (write bursts steal read bandwidth).

This module tracks per-bank open rows to classify each access as a row hit
or miss, accumulates read/write byte counters, and exposes the derived
effective-latency statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINE_BYTES, MemoryConfig
from repro.memory.address import AddressMap


@dataclass
class DramStats:
    """Aggregate counters for one GPU's local memory."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def read_bytes(self) -> int:
        return self.reads * LINE_BYTES

    @property
    def write_bytes(self) -> int:
        return self.writes * LINE_BYTES

    @property
    def total_bytes(self) -> int:
        return self.accesses * LINE_BYTES

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DramModel:
    """Open-page DRAM with per-bank row tracking.

    Banks are addressed ``(channel, line-derived bank)``.  An access to the
    currently open row of its bank is a row hit; otherwise the row buffer
    is re-opened (row miss).  FR-FCFS appears as the assumption that
    same-row requests in the queues are serviced back-to-back, which the
    row-hit statistics capture; writes are drained in batches, which the
    performance model represents with a write-turnaround penalty derived
    from the read/write mix.
    """

    def __init__(self, config: MemoryConfig, amap: AddressMap) -> None:
        self.config = config
        self.amap = amap
        self.n_banks = config.n_channels * config.banks_per_channel
        # open row per bank; -1 = closed
        self._open_rows = [-1] * self.n_banks
        self.stats = DramStats()
        #: accumulated access latency in nanoseconds
        self.latency_ns_total = 0.0

    def _bank_of(self, line: int) -> int:
        channel = self.amap.channel_of(line)
        bank = (line // self.amap.n_channels) % self.config.banks_per_channel
        return channel * self.config.banks_per_channel + bank

    def access(self, line: int, is_write: bool) -> float:
        """Perform one line access; returns its latency in nanoseconds."""
        bank = self._bank_of(line)
        row = self.amap.row_of(line)
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
            latency = self.config.row_hit_latency_ns
        else:
            self._open_rows[bank] = row
            self.stats.row_misses += 1
            latency = self.config.row_miss_latency_ns
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.latency_ns_total += latency
        return latency

    def access_run(self, first_line: int, count: int, is_write: bool) -> float:
        """Access *count* consecutive lines starting at *first_line*.

        Counter-for-counter identical to calling :meth:`access` in a loop
        (same per-bank row transitions in the same order), but with the
        per-line Python overhead hoisted.  Used for bulk transfers — page
        migration copies and kernel-boundary flushes.  Returns the total
        latency in nanoseconds.
        """
        open_rows = self._open_rows
        n_channels = self.amap.n_channels
        banks_per_channel = self.config.banks_per_channel
        lines_per_row = self.amap.lines_per_row
        hit_lat = self.config.row_hit_latency_ns
        miss_lat = self.config.row_miss_latency_ns
        row_hits = row_misses = 0
        total = 0.0
        for line in range(first_line, first_line + count):
            in_channel = line // n_channels
            bank = (line % n_channels) * banks_per_channel + (
                in_channel % banks_per_channel
            )
            row = in_channel // lines_per_row
            if open_rows[bank] == row:
                row_hits += 1
                total += hit_lat
            else:
                open_rows[bank] = row
                row_misses += 1
                total += miss_lat
        self.stats.row_hits += row_hits
        self.stats.row_misses += row_misses
        if is_write:
            self.stats.writes += count
        else:
            self.stats.reads += count
        self.latency_ns_total += total
        return total

    def add_batch(
        self,
        reads: int,
        writes: int,
        row_hits: int,
        row_misses: int,
        latency_ns: float,
    ) -> None:
        """Batched counter update (vectorized-engine flush).

        The caller has already applied the per-bank open-row transitions
        through the :attr:`open_rows` view; this records the aggregate
        counters those accesses produced.
        """
        self.stats.reads += reads
        self.stats.writes += writes
        self.stats.row_hits += row_hits
        self.stats.row_misses += row_misses
        self.latency_ns_total += latency_ns

    @property
    def open_rows(self) -> list:
        """Per-bank open-row state (hot-path view, owned by this model)."""
        return self._open_rows

    @property
    def average_latency_ns(self) -> float:
        n = self.stats.accesses
        return self.latency_ns_total / n if n else 0.0

    def effective_bandwidth(self) -> float:
        """Deliverable bandwidth in bytes/s given the observed access mix.

        Row misses cost roughly twice a row hit's on-chip time, and each
        read<->write turnaround wastes bus slots.  Both appear here as an
        efficiency factor on the peak pin bandwidth; a perfectly streaming
        read workload achieves ~peak.
        """
        s = self.stats
        if not s.accesses:
            return self.config.bandwidth_bytes_per_s
        hit_rate = s.row_hit_rate
        row_efficiency = 1.0 / (2.0 - hit_rate)  # 1.0 at 100% hits, 0.5 at 0%
        write_frac = s.writes / s.accesses
        # Batched write draining keeps turnaround cost modest: up to a 10%
        # penalty at a 50/50 mix, vanishing for read-only or write-only.
        turnaround_efficiency = 1.0 - 0.4 * write_frac * (1.0 - write_frac)
        return (
            self.config.bandwidth_bytes_per_s
            * row_efficiency
            * turnaround_efficiency
        )

    def reset(self) -> None:
        self._open_rows = [-1] * self.n_banks
        self.stats = DramStats()
        self.latency_ns_total = 0.0
