"""Set-associative caches used for the GPU L1 and L2/LLC.

These are functional (hit/miss) models with true LRU replacement.  They know
nothing about timing; the performance model converts the traffic they emit
into time.  Lines are tagged with arbitrary metadata (``remote`` flags,
dirty bits) that the NUMA machinery needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass
class CacheLineState:
    """Metadata carried by a resident cache line."""

    __slots__ = ("dirty", "remote")

    dirty: bool
    remote: bool


@dataclass
class EvictedLine:
    """Returned when an insertion displaces a resident line."""

    __slots__ = ("line", "dirty", "remote")

    line: int
    dirty: bool
    remote: bool


class SetAssociativeCache:
    """A classic set-associative, true-LRU cache over line numbers.

    The cache is sized in *lines*; ``n_lines`` must be a multiple of
    ``ways`` (the set count is derived).  When ``n_lines < ways`` the cache
    degenerates to a single fully-associative set, which keeps heavily
    scaled-down configurations functional.
    """

    def __init__(self, n_lines: int, ways: int, name: str = "cache") -> None:
        if n_lines <= 0:
            raise ValueError("cache must have a positive line count")
        if ways <= 0:
            raise ValueError("cache must have positive associativity")
        if n_lines < ways:
            ways = n_lines
        if n_lines % ways:
            raise ValueError(
                f"{name}: line count {n_lines} not divisible by {ways} ways"
            )
        self.name = name
        self.n_lines = n_lines
        self.ways = ways
        self.n_sets = n_lines // ways
        # One OrderedDict per set: line -> CacheLineState, LRU at the front.
        self._sets: list[OrderedDict[int, CacheLineState]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    # -- basic operations ------------------------------------------------

    def _set_of(self, line: int) -> OrderedDict[int, CacheLineState]:
        return self._sets[line % self.n_sets]

    @property
    def sets(self) -> list[OrderedDict[int, CacheLineState]]:
        """The per-set line tables, LRU-first (hot-path view).

        The vectorized execution engine operates on these directly to
        avoid per-access method-call overhead; any mutation must preserve
        the :meth:`lookup`/:meth:`insert` contract (LRU order, ``ways``
        bound, counter deltas flushed via :meth:`add_lookup_counts`).
        """
        return self._sets

    def add_lookup_counts(self, hits: int, misses: int) -> None:
        """Batched hit/miss counter update (vectorized-engine flush)."""
        self.hits += hits
        self.misses += misses

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Probe for *line*; updates hit/miss counters and recency."""
        s = self._set_of(line)
        if line in s:
            self.hits += 1
            if update_lru:
                s.move_to_end(line)
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check with no side effects (no counters, no LRU)."""
        return line in self._set_of(line)

    def insert(
        self, line: int, dirty: bool = False, remote: bool = False
    ) -> Optional[EvictedLine]:
        """Install *line*, returning the victim if one was displaced.

        Re-inserting a resident line refreshes its recency and ORs the
        dirty bit (a write hit never cleans a line).
        """
        s = self._set_of(line)
        state = s.get(line)
        if state is not None:
            state.dirty = state.dirty or dirty
            state.remote = remote
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.ways:
            vline, vstate = s.popitem(last=False)
            victim = EvictedLine(vline, vstate.dirty, vstate.remote)
        s[line] = CacheLineState(dirty=dirty, remote=remote)
        return victim

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line; True if it was present."""
        s = self._set_of(line)
        state = s.get(line)
        if state is None:
            return False
        state.dirty = True
        s.move_to_end(line)
        return True

    def invalidate_line(self, line: int) -> Optional[EvictedLine]:
        """Remove one line (coherence invalidation); returns its state."""
        s = self._set_of(line)
        state = s.pop(line, None)
        if state is None:
            return None
        return EvictedLine(line, state.dirty, state.remote)

    # -- bulk operations (software coherence) -----------------------------

    def invalidate_all(self) -> list[EvictedLine]:
        """Drop every line, returning the dirty ones (they need a flush)."""
        dirty = [
            EvictedLine(line, st.dirty, st.remote)
            for s in self._sets
            for line, st in s.items()
            if st.dirty
        ]
        for s in self._sets:
            s.clear()
        return dirty

    def invalidate_remote(self) -> int:
        """Drop only remotely homed lines; returns how many were dropped.

        This models the NUMA-GPU software-coherence rule that remote data
        cached in the LLC must not survive a kernel boundary, while local
        (memory-side, implicitly coherent) lines may.
        """
        dropped = 0
        for s in self._sets:
            stale = [line for line, st in s.items() if st.remote]
            for line in stale:
                del s[line]
            dropped += len(stale)
        return dropped

    def flush_dirty(self) -> list[EvictedLine]:
        """Clean every dirty line, returning them (for writeback traffic)."""
        flushed = []
        for s in self._sets:
            for line, st in s.items():
                if st.dirty:
                    flushed.append(EvictedLine(line, True, st.remote))
                    st.dirty = False
        return flushed

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __iter__(self) -> Iterator[int]:
        for s in self._sets:
            yield from s

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
