"""Statistics containers produced by the simulator.

The simulator is split from the timing model: a run produces *counters*
(instructions, bytes moved per resource, accumulated latency), and
:mod:`repro.perf.model` converts counters into time.  Keeping raw counters
makes sensitivity studies (e.g. Fig. 14's link-bandwidth sweep) free: the
same counters are re-priced under a different configuration without
re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import LINE_BYTES


@dataclass
class GpuKernelStats:
    """Counters for one GPU during one kernel."""

    instructions: float = 0.0
    accesses: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    #: Accesses serviced by this GPU's own DRAM (any requester), split by
    #: direction.  Includes RDC probe/insert traffic.
    dram_reads: int = 0
    dram_writes: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    #: Demand accesses that crossed a link to another GPU's memory.
    remote_reads: int = 0
    remote_writes: int = 0
    #: Demand accesses satisfied from local memory (home, replica or RDC).
    local_reads: int = 0
    local_writes: int = 0
    rdc_hits: int = 0
    rdc_misses: int = 0
    rdc_inserts: int = 0
    rdc_bypasses: int = 0  # probes skipped by the hit predictor
    invalidates_sent: int = 0
    invalidates_received: int = 0
    migrations: int = 0
    #: Total latency experienced by this GPU's demand accesses, ns.
    latency_ns: float = 0.0

    @property
    def reads(self) -> int:
        return self.accesses - self.writes

    @property
    def dram_bytes(self) -> int:
        return (self.dram_reads + self.dram_writes) * LINE_BYTES

    @property
    def remote_fraction(self) -> float:
        """Fraction of post-LLC demand accesses that went remote."""
        demand = (
            self.remote_reads
            + self.remote_writes
            + self.local_reads
            + self.local_writes
        )
        if not demand:
            return 0.0
        return (self.remote_reads + self.remote_writes) / demand

    @property
    def rdc_hit_rate(self) -> float:
        probes = self.rdc_hits + self.rdc_misses
        return self.rdc_hits / probes if probes else 0.0

    def add_counts(
        self,
        *,
        accesses: int = 0,
        writes: int = 0,
        l1_hits: int = 0,
        l2_hits: int = 0,
        local_reads: int = 0,
        local_writes: int = 0,
        remote_reads: int = 0,
        remote_writes: int = 0,
        rdc_hits: int = 0,
        rdc_misses: int = 0,
        rdc_inserts: int = 0,
        rdc_bypasses: int = 0,
        invalidates_sent: int = 0,
        latency_ns: float = 0.0,
    ) -> None:
        """Accumulate a batch of per-access counter deltas in one call.

        The vectorized execution engine tallies a whole chunk in local
        variables and flushes here once, instead of bumping dataclass
        attributes on every access.
        """
        self.accesses += accesses
        self.writes += writes
        self.l1_hits += l1_hits
        self.l2_hits += l2_hits
        self.local_reads += local_reads
        self.local_writes += local_writes
        self.remote_reads += remote_reads
        self.remote_writes += remote_writes
        self.rdc_hits += rdc_hits
        self.rdc_misses += rdc_misses
        self.rdc_inserts += rdc_inserts
        self.rdc_bypasses += rdc_bypasses
        self.invalidates_sent += invalidates_sent
        self.latency_ns += latency_ns

    def merge(self, other: "GpuKernelStats") -> None:
        """Accumulate *other* into this object (for workload-level views)."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass
class KernelStats:
    """Counters for one kernel across all GPUs plus the link matrix."""

    kernel_id: int
    n_gpus: int
    instr_per_access: float
    concurrency_per_sm: float
    warmup: bool = False
    gpus: list[GpuKernelStats] = field(default_factory=list)
    #: link_bytes[src][dst]: bytes moved src -> dst during this kernel.
    link_bytes: list[list[int]] = field(default_factory=list)
    #: Per-link bandwidth fraction during this kernel's fault epoch
    #: (None = every link ran at full configured bandwidth).  Entries on
    #: links carrying bytes are always > 0 — outage traffic is rerouted
    #: or priced at a retry residual when the byte matrix is captured.
    link_scale: Optional[list[list[float]]] = None

    def __post_init__(self) -> None:
        if not self.gpus:
            self.gpus = [GpuKernelStats() for _ in range(self.n_gpus)]
        if not self.link_bytes:
            self.link_bytes = [[0] * self.n_gpus for _ in range(self.n_gpus)]

    def total(self) -> GpuKernelStats:
        agg = GpuKernelStats()
        for g in self.gpus:
            agg.merge(g)
        return agg

    def link_out_bytes(self, gpu: int) -> int:
        return sum(self.link_bytes[gpu])

    def link_in_bytes(self, gpu: int) -> int:
        return sum(row[gpu] for row in self.link_bytes)

    def max_link_bytes(self, gpu: int) -> int:
        """Largest single directional link load touching *gpu*."""
        out = max(self.link_bytes[gpu]) if self.n_gpus > 1 else 0
        inc = max(row[gpu] for row in self.link_bytes) if self.n_gpus > 1 else 0
        return max(out, inc)


@dataclass
class RunResult:
    """Everything a simulation run produced."""

    workload: str
    config_label: str
    n_gpus: int
    kernels: list[KernelStats] = field(default_factory=list)
    #: Pages mapped per GPU at the end of the run (capacity accounting).
    pages_mapped: list[int] = field(default_factory=list)
    #: Replica pages per GPU (replication capacity pressure).
    pages_replicated: list[int] = field(default_factory=list)
    #: Distinct remote pages fetched by each GPU (shared footprint, Fig. 5).
    remote_pages_touched: list[int] = field(default_factory=list)
    #: Optional page access-frequency histogram for the UM spill model:
    #: sorted per-page access counts (descending).
    page_access_counts: Optional[list[int]] = None

    def total(self, include_warmup: bool = False) -> GpuKernelStats:
        agg = GpuKernelStats()
        for k in self.kernels:
            if k.warmup and not include_warmup:
                continue
            agg.merge(k.total())
        return agg

    def measured_kernels(self) -> list[KernelStats]:
        return [k for k in self.kernels if not k.warmup]

    @property
    def remote_fraction(self) -> float:
        return self.total().remote_fraction

    @property
    def replication_pressure(self) -> float:
        """Memory capacity expansion factor from replication (>= 1)."""
        mapped = sum(self.pages_mapped)
        if not mapped:
            return 1.0
        return (mapped + sum(self.pages_replicated)) / mapped
