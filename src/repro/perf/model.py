"""Bottleneck (roofline-style) timing model.

Per kernel, per GPU the execution time is the maximum of

* compute time          — warp instructions / peak issue rate,
* local memory time     — DRAM bytes / effective DRAM bandwidth,
* link time             — the most-loaded directional link / link BW,
* latency-limited time  — accumulated access latency / sustained MLP,

and the kernel completes when its slowest GPU does (implicit barrier);
the workload time is the sum over kernels plus launch overheads.  This is
the standard analytic model for throughput processors: a GPU kernel's
runtime is set by its saturated resource, and NUMA slowdowns are exactly
the link term overtaking the others.

Because the model only consumes counters, any *bandwidth* parameter can be
swept after a single simulation (Fig. 14) — the counters do not depend on
link speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.config import LINE_BYTES, TOPOLOGY_SWITCH, SystemConfig
from repro.gpu.sm import ComputeModel
from repro.perf.stats import KernelStats, RunResult


@dataclass
class KernelTime:
    """Timing breakdown of one kernel (seconds)."""

    kernel_id: int
    per_gpu: list[float]
    bottlenecks: list[str]
    launch_overhead: float

    @property
    def time(self) -> float:
        return max(self.per_gpu) + self.launch_overhead


@dataclass
class RunTime:
    """Timing of a whole run."""

    workload: str
    config_label: str
    kernels: list[KernelTime] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(k.time for k in self.kernels)

    def bottleneck_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for k in self.kernels:
            for b in k.bottlenecks:
                hist[b] = hist.get(b, 0) + 1
        return hist


def _dram_efficiency(reads: int, writes: int, row_hits: int, row_misses: int) -> float:
    """Effective fraction of peak DRAM bandwidth (see DramModel)."""
    accesses = reads + writes
    if not accesses:
        return 1.0
    total_rows = row_hits + row_misses
    hit_rate = row_hits / total_rows if total_rows else 1.0
    row_eff = 1.0 / (2.0 - hit_rate)
    wf = writes / accesses
    turnaround_eff = 1.0 - 0.4 * wf * (1.0 - wf)
    return row_eff * turnaround_eff


def _faulted_link_time(
    ks: KernelStats, g: int, link_bw: float,
    scale: list[list[float]], topology: str,
) -> float:
    """Link term of GPU *g* under a kernel's fault epoch.

    Each link's drain time is its bytes over its *scaled* bandwidth.
    Links carrying bytes always have scale > 0 (outage traffic was
    rerouted, or left at the retry residual, when the kernel's byte
    matrix was captured), so zero-scale entries can only appear on idle
    links and are skipped.
    """
    if topology == TOPOLOGY_SWITCH:
        # One fabric port per GPU: its in/out totals share it, and a
        # degraded link stretches its share of the drain.
        t_out = sum(
            b / (link_bw * scale[g][d])
            for d, b in enumerate(ks.link_bytes[g])
            if b and d != g
        )
        t_in = sum(
            row[g] / (link_bw * scale[s][g])
            for s, row in enumerate(ks.link_bytes)
            if row[g] and s != g
        )
        return max(t_out, t_in)
    # Dedicated pairwise links: the slowest-draining one binds.
    worst = 0.0
    for d, b in enumerate(ks.link_bytes[g]):
        if b and d != g:
            worst = max(worst, b / (link_bw * scale[g][d]))
    for s in range(ks.n_gpus):
        b = ks.link_bytes[s][g]
        if b and s != g:
            worst = max(worst, b / (link_bw * scale[s][g]))
    return worst


class PerformanceModel:
    """Prices a :class:`RunResult` into time under a system config."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._compute = ComputeModel(config.gpu)

    def kernel_time(self, ks: KernelStats,
                    extra_overhead_s: float = 0.0) -> KernelTime:
        cfg = self.config
        link_bw = cfg.link.inter_gpu_bytes_per_s
        per_gpu: list[float] = []
        bottlenecks: list[str] = []
        for g, st in enumerate(ks.gpus):
            t_compute = self._compute.compute_time_s(st.instructions)
            eff = _dram_efficiency(
                st.dram_reads, st.dram_writes, st.dram_row_hits, st.dram_row_misses
            )
            dram_bytes = (st.dram_reads + st.dram_writes) * LINE_BYTES
            t_local = dram_bytes / (cfg.memory.bandwidth_bytes_per_s * eff)
            scale = ks.link_scale
            if ks.n_gpus <= 1:
                t_link = 0.0
            elif scale is not None:
                t_link = _faulted_link_time(ks, g, link_bw, scale,
                                            cfg.link.topology)
            elif cfg.link.topology == TOPOLOGY_SWITCH:
                # One fabric port per GPU: its in/out totals share it.
                port_bytes = max(ks.link_in_bytes(g), ks.link_out_bytes(g))
                t_link = port_bytes / link_bw
            else:
                # Dedicated pairwise links: the busiest one binds.
                t_link = ks.max_link_bytes(g) / link_bw
            conc = self._compute.concurrency(ks.concurrency_per_sm)
            t_latency = (st.latency_ns * 1e-9) / conc
            terms = {
                "compute": t_compute,
                "local_dram": t_local,
                "link": t_link,
                "latency": t_latency,
            }
            bottleneck = max(terms, key=terms.get)  # type: ignore[arg-type]
            per_gpu.append(terms[bottleneck])
            bottlenecks.append(bottleneck)
        # Launch overhead is a real-time constant; simulated kernels are
        # `scale` times shorter than real ones, so the overhead must be
        # scaled identically or it would swamp every scaled kernel.
        overhead = (cfg.kernel_launch_overhead_s + extra_overhead_s) / cfg.scale
        return KernelTime(ks.kernel_id, per_gpu, bottlenecks, overhead)

    def run_time(self, result: RunResult,
                 extra_overhead_per_kernel_s: float = 0.0) -> RunTime:
        """Price the measured (non-warmup) kernels of a run."""
        rt = RunTime(result.workload, result.config_label)
        for ks in result.measured_kernels():
            rt.kernels.append(self.kernel_time(ks, extra_overhead_per_kernel_s))
        return rt

    def total_time_s(self, result: RunResult) -> float:
        return self.run_time(result).total_s


def speedup(
    baseline: RunResult,
    candidate: RunResult,
    baseline_config: SystemConfig,
    candidate_config: Optional[SystemConfig] = None,
) -> float:
    """``T(baseline) / T(candidate)`` under the respective configs."""
    candidate_config = candidate_config or baseline_config
    t_base = PerformanceModel(baseline_config).total_time_s(baseline)
    t_cand = PerformanceModel(candidate_config).total_time_s(candidate)
    if t_cand <= 0:
        raise ValueError("candidate run has non-positive time")
    return t_base / t_cand


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
