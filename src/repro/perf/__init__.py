"""perf subpackage of the CARVE reproduction."""
