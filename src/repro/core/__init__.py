"""core subpackage of the CARVE reproduction."""
