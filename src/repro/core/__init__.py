"""The paper's contribution: CARVE and its coherence machinery.

Everything under ``repro.core`` models a mechanism introduced (or
analysed) by Young et al., *"Combining HW/SW Mechanisms to Improve NUMA
Performance of Multi-GPU Systems"* (MICRO 2018):

* :class:`RemoteDataCache` — the Remote Data Cache (RDC), an
  Alloy-style direct-mapped, tags-with-data DRAM cache carved out of
  local GPU memory to hold remote lines (Section III).
* :class:`EpochCounters` — epoch-counter instant invalidation, the
  trick that makes kernel-boundary software coherence free of explicit
  flush loops (Section IV-B, Fig. 10).
* :class:`InMemorySharingTracker` — the IMST, 2-bit per-line sharing
  state in the home node's spare ECC bits, which filters GPU-VI
  invalidation broadcasts (Section IV-B, Fig. 12).
* :func:`make_protocol` and the :class:`CoherenceProtocol` family —
  none / software / GPU-VI hardware / directory coherence for the RDC
  (Section IV-B, Fig. 11).
* :class:`CarveController` — the memory-controller front-end that
  steers remote accesses through probe / fill / write paths
  (Section IV-A).
* :class:`RdcHitPredictor` — MAP-I-style probe bypass, the extension
  fixing the RandAccess outlier (Section IV-A footnote).

Observability note: RDC, coherence and IMST activity surfaces as the
``rdc.*``, ``coh.*``, ``epoch.*`` and ``imst.*`` metrics documented in
``docs/metrics.md``.
"""

from repro.core.carve import (
    RDC_BYPASS,
    RDC_HIT,
    RDC_MISS,
    CarveController,
    RemoteAccessOutcome,
)
from repro.core.coherence import (
    CoherenceProtocol,
    DirectoryCoherence,
    DirectoryStats,
    HardwareCoherence,
    NoCoherence,
    SoftwareCoherence,
    make_protocol,
)
from repro.core.epoch import EpochCounters
from repro.core.hit_predictor import PredictorStats, RdcHitPredictor
from repro.core.imst import (
    PRIVATE,
    READ_SHARED,
    RW_SHARED,
    STATE_NAMES,
    UNCACHED,
    ImstStats,
    InMemorySharingTracker,
)
from repro.core.rdc import RdcStats, RemoteDataCache

__all__ = [
    "CarveController",
    "CoherenceProtocol",
    "DirectoryCoherence",
    "DirectoryStats",
    "EpochCounters",
    "HardwareCoherence",
    "ImstStats",
    "InMemorySharingTracker",
    "NoCoherence",
    "PRIVATE",
    "PredictorStats",
    "RDC_BYPASS",
    "RDC_HIT",
    "RDC_MISS",
    "READ_SHARED",
    "RW_SHARED",
    "RdcHitPredictor",
    "RdcStats",
    "RemoteAccessOutcome",
    "RemoteDataCache",
    "STATE_NAMES",
    "SoftwareCoherence",
    "UNCACHED",
    "make_protocol",
]
