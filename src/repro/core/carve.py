"""CARVE memory-controller integration (Section IV-A).

One :class:`CarveController` sits in front of each GPU's local memory.  On
an LLC miss to a *remote* address, the controller probes its Remote Data
Cache; hits are serviced from local memory, misses are forwarded to the
home node and the returned line is installed for future hits.  An
optional hit predictor skips the probe when a miss is likely, removing
the serialised local-DRAM latency from the miss path.

The controller reports what happened via :class:`RemoteAccessOutcome` so
the system model can charge the right DRAM/link traffic and latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import WRITE_BACK, RdcConfig
from repro.core.hit_predictor import RdcHitPredictor
from repro.core.rdc import RemoteDataCache

#: Outcome kinds for a remote read.
RDC_HIT = "rdc_hit"
RDC_MISS = "rdc_miss"
RDC_BYPASS = "rdc_bypass"  # predictor skipped the probe


@dataclass
class RemoteAccessOutcome:
    """What the CARVE controller did for one remote read."""

    __slots__ = ("kind", "probed", "filled")

    kind: str
    #: Whether a local DRAM access (the Alloy tag+data read) happened.
    probed: bool
    #: Whether the line was installed in the RDC (a local DRAM write).
    filled: bool


# Only three outcomes exist and callers never mutate them, so remote_read
# returns these shared instances instead of allocating per access.
_OUTCOME_HIT = RemoteAccessOutcome(RDC_HIT, probed=True, filled=False)
_OUTCOME_MISS = RemoteAccessOutcome(RDC_MISS, probed=True, filled=True)
_OUTCOME_BYPASS = RemoteAccessOutcome(RDC_BYPASS, probed=False, filled=True)


class CarveController:
    """CARVE memory-controller front-end (Section IV-A): per-GPU RDC +
    predictor steering for remote memory accesses."""

    def __init__(self, gpu_id: int, n_lines: int, config: RdcConfig) -> None:
        self.gpu_id = gpu_id
        self.config = config
        self.rdc = RemoteDataCache(
            n_lines, write_policy=config.write_policy, epoch_bits=config.epoch_bits
        )
        self.predictor: Optional[RdcHitPredictor] = (
            RdcHitPredictor(config.hit_predictor_entries)
            if config.hit_predictor
            else None
        )

    # -- read path ----------------------------------------------------------

    def remote_read(self, line: int, stream: int = 0) -> RemoteAccessOutcome:
        """Handle an LLC-missing read to a remote line."""
        if self.predictor is not None:
            predicted_hit = self.predictor.predict_hit(line)
            if not predicted_hit:
                # Skip the probe; fetch remotely and install.  Peek (with
                # no stat side effects) to train the predictor honestly.
                was_resident = self.rdc.contains(line, stream)
                self.predictor.train(line, was_resident, predicted_hit=False)
                self.rdc.insert(line, stream)
                return _OUTCOME_BYPASS
            hit = self.rdc.probe(line, stream)
            self.predictor.train(line, hit, predicted_hit=True)
        else:
            hit = self.rdc.probe(line, stream)
        if hit:
            return _OUTCOME_HIT
        self.rdc.insert(line, stream)
        return _OUTCOME_MISS

    # -- write path ----------------------------------------------------------

    def remote_write(self, line: int, stream: int = 0) -> bool:
        """Handle a write to a remote line; True if an RDC copy was updated.

        Write-through: the copy is refreshed locally and the store is
        propagated to the home node by the caller regardless.  Write-back:
        the copy is dirtied and the home write is deferred (the caller
        must then *not* forward the store).
        """
        return self.rdc.write(line, stream)

    @property
    def defers_home_writes(self) -> bool:
        return self.config.write_policy == WRITE_BACK

    # -- coherence hooks ------------------------------------------------------

    def invalidate(self, line: int) -> bool:
        """Peer-initiated invalidation of one line."""
        return self.rdc.invalidate_line(line)

    def kernel_boundary(self, stream: int = 0) -> int:
        """Epoch-advance invalidation; returns dirty lines flushed home."""
        return self.rdc.kernel_boundary_flush(stream)


__all__ = [
    "CarveController",
    "RDC_BYPASS",
    "RDC_HIT",
    "RDC_MISS",
    "RemoteAccessOutcome",
]
