"""The Remote Data Cache (RDC): an Alloy-style DRAM cache in video memory.

CARVE statically carves a region of local GPU memory and organises it as a
direct-mapped, tags-with-data cache of *remote* lines (Fig. 6/7).  One
DRAM access retrieves tag+data together (the tag lives in spare ECC bits),
so a probe costs exactly one local-memory access whether it hits or
misses, and an insert costs one local-memory write.

Sets are interleaved across all memory channels (``set % n_channels``),
which the DRAM model sees because RDC accesses are issued to it like any
other local access.

The RDC supports both write policies discussed in Section IV-B:

* ``write_through`` (the paper's choice): dirty data propagates to the
  home node immediately; a kernel-boundary flush is free.
* ``write_back``: lines dirty locally; a *dirty-map* of written regions
  bounds the kernel-boundary flush to regions actually written.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import WRITE_BACK, WRITE_THROUGH
from repro.core.epoch import EpochCounters


@dataclass
class RdcStats:
    """RDC probe/fill/write totals, incl. stale-epoch misses (§IV-B)."""
    probes: int = 0
    hits: int = 0
    stale_epoch_misses: int = 0
    inserts: int = 0
    writes: int = 0
    physical_resets: int = 0

    @property
    def misses(self) -> int:
        return self.probes - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def add_counts(
        self,
        probes: int = 0,
        hits: int = 0,
        stale_epoch_misses: int = 0,
        inserts: int = 0,
        writes: int = 0,
    ) -> None:
        """Batched counter update (vectorized-engine flush)."""
        self.probes += probes
        self.hits += hits
        self.stale_epoch_misses += stale_epoch_misses
        self.inserts += inserts
        self.writes += writes


#: Region granularity of the write-back dirty-map, in lines.
DIRTY_MAP_REGION_LINES = 64


class RemoteDataCache:
    """The paper's Remote Data Cache (RDC, Section III): an
    Alloy-style direct-mapped, tags-with-data cache over line numbers."""

    def __init__(
        self,
        n_lines: int,
        write_policy: str = WRITE_THROUGH,
        epoch_bits: int = 20,
    ) -> None:
        if n_lines <= 0:
            raise ValueError("RDC must have a positive line count")
        if write_policy not in (WRITE_THROUGH, WRITE_BACK):
            raise ValueError(f"unknown write policy {write_policy!r}")
        self.n_sets = n_lines
        self.write_policy = write_policy
        # Tag arrays: tag == -1 means the set is empty.  Plain lists, not
        # NumPy: the hot path indexes single elements, where ndarray
        # scalar boxing costs far more than a list load.  Bulk operations
        # (flush, reset) are rare and mutate the lists *in place* so that
        # hot-path aliases stay valid.
        self._tags = [-1] * n_lines
        self._epochs = [0] * n_lines
        self._dirty = [False] * n_lines
        self.epochs = EpochCounters(bits=epoch_bits)
        self.stats = RdcStats()
        # Write-back dirty map: region ids that have been written.
        self._dirty_regions: set[int] = set()

    # -- geometry ---------------------------------------------------------

    def set_of(self, line: int) -> int:
        return line % self.n_sets

    # -- hot-path views ----------------------------------------------------
    # The vectorized execution engine inlines probe/insert/write against
    # these live structures; any mutation must preserve the contracts of
    # those methods (tag/epoch pairing, dirty-map upkeep, counters flushed
    # through ``stats.add_counts``).

    @property
    def tags(self) -> list:
        """Per-set resident line tags (-1 = empty)."""
        return self._tags

    @property
    def line_epochs(self) -> list:
        """Per-set install epochs (valid only where a tag is set)."""
        return self._epochs

    @property
    def dirty_flags(self) -> list:
        """Per-set dirty bits (write-back policy only)."""
        return self._dirty

    @property
    def dirty_regions(self) -> set:
        """Write-back dirty-map region ids."""
        return self._dirty_regions

    # -- cache operations ---------------------------------------------------

    def probe(self, line: int, stream: int = 0) -> bool:
        """One Alloy access: read tag+data, hit iff tag and epoch match."""
        s = line % self.n_sets
        self.stats.probes += 1
        if self._tags[s] == line:
            if self.epochs.is_current(self._epochs[s], stream):
                self.stats.hits += 1
                return True
            self.stats.stale_epoch_misses += 1
        return False

    def contains(self, line: int, stream: int = 0) -> bool:
        """Side-effect-free presence check (no counters)."""
        s = line % self.n_sets
        return (
            self._tags[s] == line
            and self.epochs.is_current(self._epochs[s], stream)
        )

    def insert(self, line: int, stream: int = 0, dirty: bool = False) -> None:
        """Install *line*, displacing whatever occupied its set."""
        s = line % self.n_sets
        self._tags[s] = line
        self._epochs[s] = self.epochs.current(stream)
        self._dirty[s] = dirty
        self.stats.inserts += 1
        if dirty:
            self._note_write(line)

    def write(self, line: int, stream: int = 0) -> bool:
        """Update a resident copy of *line*; returns True if it was present.

        Under write-through the copy stays clean (data also goes to the
        home); under write-back it becomes dirty and its region is marked
        in the dirty-map.
        """
        s = line % self.n_sets
        if self._tags[s] != line or not self.epochs.is_current(
            self._epochs[s], stream
        ):
            return False
        self.stats.writes += 1
        if self.write_policy == WRITE_BACK:
            self._dirty[s] = True
            self._note_write(line)
        return True

    def invalidate_line(self, line: int) -> bool:
        """Coherence invalidation of one line; True if it was resident."""
        s = line % self.n_sets
        if self._tags[s] == line:
            self._tags[s] = -1
            self._dirty[s] = False
            return True
        return False

    # -- kernel-boundary machinery -----------------------------------------

    def _note_write(self, line: int) -> None:
        self._dirty_regions.add(line // DIRTY_MAP_REGION_LINES)

    def kernel_boundary_flush(self, stream: int = 0) -> int:
        """Software-coherence boundary: advance the epoch; flush dirty data.

        Returns the number of dirty lines written back to their home nodes
        (zero for a write-through RDC).  A counter rollover forces a
        physical reset of the tag store.
        """
        flushed = 0
        if self.write_policy == WRITE_BACK:
            flushed = sum(self._dirty)
            self._dirty[:] = [False] * self.n_sets
            self._dirty_regions.clear()
        rolled = self.epochs.advance(stream)
        if rolled:
            self.physical_reset()
        return flushed

    def dirty_lines(self) -> list[int]:
        """Resident dirty lines (write-back flush targets via dirty-map)."""
        return [t for t, d in zip(self._tags, self._dirty) if d and t >= 0]

    def dirty_map_regions(self) -> int:
        """How many dirty-map regions would be scanned at a flush."""
        return len(self._dirty_regions)

    def physical_reset(self) -> None:
        """Full tag-store reset (epoch rollover path)."""
        n = self.n_sets
        self._tags[:] = [-1] * n
        self._epochs[:] = [0] * n
        self._dirty[:] = [False] * n
        self._dirty_regions.clear()
        self.stats.physical_resets += 1

    # -- introspection ------------------------------------------------------

    def occupancy(self, stream: int = 0) -> float:
        """Fraction of sets holding a currently valid line."""
        cur = self.epochs.current(stream)
        valid = sum(
            1 for t, e in zip(self._tags, self._epochs) if t >= 0 and e == cur
        )
        return valid / self.n_sets


__all__ = [
    "DIRTY_MAP_REGION_LINES",
    "RdcStats",
    "RemoteDataCache",
]
