"""RDC hit predictor (extension).

Section IV-A notes that latency-sensitive workloads with poor RDC hit
rates (RandAccess) lose ~10% because every RDC miss serialises a local
DRAM probe in front of the remote fetch, and that "low-overhead cache
hit-predictors [39]" mitigate this.  This module implements the classic
MAP-I style predictor from the Alloy-cache paper: a small table of
saturating counters indexed by a hash of the line's region; predicted
misses skip the probe and go straight to the remote node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Prediction outcomes for the MAP-I-style RDC hit predictor."""
    predictions: int = 0
    predicted_hits: int = 0
    false_hits: int = 0    # predicted hit, actually missed (wasted probe)
    false_misses: int = 0  # predicted miss, line was resident (lost hit)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        wrong = self.false_hits + self.false_misses
        return 1.0 - wrong / self.predictions


class RdcHitPredictor:
    """Region-hashed table of 2-bit saturating counters.

    Counter >= 2 predicts *hit*.  Counters start at 3 (strongly hit) so a
    cold predictor behaves exactly like no predictor at all — it only
    learns to bypass once misses demonstrably dominate a region.
    """

    #: Lines per predictor region (tracks spatial correlation of hits).
    REGION_LINES = 64

    def __init__(self, n_entries: int = 4096) -> None:
        if n_entries <= 0:
            raise ValueError("predictor needs a positive entry count")
        self.n_entries = n_entries
        self._counters = [3] * n_entries
        self.stats = PredictorStats()

    def _index(self, line: int) -> int:
        return (line // self.REGION_LINES) % self.n_entries

    def predict_hit(self, line: int) -> bool:
        self.stats.predictions += 1
        hit = self._counters[self._index(line)] >= 2
        if hit:
            self.stats.predicted_hits += 1
        return hit

    def train(self, line: int, was_hit: bool, predicted_hit: bool) -> None:
        """Update the counter with the observed outcome."""
        i = self._index(line)
        c = self._counters[i]
        if was_hit:
            self._counters[i] = min(3, c + 1)
        else:
            self._counters[i] = max(0, c - 1)
        if predicted_hit and not was_hit:
            self.stats.false_hits += 1
        elif not predicted_hit and was_hit:
            self.stats.false_misses += 1


__all__ = [
    "PredictorStats",
    "RdcHitPredictor",
]
