"""Coherence protocols for the Remote Data Cache (Section IV-B).

Every GPU that caches remote data holds a copy that can go stale when the
home copy is written.  Four protocols are modelled:

* **none** — zero-overhead coherence.  Stale reads are permitted; this is
  the CARVE-No-Coherence *upper bound* of Fig. 9, used to isolate the
  bandwidth benefit from the coherence cost.
* **software** — the conventional GPU contract: caches of remote data are
  flushed at kernel boundaries (CARVE-SWC).  With epoch counters and a
  write-through RDC the flush itself is free, but all inter-kernel
  locality in the RDC is lost (Fig. 11).
* **hardware** — GPU-VI write-invalidate filtered through the IMST
  (CARVE-HWC): stores to lines the IMST marks as shared broadcast
  invalidates to all peers; private lines stay silent.
* **directory** — Section V-E extension for larger node counts: the home
  node tracks the sharer set per line and sends *targeted* invalidates,
  trading directory state for broadcast traffic.

The protocol object decides *who must be invalidated*; the system model
performs the invalidations and charges the link traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    RdcConfig,
)
from repro.core.imst import InMemorySharingTracker


class CoherenceProtocol(ABC):
    """Decides invalidation targets and kernel-boundary behaviour."""

    name: str = "abstract"

    #: Whether the RDC must be (epoch-)invalidated at kernel boundaries.
    flush_rdc_at_kernel_boundary: bool = False

    #: Whether :meth:`invalidation_targets` can ever return targets or has
    #: observable side effects (IMST training, directory bookkeeping).
    #: When False the execution engine skips the per-store consult
    #: entirely — a pure fast-path gate, never a semantic change.
    may_invalidate: bool = True

    #: Whether :meth:`note_remote_read` observes anything.  Same kind of
    #: fast-path gate as :attr:`may_invalidate`: protocols that leave the
    #: base no-op may set this False so the engine skips the call.
    tracks_remote_reads: bool = True

    def __init__(self, n_gpus: int) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus

    def note_remote_read(self, home: int, reader: int, line: int) -> None:
        """Observe a remote read arriving at *home* (default: ignore)."""

    @abstractmethod
    def invalidation_targets(
        self, home: int, writer: int, line: int
    ) -> Optional[list[int]]:
        """GPUs whose cached copies of *line* must be invalidated.

        ``None`` means no invalidation message is needed at all.  The
        writer is never a target.
        """

    def note_invalidated(self, home: int, line: int) -> None:
        """Observe that *line*'s remote copies were just invalidated."""


class NoCoherence(CoherenceProtocol):
    """Zero-overhead upper bound: never invalidate, never flush."""

    name = COHERENCE_NONE
    flush_rdc_at_kernel_boundary = False
    may_invalidate = False
    tracks_remote_reads = False

    def invalidation_targets(self, home, writer, line):
        return None


class SoftwareCoherence(CoherenceProtocol):
    """Kernel-boundary flush contract: no in-kernel invalidations."""

    name = COHERENCE_SOFTWARE
    flush_rdc_at_kernel_boundary = True
    may_invalidate = False
    tracks_remote_reads = False

    def invalidation_targets(self, home, writer, line):
        return None


class HardwareCoherence(CoherenceProtocol):
    """GPU-VI write-invalidate, filtered by a per-home-node IMST."""

    name = COHERENCE_HARDWARE
    flush_rdc_at_kernel_boundary = False

    def __init__(self, n_gpus: int, config: RdcConfig) -> None:
        super().__init__(n_gpus)
        self.imst = [
            InMemorySharingTracker(
                demote_prob=config.imst_demote_prob, seed=0xC0FFEE + g
            )
            for g in range(n_gpus)
        ]

    def note_remote_read(self, home: int, reader: int, line: int) -> None:
        self.imst[home].on_read(line, reader)

    def invalidation_targets(self, home, writer, line):
        needs_broadcast = self.imst[home].on_write(
            line, writer, is_local=(writer == home)
        )
        if not needs_broadcast:
            return None
        return [g for g in range(self.n_gpus) if g != writer]


@dataclass
class DirectoryStats:
    """Directory lookups and targeted invalidates (Section V-E ext.)."""
    lookups: int = 0
    targeted_invalidates: int = 0
    entries_peak: int = 0


class DirectoryCoherence(CoherenceProtocol):
    """Sharer-set directory at each home node (targeted invalidates)."""

    name = COHERENCE_DIRECTORY
    flush_rdc_at_kernel_boundary = False

    def __init__(self, n_gpus: int) -> None:
        super().__init__(n_gpus)
        # One sharer-set map per home node: line -> set of caching GPUs.
        self._sharers: list[dict[int, set[int]]] = [{} for _ in range(n_gpus)]
        self.stats = DirectoryStats()

    def note_remote_read(self, home: int, reader: int, line: int) -> None:
        sharers = self._sharers[home].setdefault(line, set())
        sharers.add(reader)
        n = len(self._sharers[home])
        if n > self.stats.entries_peak:
            self.stats.entries_peak = n

    def invalidation_targets(self, home, writer, line):
        self.stats.lookups += 1
        sharers = self._sharers[home].get(line)
        if not sharers:
            return None
        targets = sorted(g for g in sharers if g != writer)
        if not targets:
            return None
        self.stats.targeted_invalidates += len(targets)
        return targets

    def note_invalidated(self, home: int, line: int) -> None:
        self._sharers[home].pop(line, None)

    def directory_entries(self, home: int) -> int:
        return len(self._sharers[home])


def make_protocol(
    name: str, n_gpus: int, config: Optional[RdcConfig] = None
) -> CoherenceProtocol:
    """Factory mapping a config string to a protocol instance."""
    if name == COHERENCE_NONE:
        return NoCoherence(n_gpus)
    if name == COHERENCE_SOFTWARE:
        return SoftwareCoherence(n_gpus)
    if name == COHERENCE_HARDWARE:
        if config is None:
            raise ValueError("hardware coherence requires an RdcConfig")
        return HardwareCoherence(n_gpus, config)
    if name == COHERENCE_DIRECTORY:
        return DirectoryCoherence(n_gpus)
    raise ValueError(f"unknown coherence protocol {name!r}")


__all__ = [
    "CoherenceProtocol",
    "DirectoryCoherence",
    "DirectoryStats",
    "HardwareCoherence",
    "NoCoherence",
    "SoftwareCoherence",
    "make_protocol",
]
