"""Epoch-counter based RDC invalidation (Section IV-B, Fig. 10).

Physically invalidating a giga-scale RDC means reading and rewriting
gigabytes of in-memory tags (Table IV: ~2 ms), so CARVE instead stores the
*epoch* a line was installed in next to its tag.  A hit requires the
stored epoch to equal the current per-stream Epoch Counter (EPCTR); a
kernel boundary simply increments the EPCTR, invalidating every stale line
in O(1).  On the rare counter rollover the RDC is physically reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpochCounters:
    """Epoch-counter instant invalidation (Section IV-B, Fig. 10):
    per-stream 20-bit (configurable) epoch counters for one GPU."""

    bits: int = 20
    counters: dict[int, int] = field(default_factory=dict)
    rollovers: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError("epoch counter width must be in [1, 32]")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    def current(self, stream: int = 0) -> int:
        """EPCTR value of *stream* (streams start at epoch 0)."""
        return self.counters.get(stream, 0)

    def advance(self, stream: int = 0) -> bool:
        """Increment a stream's EPCTR (kernel boundary).

        Returns True if the counter rolled over, in which case the caller
        must physically reset the RDC (all stored epochs become invalid
        *except* those equal to the fresh counter value, so a reset is the
        only correct response).
        """
        value = self.counters.get(stream, 0) + 1
        if value > self.max_value:
            self.counters[stream] = 0
            self.rollovers += 1
            return True
        self.counters[stream] = value
        return False

    def is_current(self, stored_epoch: int, stream: int = 0) -> bool:
        """Whether a line installed at *stored_epoch* is still valid."""
        return stored_epoch == self.current(stream)


__all__ = [
    "EpochCounters",
]
