"""In-Memory Sharing Tracker (IMST) — Section IV-B, Fig. 12.

GPU-VI broadcasts a write-invalidate on *every* store, which would swamp
the links.  Invalidates are only needed for lines that some other GPU may
be caching, so CARVE-HWC keeps a 2-bit sharing state per cache line in the
spare ECC bits at the line's *home node*:

    UNCACHED -> PRIVATE -> READ_SHARED -> RW_SHARED

The IMST tracks *global history* beyond cache residency (unlike MESI's
instantaneous states), so a line could remain shared forever; a local
write therefore probabilistically (default 1%) demotes the line back to
PRIVATE after broadcasting invalidates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# 2-bit IMST states.
UNCACHED = 0
PRIVATE = 1
READ_SHARED = 2
RW_SHARED = 3

STATE_NAMES = {
    UNCACHED: "uncached",
    PRIVATE: "private",
    READ_SHARED: "read_shared",
    RW_SHARED: "rw_shared",
}


@dataclass
class ImstStats:
    """IMST traffic: broadcasts sent, filtered, demotions (Fig. 12)."""
    reads: int = 0
    writes: int = 0
    broadcasts: int = 0
    broadcasts_avoided: int = 0
    demotions: int = 0

    @property
    def broadcast_rate(self) -> float:
        return self.broadcasts / self.writes if self.writes else 0.0


class InMemorySharingTracker:
    """The In-Memory Sharing Tracker (IMST, Section IV-B, Fig. 12):
    2-bit sharing state per line at one home node.

    State is stored sparsely: untouched lines are implicitly UNCACHED.
    Alongside the 2-bit state we track the private owner so that an
    owner's own writes need no broadcast (consistent with Fig. 12's
    private state meaning "cached by exactly one GPU").
    """

    def __init__(self, demote_prob: float = 0.01, seed: int = 0xC0FFEE) -> None:
        if not 0.0 <= demote_prob <= 1.0:
            raise ValueError("demotion probability must be in [0, 1]")
        self.demote_prob = demote_prob
        self._state: dict[int, int] = {}
        self._owner: dict[int, int] = {}
        self._rng = random.Random(seed)
        self.stats = ImstStats()

    def state_of(self, line: int) -> int:
        return self._state.get(line, UNCACHED)

    def owner_of(self, line: int) -> int:
        """Private owner of *line* (-1 when not in PRIVATE state)."""
        if self.state_of(line) == PRIVATE:
            return self._owner.get(line, -1)
        return -1

    # -- transitions performed by the home memory controller ---------------

    def on_read(self, line: int, reader: int) -> int:
        """Record a read by *reader*; returns the resulting state."""
        self.stats.reads += 1
        state = self._state.get(line, UNCACHED)
        if state == UNCACHED:
            self._state[line] = PRIVATE
            self._owner[line] = reader
            return PRIVATE
        if state == PRIVATE and self._owner.get(line) != reader:
            self._state[line] = READ_SHARED
            return READ_SHARED
        return state

    def on_write(self, line: int, writer: int, is_local: bool) -> bool:
        """Record a write; returns True if an invalidate broadcast is needed.

        A broadcast is required whenever the line may be cached by another
        GPU (READ_SHARED, RW_SHARED, or PRIVATE to a different owner).
        Local writes may then probabilistically demote the line to PRIVATE
        so that hot, re-privatised data stops broadcasting.
        """
        self.stats.writes += 1
        state = self._state.get(line, UNCACHED)
        needs_broadcast: bool
        if state == UNCACHED:
            self._state[line] = PRIVATE
            self._owner[line] = writer
            needs_broadcast = False
        elif state == PRIVATE:
            if self._owner.get(line) == writer:
                needs_broadcast = False
            else:
                self._state[line] = RW_SHARED
                needs_broadcast = True
        elif state == READ_SHARED:
            self._state[line] = RW_SHARED
            needs_broadcast = True
        else:  # RW_SHARED
            needs_broadcast = True
        if needs_broadcast:
            self.stats.broadcasts += 1
            if is_local and self._rng.random() < self.demote_prob:
                self._state[line] = PRIVATE
                self._owner[line] = writer
                self.stats.demotions += 1
        else:
            self.stats.broadcasts_avoided += 1
        return needs_broadcast

    # -- diagnostics --------------------------------------------------------

    def histogram(self) -> dict[str, int]:
        hist = {name: 0 for name in STATE_NAMES.values()}
        for state in self._state.values():
            hist[STATE_NAMES[state]] += 1
        return hist

    def storage_bits(self) -> int:
        """ECC bits consumed: 2 bits per tracked line."""
        return 2 * len(self._state)


__all__ = [
    "ImstStats",
    "InMemorySharingTracker",
    "PRIVATE",
    "READ_SHARED",
    "RW_SHARED",
    "STATE_NAMES",
    "UNCACHED",
]
