"""Sharing classification of pages and cache lines (Figs. 4 and 5).

Given a workload trace and a CTA schedule, every page (and line) is
classified by *which GPUs read and wrote it* over the whole execution:

* ``private``   — accessed by exactly one GPU;
* ``ro_shared`` — accessed by two or more GPUs, never written;
* ``rw_shared`` — accessed by two or more GPUs and written by someone.

The page-vs-line comparison exposes *false sharing*: with 2 MB pages a
single written line makes the whole page read-write shared, while at
128 B granularity most of those lines are read-only.  This observation is
what makes a fine-grain RDC (and its cheap coherence) viable.

The same profile drives the software replication policies: read-only
shared pages are replicable; an ideal system replicates every shared page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig
from repro.gpu.cta import WorkloadTrace
from repro.gpu.scheduler import assign_ctas

PRIVATE = "private"
RO_SHARED = "ro_shared"
RW_SHARED = "rw_shared"

CATEGORIES = (PRIVATE, RO_SHARED, RW_SHARED)


@dataclass
class AccessDistribution:
    """Fraction of dynamic accesses landing in each sharing category."""

    private: float = 0.0
    ro_shared: float = 0.0
    rw_shared: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            PRIVATE: self.private,
            RO_SHARED: self.ro_shared,
            RW_SHARED: self.rw_shared,
        }

    @property
    def shared(self) -> float:
        return self.ro_shared + self.rw_shared


@dataclass
class SharingProfile:
    """Complete sharing metadata of one (workload, schedule) pairing."""

    workload: str
    n_gpus: int
    lines_per_page: int
    page_bytes: int
    #: page -> bitmask of GPUs that accessed / wrote it.
    page_accessors: dict[int, int] = field(default_factory=dict)
    page_writers: dict[int, int] = field(default_factory=dict)
    #: line -> bitmask of GPUs that accessed / wrote it.
    line_accessors: dict[int, int] = field(default_factory=dict)
    line_writers: dict[int, int] = field(default_factory=dict)
    #: page -> total dynamic accesses (drives the UM spill model).
    page_access_counts: dict[int, int] = field(default_factory=dict)
    #: line -> total dynamic accesses.
    line_access_counts: dict[int, int] = field(default_factory=dict)

    # -- classification -----------------------------------------------------

    def classify_page(self, page: int) -> str:
        return self._classify(
            self.page_accessors.get(page, 0), self.page_writers.get(page, 0)
        )

    def classify_line(self, line: int) -> str:
        return self._classify(
            self.line_accessors.get(line, 0), self.line_writers.get(line, 0)
        )

    @staticmethod
    def _classify(accessors_mask: int, writers_mask: int) -> str:
        n_accessors = bin(accessors_mask).count("1")
        if n_accessors <= 1:
            return PRIVATE
        return RW_SHARED if writers_mask else RO_SHARED

    # -- policy inputs ------------------------------------------------------

    def ro_shared_pages(self) -> set[int]:
        return {p for p in self.page_accessors if self.classify_page(p) == RO_SHARED}

    def shared_pages(self) -> set[int]:
        return {p for p in self.page_accessors if self.classify_page(p) != PRIVATE}

    def accessors_of_page(self, page: int) -> list[int]:
        mask = self.page_accessors.get(page, 0)
        return [g for g in range(self.n_gpus) if mask >> g & 1]

    # -- Fig. 4: dynamic access distribution ---------------------------------

    def access_distribution(self, granularity: str = "page") -> AccessDistribution:
        if granularity == "page":
            counts, classify = self.page_access_counts, self.classify_page
        elif granularity == "line":
            counts, classify = self.line_access_counts, self.classify_line
        else:
            raise ValueError(f"unknown granularity {granularity!r}")
        totals = {c: 0 for c in CATEGORIES}
        for unit, n in counts.items():
            totals[classify(unit)] += n
        total = sum(totals.values())
        if not total:
            return AccessDistribution()
        return AccessDistribution(
            private=totals[PRIVATE] / total,
            ro_shared=totals[RO_SHARED] / total,
            rw_shared=totals[RW_SHARED] / total,
        )

    # -- Fig. 5: shared working-set footprint ---------------------------------

    def shared_footprint_bytes(self) -> int:
        """Memory needed system-wide to cover the shared working set.

        Each shared page must be held by every accessor beyond its home,
        so the cover cost is ``(accessors - 1) * page_bytes`` summed over
        shared pages — the paper's "total number of unique remote pages
        fetched by the different GPUs".

        The result is in *real* (unscaled) bytes: capacity scaling shrinks
        the page size and the footprint together, so the page count is
        scale-invariant and pricing each page at the real ``page_bytes``
        recovers the real footprint.
        """
        total = 0
        for page, mask in self.page_accessors.items():
            n = bin(mask).count("1")
            if n > 1:
                total += (n - 1) * self.page_bytes
        return total

    def footprint_bytes(self) -> int:
        return len(self.page_accessors) * self.page_bytes

    def sorted_page_access_counts(self) -> list[int]:
        """Per-page access counts, hottest first (UM spill model input)."""
        return sorted(self.page_access_counts.values(), reverse=True)


def profile_sharing(trace: WorkloadTrace, config: SystemConfig) -> SharingProfile:
    """Build the :class:`SharingProfile` of *trace* under *config*."""
    lpp = config.lines_per_page
    profile = SharingProfile(
        workload=trace.name,
        n_gpus=config.n_gpus,
        lines_per_page=lpp,
        page_bytes=config.page_bytes,
    )
    pa, pw = profile.page_accessors, profile.page_writers
    la, lw = profile.line_accessors, profile.line_writers
    pc, lc = profile.page_access_counts, profile.line_access_counts
    for kernel in trace.kernels:
        cta_to_gpu = assign_ctas(kernel, config.n_gpus, config.scheduling)
        access_gpu = cta_to_gpu[kernel.cta_ids]
        pages = kernel.lines // lpp
        for g in range(config.n_gpus):
            mask = access_gpu == g
            bit = 1 << g
            for p in np.unique(pages[mask]):
                pa[int(p)] = pa.get(int(p), 0) | bit
            for p in np.unique(pages[mask & kernel.is_write]):
                pw[int(p)] = pw.get(int(p), 0) | bit
            for ln in np.unique(kernel.lines[mask]):
                la[int(ln)] = la.get(int(ln), 0) | bit
            for ln in np.unique(kernel.lines[mask & kernel.is_write]):
                lw[int(ln)] = lw.get(int(ln), 0) | bit
        upages, counts = np.unique(pages, return_counts=True)
        for p, n in zip(upages, counts):
            pc[int(p)] = pc.get(int(p), 0) + int(n)
        ulines, counts = np.unique(kernel.lines, return_counts=True)
        for ln, n in zip(ulines, counts):
            lc[int(ln)] = lc.get(int(ln), 0) + int(n)
    return profile
