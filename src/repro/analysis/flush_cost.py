"""Analytic kernel-launch delay under software coherence (Table IV).

Software coherence requires, at every kernel boundary, (a) invalidating
every cached line of remote data and (b) flushing dirty data home.  For
an on-chip LLC both costs hide inside the kernel-launch latency; for a
giga-scale RDC the naive costs reach milliseconds — which is what the
epoch-counter invalidation (0 ms) and write-through policy (0 ms flush)
eliminate.

All costs are computed from the system configuration in *real* units
(the scale factor does not apply: this is architecture arithmetic, not
simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINE_BYTES, SystemConfig


@dataclass(frozen=True)
class FlushCost:
    """Worst-case kernel-boundary coherence cost of one cache, seconds."""

    invalidate_s: float
    flush_dirty_s: float

    @property
    def total_s(self) -> float:
        return self.invalidate_s + self.flush_dirty_s


def llc_flush_cost(config: SystemConfig, banks: int = 16) -> FlushCost:
    """On-chip LLC: tag-walk invalidation + dirty writeback to local DRAM.

    Invalidation walks every line's tag at one line per bank per cycle;
    the dirty flush streams (worst case) the whole LLC to local memory.
    """
    lines = config.gpu.l2_bytes // LINE_BYTES
    invalidate = lines / banks / config.gpu.freq_hz
    flush = config.gpu.l2_bytes / config.memory.bandwidth_bytes_per_s
    return FlushCost(invalidate_s=invalidate, flush_dirty_s=flush)


def rdc_flush_cost_naive(config: SystemConfig) -> FlushCost:
    """RDC without epoch counters / write-through.

    Invalidation must read+write every in-memory tag (the whole carve-out
    at local bandwidth); the dirty flush streams the carve-out to remote
    memory over the inter-GPU link.
    """
    if config.rdc is None:
        raise ValueError("configuration has no RDC")
    size = config.rdc.size_bytes
    invalidate = size / config.memory.bandwidth_bytes_per_s
    flush = size / config.link.inter_gpu_bytes_per_s
    return FlushCost(invalidate_s=invalidate, flush_dirty_s=flush)


def rdc_flush_cost_carve(config: SystemConfig) -> FlushCost:
    """RDC with epoch-counter invalidation and a write-through policy.

    Epoch increment invalidates in O(1); write-through leaves nothing
    dirty.  Both costs are exactly zero — Table IV's "=> 0 ms" entries.
    """
    if config.rdc is None:
        raise ValueError("configuration has no RDC")
    return FlushCost(invalidate_s=0.0, flush_dirty_s=0.0)


def table4_rows(config: SystemConfig) -> list[tuple[str, str, str]]:
    """Rows of Table IV: (cache, invalidate cost, dirty-flush cost)."""
    if config.rdc is None:
        raise ValueError("configuration has no RDC")
    llc = llc_flush_cost(config)
    naive = rdc_flush_cost_naive(config)
    carve = rdc_flush_cost_carve(config)

    def fmt(seconds: float) -> str:
        if seconds == 0:
            return "0 ms"
        if seconds < 1e-3:
            return f"{seconds * 1e6:.0f} us"
        return f"{seconds * 1e3:.0f} ms"

    return [
        ("L2 cache", fmt(llc.invalidate_s), fmt(llc.flush_dirty_s)),
        ("RDC (naive)", fmt(naive.invalidate_s), fmt(naive.flush_dirty_s)),
        ("RDC (epoch + write-through)", fmt(carve.invalidate_s),
         fmt(carve.flush_dirty_s)),
    ]
