"""Text rendering of the paper's tables and figures.

Benchmarks print through these helpers so every figure comes out as the
same kind of row/series the paper reports, ready to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.perf.model import geometric_mean


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Plain fixed-width table (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def per_workload_table(
    series: Mapping[str, Mapping[str, float]],
    value_format: str = "{:.2f}",
    title: Optional[str] = None,
    geomean_row: bool = True,
) -> str:
    """Render {config -> {workload -> value}} with one column per config."""
    configs = list(series)
    workloads: list[str] = []
    for cfg in configs:
        for w in series[cfg]:
            if w not in workloads:
                workloads.append(w)
    headers = ["workload"] + configs
    rows = []
    for w in workloads:
        rows.append(
            [w]
            + [
                value_format.format(series[c][w]) if w in series[c] else "-"
                for c in configs
            ]
        )
    if geomean_row:
        gm_cells = []
        for c in configs:
            values = [v for v in series[c].values() if v > 0]
            gm_cells.append(value_format.format(geometric_mean(values)))
        rows.append(["GEOMEAN"] + gm_cells)
    return format_table(headers, rows, title=title)


def series_table(
    series: Mapping[str, Mapping[float, float]],
    x_label: str,
    value_format: str = "{:.2f}",
    x_format: str = "{:g}",
    title: Optional[str] = None,
) -> str:
    """Render {config -> {x -> y}} with one row per x value (Fig. 14)."""
    configs = list(series)
    xs: list[float] = []
    for cfg in configs:
        for x in series[cfg]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    headers = [x_label] + configs
    rows = []
    for x in xs:
        rows.append(
            [x_format.format(x)]
            + [
                value_format.format(series[c][x]) if x in series[c] else "-"
                for c in configs
            ]
        )
    return format_table(headers, rows, title=title)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """ASCII horizontal bar chart (quick visual sanity checks)."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        bar = "#" * (int(round(width * v / peak)) if peak > 0 else 0)
        lines.append(f"{name.ljust(label_w)} | {bar} {value_format.format(v)}")
    return "\n".join(lines)
