"""Per-run bottleneck and traffic diagnostics.

When a configuration underperforms, the first questions are *which
resource saturated* and *where the bytes went*.  This module condenses a
:class:`RunResult` into those answers: per-kernel bottleneck labels, a
traffic breakdown by destination (L1/L2/local DRAM/RDC/remote), and the
time split the roofline model assigned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import LINE_BYTES, SystemConfig
from repro.perf.model import PerformanceModel
from repro.perf.stats import RunResult


@dataclass
class TrafficBreakdown:
    """Where demand accesses were served, as fractions of all accesses."""

    accesses: int = 0
    l1_hits: float = 0.0
    l2_hits: float = 0.0
    local_dram: float = 0.0
    rdc_hits: float = 0.0
    remote: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "local_dram": self.local_dram,
            "rdc_hits": self.rdc_hits,
            "remote": self.remote,
        }


@dataclass
class BottleneckReport:
    """Condensed diagnostics for one run under one configuration."""

    workload: str
    config_label: str
    total_time_s: float
    #: kernel-count histogram of the binding resource per GPU-kernel.
    bottlenecks: dict[str, int] = field(default_factory=dict)
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    #: bytes moved over the busiest directional link, summed over kernels.
    busiest_link_bytes: int = 0
    #: total bytes through all local DRAM devices.
    dram_bytes: int = 0
    #: coherence invalidation messages sent.
    invalidates: int = 0

    @property
    def dominant_bottleneck(self) -> str:
        if not self.bottlenecks:
            return "idle"
        return max(self.bottlenecks, key=self.bottlenecks.get)  # type: ignore[arg-type]


def traffic_breakdown(result: RunResult) -> TrafficBreakdown:
    """Classify where each measured demand access was served."""
    t = result.total()
    if not t.accesses:
        return TrafficBreakdown()
    n = t.accesses
    # RDC hits are included in local_reads; split them out.
    local_mem = t.local_reads + t.local_writes - t.rdc_hits
    return TrafficBreakdown(
        accesses=n,
        l1_hits=t.l1_hits / n,
        l2_hits=t.l2_hits / n,
        local_dram=max(0, local_mem) / n,
        rdc_hits=t.rdc_hits / n,
        remote=(t.remote_reads + t.remote_writes) / n,
    )


def analyze(result: RunResult, config: SystemConfig) -> BottleneckReport:
    """Build the full diagnostic report for a run."""
    model = PerformanceModel(config)
    rt = model.run_time(result)
    hist: dict[str, int] = {}
    for kt in rt.kernels:
        for b in kt.bottlenecks:
            hist[b] = hist.get(b, 0) + 1
    total = result.total()
    busiest = 0
    for ks in result.measured_kernels():
        for g in range(ks.n_gpus):
            busiest = max(busiest, ks.max_link_bytes(g))
    return BottleneckReport(
        workload=result.workload,
        config_label=result.config_label,
        total_time_s=rt.total_s,
        bottlenecks=hist,
        traffic=traffic_breakdown(result),
        busiest_link_bytes=busiest,
        dram_bytes=(total.dram_reads + total.dram_writes) * LINE_BYTES,
        invalidates=total.invalidates_sent,
    )


def render(report: BottleneckReport) -> str:
    """Human-readable one-screen summary."""
    lines = [
        f"{report.workload} on {report.config_label}",
        f"  time: {report.total_time_s:.3e} s "
        f"(dominant bottleneck: {report.dominant_bottleneck})",
        "  bottleneck histogram: "
        + ", ".join(f"{k}={v}" for k, v in sorted(report.bottlenecks.items())),
        "  demand access mix:",
    ]
    for name, frac in report.traffic.as_dict().items():
        lines.append(f"    {name:<10} {frac:6.1%}")
    lines.append(f"  busiest link: {report.busiest_link_bytes / 1024:.0f} KiB")
    lines.append(f"  DRAM traffic: {report.dram_bytes / 1024:.0f} KiB")
    lines.append(f"  invalidates sent: {report.invalidates}")
    return "\n".join(lines)
