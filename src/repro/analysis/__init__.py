"""analysis subpackage of the CARVE reproduction."""
