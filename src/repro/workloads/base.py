"""Workload specification and trace generation.

The paper drives its simulator with traces of 20 proprietary CUDA
applications.  We cannot have those traces, so each benchmark is replaced
by a :class:`WorkloadSpec` — a parameterised generator reproducing the
*observable characteristics* every figure depends on:

* memory footprint (Table II, scaled by the system config),
* the fraction of pages shared between GPUs, and of those how many are
  written (page- vs line-granularity read-write sharing, Fig. 4),
* the dynamic fraction of accesses hitting shared data (Fig. 8's remote
  fraction after first-touch placement),
* intra- vs inter-kernel reuse of the shared working set (the CARVE-SWC
  vs CARVE-HWC distinction of Fig. 11),
* compute intensity and memory-level parallelism (which roofline term
  dominates; RandAccess's latency sensitivity).

The memory layout is: per-CTA private slices first, then a shared region.
Private slices are *not* page aligned, so CTA batches on different GPUs
falsely share boundary pages exactly as large pages cause in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.config import SystemConfig
from repro.gpu.cta import KernelTrace, WorkloadTrace
from repro.workloads import patterns


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to synthesise one benchmark's trace."""

    name: str
    abbr: str
    suite: str
    #: Real memory footprint (Table II), scaled down at generation time.
    footprint_bytes: int
    n_kernels: int = 6
    n_ctas: int = 64
    #: Dynamic accesses per kernel ~= coverage x footprint lines, clamped
    #: to [min_accesses, max_accesses].
    coverage: float = 1.5
    min_accesses: int = 8_000
    max_accesses: int = 80_000
    #: Fraction of footprint pages in the shared region.
    shared_page_frac: float = 0.3
    #: Fraction of dynamic accesses that target the shared region.
    shared_access_frac: float = 0.3
    #: Of shared pages, the fraction that ever receive a write.
    rw_page_frac: float = 0.5
    #: Of the lines in a written shared page, the fraction actually
    #: written (low values = false sharing at page granularity).
    line_write_frac: float = 0.1
    #: Store fraction of *private* accesses.
    write_frac: float = 0.25
    #: Store fraction of *shared* accesses.  Kept low for the read-write
    #: shared workloads: most page-level read-write sharing is false
    #: sharing, so line-granularity stores to shared data are rare
    #: (Fig. 4) — this is precisely what makes a write-through RDC and
    #: IMST-filtered invalidates cheap.
    shared_write_frac: float = 0.05
    #: Scaled footprints below this floor are padded up to it: a workload
    #: must stay large enough for first-touch page placement and cache
    #: statistics to be meaningful (documented fidelity trade-off).
    min_footprint_lines: int = 8192
    private_pattern: str = "stream"
    shared_pattern: str = "uniform"
    zipf_alpha: float = 1.2
    #: 0 = every kernel reuses the whole shared region; 1 = each kernel
    #: touches a disjoint slice (no inter-kernel shared reuse).
    inter_kernel_shift: float = 0.0
    instr_per_access: float = 10.0
    concurrency_per_sm: float = 32.0
    #: Extra leading kernels executed to warm caches/RDC/page tables but
    #: excluded from measurement (cold-start amortisation; the paper's
    #: 4-billion-instruction runs amortise cold misses that our short
    #: traces would otherwise over-count).
    warmup_kernels: int = 3
    #: Relative spread of per-CTA work (real grids are never perfectly
    #: balanced; this is what keeps the ideal system below a 4x speedup).
    cta_imbalance: float = 0.10
    #: Fraction of each CTA's private slice that is *cold* (initialisation
    #: data, lookup tails) and the share of private accesses it receives.
    #: Real applications have strongly skewed page heat — the property the
    #: Unified-Memory spill model of Table V(b) relies on.
    cold_page_frac: float = 0.30
    cold_access_frac: float = 0.03
    seed: int = 1

    def __post_init__(self) -> None:
        for frac_name in (
            "shared_page_frac",
            "shared_access_frac",
            "rw_page_frac",
            "line_write_frac",
            "write_frac",
            "shared_write_frac",
            "inter_kernel_shift",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1], got {value}")
        if self.footprint_bytes <= 0:
            raise ValueError("footprint must be positive")
        if self.n_kernels <= 0 or self.n_ctas <= 0:
            raise ValueError("kernel and CTA counts must be positive")
        if self.warmup_kernels < 0:
            raise ValueError("warmup kernel count cannot be negative")
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if self.min_accesses <= 0 or self.max_accesses < self.min_accesses:
            raise ValueError("access clamp range is invalid")
        if self.private_pattern not in patterns.PATTERNS:
            raise ValueError(f"unknown private pattern {self.private_pattern!r}")
        if self.shared_pattern not in patterns.PATTERNS:
            raise ValueError(f"unknown shared pattern {self.shared_pattern!r}")
        if not 0.0 <= self.cta_imbalance <= 1.0:
            raise ValueError("cta_imbalance must be in [0, 1]")
        if not 0.0 <= self.cold_page_frac < 1.0:
            raise ValueError("cold_page_frac must be in [0, 1)")
        if not 0.0 <= self.cold_access_frac <= 1.0:
            raise ValueError("cold_access_frac must be in [0, 1]")

    def scaled(self, **changes) -> "WorkloadSpec":
        """A copy with fields replaced (convenience for sweeps/tests)."""
        return replace(self, **changes)


@dataclass
class _Layout:
    """Resolved scaled memory layout of a workload."""

    footprint_lines: int
    lines_per_page: int
    private_lines: int
    cta_slice_lines: int
    shared_start: int
    shared_lines: int
    persistent_shared_lines: int
    #: writable lines inside RW shared pages (the false-sharing targets).
    writable_shared: np.ndarray = field(default_factory=lambda: np.empty(0))


def _resolve_layout(spec: WorkloadSpec, config: SystemConfig) -> _Layout:
    lpp = config.lines_per_page
    footprint_lines = max(
        config.lines(spec.footprint_bytes), 4 * lpp, spec.min_footprint_lines
    )
    n_pages = max(4, footprint_lines // lpp)
    shared_pages = max(1, int(round(n_pages * spec.shared_page_frac)))
    if spec.shared_page_frac == 0.0:
        shared_pages = 1  # a token shared page keeps the layout total
    private_pages = max(1, n_pages - shared_pages)
    private_lines = private_pages * lpp
    shared_lines = shared_pages * lpp
    persistent = max(
        1, int(round(shared_lines * (1.0 - spec.inter_kernel_shift)))
    )
    rw_pages = int(round(shared_pages * spec.rw_page_frac))
    writable: list[int] = []
    writable_per_page = max(1, int(round(lpp * spec.line_write_frac)))
    shared_start = private_lines
    for p in range(rw_pages):
        page_first = shared_start + p * lpp
        # Spread writable lines across the page with a fixed stride.
        step = max(1, lpp // writable_per_page)
        for i in range(writable_per_page):
            writable.append(page_first + (i * step) % lpp)
    return _Layout(
        footprint_lines=private_lines + shared_lines,
        lines_per_page=lpp,
        private_lines=private_lines,
        cta_slice_lines=max(1, private_lines // spec.n_ctas),
        shared_start=shared_start,
        shared_lines=shared_lines,
        persistent_shared_lines=persistent,
        writable_shared=np.asarray(writable, dtype=np.int64)
        if writable
        else np.empty(0, dtype=np.int64),
    )


def _accesses_per_kernel(spec: WorkloadSpec, layout: _Layout) -> int:
    raw = int(spec.coverage * layout.footprint_lines)
    return int(min(max(raw, spec.min_accesses), spec.max_accesses))


def _shared_window(
    spec: WorkloadSpec, layout: _Layout, kernel: int
) -> tuple[int, int]:
    """Shared sub-region accessed by *kernel*: persistent + its own slice."""
    if spec.inter_kernel_shift == 0.0:
        return layout.shared_start, layout.shared_lines
    transient_total = layout.shared_lines - layout.persistent_shared_lines
    if transient_total <= 0:
        return layout.shared_start, layout.shared_lines
    slice_lines = max(1, transient_total // spec.n_kernels)
    start = (
        layout.shared_start
        + layout.persistent_shared_lines
        + (kernel % spec.n_kernels) * slice_lines
    )
    end = min(start + slice_lines, layout.shared_start + layout.shared_lines)
    return start, max(1, end - start)


def generate_trace(
    spec: WorkloadSpec, config: SystemConfig, trace_seed: Optional[int] = None
) -> WorkloadTrace:
    """Synthesise the full workload trace of *spec* under *config*."""
    layout = _resolve_layout(spec, config)
    per_kernel = _accesses_per_kernel(spec, layout)
    per_cta = max(1, per_kernel // spec.n_ctas)
    seed = spec.seed if trace_seed is None else trace_seed
    kernels = []
    total_kernels = spec.warmup_kernels + spec.n_kernels
    for k in range(total_kernels):
        rng = np.random.default_rng((seed << 16) + k)
        kernel = _generate_kernel(spec, layout, k, per_cta, rng)
        kernel.warmup = k < spec.warmup_kernels
        kernels.append(kernel)
    return WorkloadTrace(name=spec.abbr, kernels=kernels)


def _generate_kernel(
    spec: WorkloadSpec,
    layout: _Layout,
    kernel_id: int,
    per_cta: int,
    rng: np.random.Generator,
) -> KernelTrace:
    cta_blocks: list[np.ndarray] = []
    write_blocks: list[np.ndarray] = []
    cta_id_blocks: list[np.ndarray] = []
    shared_start, shared_lines = _shared_window(spec, layout, kernel_id)
    win_writable = layout.writable_shared
    if win_writable.size:
        in_window = (win_writable >= shared_start) & (
            win_writable < shared_start + shared_lines
        )
        win_writable = win_writable[in_window]
    for cta in range(spec.n_ctas):
        cta_work = per_cta
        if spec.cta_imbalance:
            factor = 1.0 + spec.cta_imbalance * float(rng.uniform(-1.0, 1.0))
            cta_work = max(1, int(round(per_cta * factor)))
        n_shared = rng.binomial(cta_work, spec.shared_access_frac)
        n_private = cta_work - n_shared
        pieces: list[np.ndarray] = []
        wpieces: list[np.ndarray] = []
        if n_private:
            slice_start = (cta * layout.cta_slice_lines) % max(
                1, layout.private_lines
            )
            slice_len = max(
                1,
                min(layout.cta_slice_lines, layout.private_lines - slice_start),
            )
            # Carve the tail of the slice out as cold data: it keeps its
            # footprint but receives only cold_access_frac of the traffic.
            cold_len = int(slice_len * spec.cold_page_frac)
            hot_len = max(1, slice_len - cold_len)
            n_cold = (
                rng.binomial(n_private, spec.cold_access_frac) if cold_len else 0
            )
            n_hot = n_private - n_cold
            if n_hot:
                lines = patterns.generate(
                    spec.private_pattern,
                    slice_start,
                    hot_len,
                    n_hot,
                    rng,
                    offset=kernel_id * 7,  # different sweep phase per kernel
                    alpha=spec.zipf_alpha,
                )
                pieces.append(lines)
                wpieces.append(rng.random(n_hot) < spec.write_frac)
            if n_cold:
                lines = patterns.uniform(
                    slice_start + hot_len, cold_len, n_cold, rng
                )
                pieces.append(lines)
                wpieces.append(rng.random(n_cold) < spec.write_frac)
        if n_shared:
            writes = rng.random(n_shared) < spec.shared_write_frac
            reads_lines = patterns.generate(
                spec.shared_pattern,
                shared_start,
                shared_lines,
                n_shared,
                rng,
                offset=kernel_id * 3,
                alpha=spec.zipf_alpha,
            )
            if win_writable.size:
                # Shared stores only touch the designated writable lines
                # (false sharing: few written lines per RW page).
                n_writes = int(writes.sum())
                if n_writes:
                    reads_lines = reads_lines.copy()
                    reads_lines[writes] = rng.choice(
                        win_writable, size=n_writes
                    )
            else:
                writes[:] = False  # read-only shared region
            pieces.append(reads_lines)
            wpieces.append(writes)
        if not pieces:
            continue
        lines = np.concatenate(pieces)
        writes = np.concatenate(wpieces)
        # Interleave private and shared accesses within the CTA.
        order = rng.permutation(len(lines))
        cta_blocks.append(lines[order])
        write_blocks.append(writes[order])
        cta_id_blocks.append(np.full(len(lines), cta, dtype=np.int32))
    return KernelTrace(
        kernel_id=kernel_id,
        n_ctas=spec.n_ctas,
        cta_ids=np.concatenate(cta_id_blocks),
        lines=np.concatenate(cta_blocks),
        is_write=np.concatenate(write_blocks),
        instr_per_access=spec.instr_per_access,
        concurrency_per_sm=spec.concurrency_per_sm,
    )


def expected_footprint_bytes(spec: WorkloadSpec, config: SystemConfig) -> int:
    """Scaled footprint the generator will lay out (diagnostics)."""
    layout = _resolve_layout(spec, config)
    return layout.footprint_lines * 128


def trace_cost_estimate(spec: WorkloadSpec, config: SystemConfig) -> int:
    """Total dynamic accesses a full trace will contain (incl. warmup)."""
    layout = _resolve_layout(spec, config)
    per_kernel = _accesses_per_kernel(spec, layout)
    per_cta = max(1, per_kernel // spec.n_ctas)
    return per_cta * spec.n_ctas * (spec.n_kernels + spec.warmup_kernels)
