"""Access-pattern primitives for synthetic trace generation.

Each primitive returns a NumPy array of line numbers inside a region
``[start, start + n_lines)``.  They are the building blocks the workload
generator composes into per-CTA access streams:

* ``stream``  — sequential sweep (stream-triad, dense kernels);
* ``strided`` — fixed-stride sweep (structured grids, conv layers);
* ``uniform`` — uniform random (hash tables, RandAccess);
* ``zipf``    — power-law popularity (XSBench cross-section lookups,
  graph frontiers), with hot ranks scattered across pages so hotness is
  not an artifact of page layout;
* ``stencil`` — sweep plus near-neighbour offsets (AMR/multigrid codes).
"""

from __future__ import annotations

import numpy as np

#: Large odd constant used to scatter zipf ranks across a region.
_SCATTER = 2654435761


def stream(start: int, n_lines: int, count: int, offset: int = 0) -> np.ndarray:
    """Sequential sweep of the region, wrapping as needed."""
    _check(start, n_lines, count)
    idx = (np.arange(count, dtype=np.int64) + offset) % n_lines
    return start + idx


def strided(
    start: int, n_lines: int, count: int, stride: int = 4, offset: int = 0
) -> np.ndarray:
    """Fixed-stride sweep; co-prime strides cover the whole region."""
    _check(start, n_lines, count)
    if stride <= 0:
        raise ValueError("stride must be positive")
    idx = (np.arange(count, dtype=np.int64) * stride + offset) % n_lines
    return start + idx


def uniform(
    start: int, n_lines: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random lines in the region."""
    _check(start, n_lines, count)
    return start + rng.integers(0, n_lines, size=count, dtype=np.int64)


def zipf(
    start: int,
    n_lines: int,
    count: int,
    rng: np.random.Generator,
    alpha: float = 1.2,
) -> np.ndarray:
    """Power-law line popularity: rank r is accessed with weight r^-alpha.

    Ranks are scattered across the region so the hot set spans many pages
    (as real hot data does), rather than clustering at the region start.
    """
    _check(start, n_lines, count)
    if alpha <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    ranks = rng.zipf(alpha, size=count).astype(np.int64) - 1
    ranks %= n_lines
    scattered = (ranks * _SCATTER) % n_lines
    return start + scattered


def stencil(
    start: int,
    n_lines: int,
    count: int,
    rng: np.random.Generator,
    row_lines: int = 64,
    offset: int = 0,
) -> np.ndarray:
    """Sweep with +/-1 and +/-row neighbour touches (5-point stencil)."""
    _check(start, n_lines, count)
    if row_lines <= 0:
        raise ValueError("row_lines must be positive")
    base = (np.arange(count, dtype=np.int64) + offset) % n_lines
    offsets = rng.choice(
        np.asarray([0, 0, 1, -1, row_lines, -row_lines], dtype=np.int64),
        size=count,
    )
    return start + (base + offsets) % n_lines


PATTERNS = {
    "stream": stream,
    "strided": strided,
    "uniform": uniform,
    "zipf": zipf,
    "stencil": stencil,
}

#: Patterns that need an RNG argument.
RANDOM_PATTERNS = frozenset({"uniform", "zipf", "stencil"})


def generate(
    pattern: str,
    start: int,
    n_lines: int,
    count: int,
    rng: np.random.Generator,
    *,
    offset: int = 0,
    stride: int = 4,
    alpha: float = 1.2,
) -> np.ndarray:
    """Dispatch to a named pattern with the appropriate arguments."""
    if pattern == "stream":
        return stream(start, n_lines, count, offset=offset)
    if pattern == "strided":
        return strided(start, n_lines, count, stride=stride, offset=offset)
    if pattern == "uniform":
        return uniform(start, n_lines, count, rng)
    if pattern == "zipf":
        return zipf(start, n_lines, count, rng, alpha=alpha)
    if pattern == "stencil":
        return stencil(start, n_lines, count, rng, offset=offset)
    raise ValueError(f"unknown access pattern {pattern!r}")


def _check(start: int, n_lines: int, count: int) -> None:
    if start < 0:
        raise ValueError("region start cannot be negative")
    if n_lines <= 0:
        raise ValueError("region must contain at least one line")
    if count < 0:
        raise ValueError("access count cannot be negative")
