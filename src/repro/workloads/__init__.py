"""workloads subpackage of the CARVE reproduction."""
