"""The 20-benchmark suite of Table II.

Each paper workload is represented by a :class:`WorkloadSpec` whose
parameters encode its published characteristics — memory footprint
(Table II) — and the behaviours the paper reports per workload:

* eight workloads have negligible NUMA bottlenecks (compute-bound or
  private-dominated after first-touch placement);
* three are cured by replicating read-only shared pages (read-only scene
  /graph data);
* the rest need read-write shared data served locally (CARVE's target),
  with XSBench/HPGMG-amry carrying shared working sets beyond a 2 GB RDC
  (Table V(a) size sensitivity) and XSBench showing strong *intra*-kernel
  reuse (the one workload CARVE-SWC still helps, Fig. 11);
* RandAccess is latency-bound with an RDC-hostile random footprint
  (the Fig. 9 outlier).

The exact knob values are calibrations, not measurements; see
EXPERIMENTS.md for the per-figure comparison against the paper.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

MB = 2**20
GB = 2**30

#: Sharing behaviour groups (used by tests and report labels).
GROUP_LOW_NUMA = "low-numa"
GROUP_RO_FIXED = "ro-replication-fixed"
GROUP_RW_SHARED = "rw-shared"
GROUP_LATENCY = "latency-outlier"


def _hpc(**kw) -> WorkloadSpec:
    return WorkloadSpec(suite="HPC", **kw)


def _ml(**kw) -> WorkloadSpec:
    return WorkloadSpec(suite="ML", **kw)


def _other(**kw) -> WorkloadSpec:
    return WorkloadSpec(suite="Other", **kw)


SUITE: tuple[WorkloadSpec, ...] = (
    # ---- HPC ----------------------------------------------------------
    _hpc(
        name="AMG_32", abbr="AMG", footprint_bytes=int(3.2 * GB),
        n_kernels=6, coverage=1.6,
        shared_page_frac=0.35, shared_access_frac=0.35,
        rw_page_frac=0.85, line_write_frac=0.08, write_frac=0.22,
        private_pattern="strided", shared_pattern="uniform",
        instr_per_access=8.0, concurrency_per_sm=32.0, seed=101,
    ),
    _hpc(
        name="HPGMG-UVM", abbr="HPGMG", footprint_bytes=2 * GB,
        n_kernels=8, coverage=1.3,
        shared_page_frac=0.45, shared_access_frac=0.45,
        rw_page_frac=0.80, line_write_frac=0.10, write_frac=0.25,
        private_pattern="stencil", shared_pattern="uniform",
        instr_per_access=7.0, concurrency_per_sm=32.0, seed=102,
    ),
    _hpc(
        name="HPGMG-amry-proxy", abbr="HPGMG-amry",
        footprint_bytes=int(7.7 * GB),
        n_kernels=6, coverage=1.2, max_accesses=90_000,
        shared_page_frac=0.42, shared_access_frac=0.40,
        rw_page_frac=0.92, line_write_frac=0.08, write_frac=0.22,
        private_pattern="stencil", shared_pattern="uniform",
        instr_per_access=8.0, concurrency_per_sm=32.0, seed=103,
    ),
    _hpc(
        name="Lulesh-Unstruct-Mesh1", abbr="Lulesh", footprint_bytes=24 * MB,
        n_kernels=8, coverage=2.0, min_accesses=12_000,
        shared_page_frac=0.70, shared_access_frac=0.80,
        rw_page_frac=0.90, line_write_frac=0.12, write_frac=0.25,
        shared_write_frac=0.06,
        private_pattern="strided", shared_pattern="uniform",
        instr_per_access=6.0, concurrency_per_sm=32.0, seed=104,
    ),
    _hpc(
        name="Lulesh-s190", abbr="Lulesh-s190",
        footprint_bytes=int(3.7 * GB),
        n_kernels=4, coverage=1.2,
        shared_page_frac=0.10, shared_access_frac=0.08,
        rw_page_frac=0.50, line_write_frac=0.10, write_frac=0.25,
        private_pattern="stencil", shared_pattern="uniform",
        instr_per_access=40.0, concurrency_per_sm=48.0, seed=105,
    ),
    _hpc(
        name="CoMD-xyz64_warp", abbr="CoMD", footprint_bytes=910 * MB,
        n_kernels=6, coverage=1.5,
        shared_page_frac=0.08, shared_access_frac=0.06,
        rw_page_frac=0.50, line_write_frac=0.10, write_frac=0.20,
        private_pattern="stencil", shared_pattern="uniform",
        instr_per_access=120.0, concurrency_per_sm=48.0, seed=106,
    ),
    _hpc(
        name="MCB-5M-particles", abbr="MCB", footprint_bytes=254 * MB,
        n_kernels=8, coverage=2.0,
        shared_page_frac=0.50, shared_access_frac=0.35,
        rw_page_frac=0.80, line_write_frac=0.08, write_frac=0.18,
        private_pattern="uniform", shared_pattern="uniform",
        instr_per_access=9.0, concurrency_per_sm=32.0, seed=107,
    ),
    _hpc(
        name="MiniAMR-15Kv40", abbr="MiniAMR", footprint_bytes=int(4.4 * GB),
        n_kernels=6, coverage=0.8,
        shared_page_frac=0.40, shared_access_frac=0.35,
        rw_page_frac=0.0, line_write_frac=0.0, write_frac=0.20,
        private_pattern="stencil", shared_pattern="stencil",
        instr_per_access=9.0, concurrency_per_sm=40.0, seed=108,
    ),
    _hpc(
        name="Nekbone-18", abbr="Nekbone", footprint_bytes=1 * GB,
        n_kernels=6, coverage=1.5,
        shared_page_frac=0.06, shared_access_frac=0.05,
        rw_page_frac=0.50, line_write_frac=0.10, write_frac=0.20,
        private_pattern="strided", shared_pattern="uniform",
        instr_per_access=150.0, concurrency_per_sm=48.0, seed=109,
    ),
    _hpc(
        name="XSBench_17K_grid", abbr="XSBench", footprint_bytes=int(4.4 * GB),
        n_kernels=4, coverage=3.0, max_accesses=100_000,
        shared_page_frac=0.80, shared_access_frac=0.80,
        rw_page_frac=0.85, line_write_frac=0.05, write_frac=0.10,
        shared_write_frac=0.02,
        private_pattern="uniform", shared_pattern="zipf", zipf_alpha=1.35,
        instr_per_access=5.0, concurrency_per_sm=40.0, seed=110,
    ),
    _hpc(
        name="Euler3D", abbr="Euler", footprint_bytes=26 * MB,
        n_kernels=10, coverage=0.9, min_accesses=6_000,
        shared_page_frac=0.60, shared_access_frac=0.45,
        rw_page_frac=0.80, line_write_frac=0.10, write_frac=0.25,
        private_pattern="strided", shared_pattern="stencil",
        instr_per_access=7.0, concurrency_per_sm=32.0, seed=111,
    ),
    _hpc(
        name="SSSP", abbr="SSSP", footprint_bytes=42 * MB,
        n_kernels=8, coverage=2.0, min_accesses=12_000,
        shared_page_frac=0.60, shared_access_frac=0.50,
        rw_page_frac=0.90, line_write_frac=0.15, write_frac=0.20,
        shared_write_frac=0.08,
        private_pattern="uniform", shared_pattern="uniform",
        instr_per_access=5.0, concurrency_per_sm=24.0, seed=112,
    ),
    _hpc(
        name="bfs-road-usa", abbr="bfs-road", footprint_bytes=590 * MB,
        n_kernels=8, coverage=2.5,
        shared_page_frac=0.55, shared_access_frac=0.45,
        rw_page_frac=0.0, line_write_frac=0.0, write_frac=0.12,
        private_pattern="uniform", shared_pattern="uniform",
        instr_per_access=6.0, concurrency_per_sm=24.0, seed=113,
    ),
    # ---- ML -----------------------------------------------------------
    _ml(
        name="AlexNet-ConvNet2", abbr="AlexNet", footprint_bytes=96 * MB,
        n_kernels=6, coverage=1.5,
        shared_page_frac=0.10, shared_access_frac=0.08,
        rw_page_frac=0.20, line_write_frac=0.05, write_frac=0.20,
        private_pattern="stream", shared_pattern="uniform",
        instr_per_access=300.0, concurrency_per_sm=64.0, seed=114,
    ),
    _ml(
        name="GoogLeNet-cudnn-Lev2", abbr="GoogLeNet",
        footprint_bytes=int(1.2 * GB),
        n_kernels=6, coverage=1.3,
        shared_page_frac=0.10, shared_access_frac=0.08,
        rw_page_frac=0.20, line_write_frac=0.05, write_frac=0.20,
        private_pattern="stream", shared_pattern="uniform",
        instr_per_access=250.0, concurrency_per_sm=64.0, seed=115,
    ),
    _ml(
        name="OverFeat-cudnn-Lev3", abbr="OverFeat", footprint_bytes=88 * MB,
        n_kernels=6, coverage=1.5,
        shared_page_frac=0.10, shared_access_frac=0.08,
        rw_page_frac=0.20, line_write_frac=0.05, write_frac=0.20,
        private_pattern="stream", shared_pattern="uniform",
        instr_per_access=280.0, concurrency_per_sm=64.0, seed=116,
    ),
    # ---- Other ---------------------------------------------------------
    _other(
        name="Bitcoin-Crypto", abbr="Bitcoin", footprint_bytes=int(5.6 * GB),
        n_kernels=4, coverage=1.0,
        shared_page_frac=0.04, shared_access_frac=0.02,
        rw_page_frac=0.30, line_write_frac=0.05, write_frac=0.10,
        private_pattern="uniform", shared_pattern="uniform",
        instr_per_access=500.0, concurrency_per_sm=64.0, seed=117,
    ),
    _other(
        name="Optix-Raytracing", abbr="Raytracing", footprint_bytes=150 * MB,
        n_kernels=6, coverage=2.0,
        shared_page_frac=0.60, shared_access_frac=0.65,
        rw_page_frac=0.0, line_write_frac=0.0, write_frac=0.08,
        private_pattern="uniform", shared_pattern="zipf", zipf_alpha=1.05,
        instr_per_access=20.0, concurrency_per_sm=32.0, seed=118,
    ),
    _other(
        name="stream-triad", abbr="stream-triad", footprint_bytes=3 * GB,
        n_kernels=4, coverage=1.2,
        shared_page_frac=0.02, shared_access_frac=0.01,
        rw_page_frac=0.0, line_write_frac=0.0, write_frac=0.33,
        private_pattern="stream", shared_pattern="uniform",
        instr_per_access=4.0, concurrency_per_sm=64.0, seed=119,
    ),
    _other(
        name="Random Memory Access", abbr="RandAccess",
        footprint_bytes=15 * GB,
        n_kernels=4, coverage=1.0, max_accesses=100_000,
        shared_page_frac=1.0, shared_access_frac=0.95,
        rw_page_frac=1.0, line_write_frac=1.0, write_frac=0.25,
        private_pattern="uniform", shared_pattern="uniform",
        shared_write_frac=0.25,
        instr_per_access=2.0, concurrency_per_sm=4.0,
        cold_page_frac=0.0, seed=120,
    ),
)

#: abbr -> spec lookup.
BY_ABBR: dict[str, WorkloadSpec] = {w.abbr: w for w in SUITE}

#: The paper-reported behaviour group of each workload.
GROUPS: dict[str, str] = {
    "CoMD": GROUP_LOW_NUMA,
    "Nekbone": GROUP_LOW_NUMA,
    "AlexNet": GROUP_LOW_NUMA,
    "GoogLeNet": GROUP_LOW_NUMA,
    "OverFeat": GROUP_LOW_NUMA,
    "Bitcoin": GROUP_LOW_NUMA,
    "stream-triad": GROUP_LOW_NUMA,
    "Lulesh-s190": GROUP_LOW_NUMA,
    "Raytracing": GROUP_RO_FIXED,
    "bfs-road": GROUP_RO_FIXED,
    "MiniAMR": GROUP_RO_FIXED,
    "AMG": GROUP_RW_SHARED,
    "HPGMG": GROUP_RW_SHARED,
    "HPGMG-amry": GROUP_RW_SHARED,
    "Lulesh": GROUP_RW_SHARED,
    "MCB": GROUP_RW_SHARED,
    "XSBench": GROUP_RW_SHARED,
    "Euler": GROUP_RW_SHARED,
    "SSSP": GROUP_RW_SHARED,
    "RandAccess": GROUP_LATENCY,
}


def get(abbr: str) -> WorkloadSpec:
    """Look up a workload by its Table II abbreviation."""
    try:
        return BY_ABBR[abbr]
    except KeyError:
        raise KeyError(
            f"unknown workload {abbr!r}; known: {sorted(BY_ABBR)}"
        ) from None


def all_abbrs() -> list[str]:
    return [w.abbr for w in SUITE]


def table2_rows() -> list[tuple[str, str, str, str]]:
    """(suite, benchmark, abbr, footprint) rows reproducing Table II."""
    rows = []
    for w in SUITE:
        if w.footprint_bytes >= GB:
            fp = f"{w.footprint_bytes / GB:.1f} GB"
        else:
            fp = f"{w.footprint_bytes / MB:.0f} MB"
        rows.append((w.suite, w.name, w.abbr, fp))
    return rows
