"""Graph-algorithm trace generation from real graph structure.

The calibrated Table II suite approximates ``bfs-road`` with uniform
random accesses over a shared region.  This module goes further for
users studying graph analytics on NUMA GPUs: it lays out an actual graph
(CSR arrays + per-vertex state) in the simulated address space and
replays a level-synchronous BFS over it, one kernel per frontier level —
so locality, sharing, and kernel structure all come from the algorithm
instead of from knobs.

Memory layout (line granularity):

    [row offsets][column indices][vertex state]

CSR structure is read-shared by every GPU that expands a frontier vertex
whose adjacency lives there; vertex state is read-write shared (distance
updates), with exactly the false-sharing-at-page-granularity behaviour
large pages induce.

Requires :mod:`networkx` (an optional dependency of this module only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LINE_BYTES, SystemConfig
from repro.gpu.cta import KernelTrace, WorkloadTrace

#: Graph elements (a vertex id or an offset) packed per 128 B line.
ELEMENTS_PER_LINE = LINE_BYTES // 4


@dataclass(frozen=True)
class GraphWorkloadSpec:
    """Parameters of a BFS-over-a-graph workload."""

    name: str = "bfs-graph"
    #: Road-network-like grid dimensions (networkx grid graph).
    grid_width: int = 96
    grid_height: int = 96
    #: Extra random "shortcut" edges (highways) per vertex.
    shortcut_frac: float = 0.02
    source_vertex: int = 0
    n_ctas: int = 64
    instr_per_access: float = 6.0
    concurrency_per_sm: float = 24.0
    #: Levels beyond this are merged into the final kernel.
    max_kernels: int = 12
    warmup_kernels: int = 0
    seed: int = 7


def _build_graph(spec: GraphWorkloadSpec):
    import networkx as nx

    g = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(spec.grid_width, spec.grid_height)
    )
    rng = np.random.default_rng(spec.seed)
    n = g.number_of_nodes()
    n_shortcuts = int(n * spec.shortcut_frac)
    for _ in range(n_shortcuts):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v))
    return g


@dataclass
class _CsrLayout:
    """Line addresses of the CSR arrays and vertex state."""

    n_vertices: int
    n_edges: int
    row_start_line: int
    col_start_line: int
    state_start_line: int
    total_lines: int

    def row_line(self, v: int) -> int:
        return self.row_start_line + v // ELEMENTS_PER_LINE

    def col_line(self, edge_index: int) -> int:
        return self.col_start_line + edge_index // ELEMENTS_PER_LINE

    def state_line(self, v: int) -> int:
        return self.state_start_line + v // ELEMENTS_PER_LINE


def _layout(n_vertices: int, n_edges: int) -> _CsrLayout:
    def lines_for(elements: int) -> int:
        return max(1, (elements + ELEMENTS_PER_LINE - 1) // ELEMENTS_PER_LINE)

    row_lines = lines_for(n_vertices + 1)
    col_lines = lines_for(n_edges)
    state_lines = lines_for(n_vertices)
    return _CsrLayout(
        n_vertices=n_vertices,
        n_edges=n_edges,
        row_start_line=0,
        col_start_line=row_lines,
        state_start_line=row_lines + col_lines,
        total_lines=row_lines + col_lines + state_lines,
    )


def generate_bfs_trace(
    spec: GraphWorkloadSpec, config: SystemConfig
) -> WorkloadTrace:
    """Level-synchronous BFS: one kernel per frontier level.

    Each frontier vertex is expanded by the CTA that owns it (vertices
    are striped over CTAs, matching how a real BFS kernel assigns work):
    read its row offsets, read its adjacency, read each neighbour's
    state, and write the state of newly discovered neighbours.
    """
    graph = _build_graph(spec)
    n = graph.number_of_nodes()
    adjacency: list[list[int]] = [sorted(graph.neighbors(v)) for v in range(n)]
    edge_offsets = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        edge_offsets[v + 1] = edge_offsets[v] + len(adjacency[v])
    layout = _layout(n, int(edge_offsets[-1]))

    visited = np.zeros(n, dtype=bool)
    visited[spec.source_vertex] = True
    frontier = [spec.source_vertex]
    levels: list[list[int]] = []
    while frontier:
        levels.append(frontier)
        next_frontier = []
        for v in frontier:
            for u in adjacency[v]:
                if not visited[u]:
                    visited[u] = True
                    next_frontier.append(u)
        frontier = next_frontier

    # Merge the level tail so the kernel count stays bounded.
    if len(levels) > spec.max_kernels:
        merged = [u for level in levels[spec.max_kernels - 1:] for u in level]
        levels = levels[: spec.max_kernels - 1] + [merged]

    kernels = []
    for kernel_id, level in enumerate(levels):
        lines: list[int] = []
        writes: list[bool] = []
        ctas: list[int] = []
        for v in level:
            cta = v % spec.n_ctas
            start, stop = int(edge_offsets[v]), int(edge_offsets[v + 1])
            accesses = [(layout.row_line(v), False)]
            for e in range(start, stop, ELEMENTS_PER_LINE):
                accesses.append((layout.col_line(e), False))
            for u in adjacency[v]:
                accesses.append((layout.state_line(u), False))
                # A write happens when u was first discovered from v's
                # level; approximating per-edge: write iff u > v keeps
                # exactly one writer per undirected edge.
                if u > v:
                    accesses.append((layout.state_line(u), True))
            for line, is_write in accesses:
                lines.append(line)
                writes.append(is_write)
                ctas.append(cta)
        if not lines:
            continue
        kernels.append(
            KernelTrace(
                kernel_id=kernel_id,
                n_ctas=spec.n_ctas,
                cta_ids=np.asarray(ctas, dtype=np.int32),
                lines=np.asarray(lines, dtype=np.int64),
                is_write=np.asarray(writes, dtype=bool),
                instr_per_access=spec.instr_per_access,
                concurrency_per_sm=spec.concurrency_per_sm,
                warmup=kernel_id < spec.warmup_kernels,
            )
        )
    return WorkloadTrace(name=spec.name, kernels=kernels)


def graph_footprint_lines(spec: GraphWorkloadSpec) -> int:
    """Total lines the generated layout occupies (diagnostics)."""
    graph = _build_graph(spec)
    n_edges = sum(len(list(graph.neighbors(v)))
                  for v in range(graph.number_of_nodes()))
    return _layout(graph.number_of_nodes(), n_edges).total_lines
