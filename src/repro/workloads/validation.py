"""Workload trace validation.

Synthetic workloads are only as good as their calibration, so this module
measures a generated trace against its spec's knobs and reports the
deviations: footprint, shared-access fraction, write fractions, and the
page-level sharing mix.  The test suite uses it to pin every Table II
workload to its published characteristics, and it is the tool to reach
for when adding a new workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sharing import profile_sharing
from repro.config import SystemConfig
from repro.gpu.cta import WorkloadTrace
from repro.workloads.base import WorkloadSpec, _resolve_layout, generate_trace


@dataclass
class ValidationReport:
    """Measured characteristics of a generated trace vs. its spec."""

    workload: str
    footprint_lines: int
    expected_footprint_lines: int
    shared_access_frac: float
    expected_shared_access_frac: float
    write_frac: float
    page_rw_access_frac: float
    line_rw_access_frac: float

    @property
    def footprint_error(self) -> float:
        if not self.expected_footprint_lines:
            return 0.0
        return (
            abs(self.footprint_lines - self.expected_footprint_lines)
            / self.expected_footprint_lines
        )

    @property
    def shared_access_error(self) -> float:
        return abs(self.shared_access_frac - self.expected_shared_access_frac)

    def ok(self, footprint_tol: float = 0.25, shared_tol: float = 0.08) -> bool:
        """Whether the trace is within tolerance of its spec."""
        return (
            self.footprint_error <= footprint_tol
            and self.shared_access_error <= shared_tol
        )

    def summary(self) -> str:
        return (
            f"{self.workload}: footprint {self.footprint_lines} lines "
            f"(expected {self.expected_footprint_lines}, "
            f"err {self.footprint_error:.1%}); "
            f"shared accesses {self.shared_access_frac:.1%} "
            f"(expected {self.expected_shared_access_frac:.1%}); "
            f"writes {self.write_frac:.1%}; "
            f"page-RW {self.page_rw_access_frac:.1%} vs "
            f"line-RW {self.line_rw_access_frac:.1%}"
        )


def validate_trace(
    spec: WorkloadSpec,
    config: SystemConfig,
    trace: WorkloadTrace | None = None,
) -> ValidationReport:
    """Measure *trace* (generated if omitted) against *spec*'s knobs."""
    if trace is None:
        trace = generate_trace(spec, config)
    layout = _resolve_layout(spec, config)
    all_lines = np.concatenate([k.lines for k in trace.kernels])
    all_writes = np.concatenate([k.is_write for k in trace.kernels])
    shared = all_lines >= layout.shared_start
    profile = profile_sharing(trace, config)
    page_dist = profile.access_distribution("page")
    line_dist = profile.access_distribution("line")
    return ValidationReport(
        workload=spec.abbr,
        footprint_lines=int(len(np.unique(all_lines))),
        expected_footprint_lines=layout.footprint_lines,
        shared_access_frac=float(shared.mean()),
        expected_shared_access_frac=spec.shared_access_frac,
        write_frac=float(all_writes.mean()),
        page_rw_access_frac=page_dist.rw_shared,
        line_rw_access_frac=line_dist.rw_shared,
    )


def validate_suite(
    specs, config: SystemConfig
) -> dict[str, ValidationReport]:
    """Validate many specs; returns abbr -> report."""
    return {spec.abbr: validate_trace(spec, config) for spec in specs}
