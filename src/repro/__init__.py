"""CARVE: Caching Remote Data in Video Memory — a reproduction.

A trace-driven multi-GPU NUMA simulator and analysis toolkit reproducing
Young et al., *"Combining HW/SW Mechanisms to Improve NUMA Performance of
Multi-GPU Systems"* (MICRO 2018).

Quickstart::

    from repro import carve_config, baseline_config, run_workload, time_of

    numa = baseline_config()                 # Table III NUMA-GPU
    carve = carve_config(rdc_bytes=2 << 30)  # + 2 GB CARVE-HWC RDC
    r_numa = run_workload("Lulesh", numa)
    r_carve = run_workload("Lulesh", carve)
    print(r_numa.remote_fraction, r_carve.remote_fraction)
    print(time_of(r_numa, numa) / time_of(r_carve, carve))

See ``examples/`` for full scenarios and ``benchmarks/`` for the scripts
regenerating every table and figure of the paper.
"""

from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    LINE_BYTES,
    ConfigError,
    GpuConfig,
    LinkConfig,
    LinkFaultConfig,
    LinkFaultEvent,
    MemoryConfig,
    RdcConfig,
    SystemConfig,
    baseline_config,
    carve_config,
)
from repro.gpu.cta import KernelTrace, WorkloadTrace
from repro.numa.system import MultiGpuSystem
from repro.perf.model import PerformanceModel, geometric_mean, speedup
from repro.perf.stats import RunResult
from repro.sim.driver import run_time, run_workload, time_of
from repro.sim.runner import FailureReport, RunnerPolicy
from repro.workloads import suite
from repro.workloads.base import WorkloadSpec, generate_trace

__version__ = "1.0.0"

__all__ = [
    "COHERENCE_DIRECTORY",
    "COHERENCE_HARDWARE",
    "COHERENCE_NONE",
    "COHERENCE_SOFTWARE",
    "ConfigError",
    "FailureReport",
    "GpuConfig",
    "KernelTrace",
    "LINE_BYTES",
    "LinkConfig",
    "LinkFaultConfig",
    "LinkFaultEvent",
    "MemoryConfig",
    "MultiGpuSystem",
    "PerformanceModel",
    "RdcConfig",
    "RunResult",
    "RunnerPolicy",
    "SystemConfig",
    "WorkloadSpec",
    "WorkloadTrace",
    "baseline_config",
    "carve_config",
    "generate_trace",
    "geometric_mean",
    "run_time",
    "run_workload",
    "speedup",
    "suite",
    "time_of",
]
