"""Software page replication policies (Section II-C, Fig. 2).

The runtime can replicate *shared* pages into the local memory of each
accessing GPU so their accesses become local:

* ``read_only`` — the practical policy (Carrefour-style): only pages that
  are never written are replicated, because collapsing a read-write
  replica on a store costs prohibitive software overhead.
* ``all`` — the paper's *ideal* upper bound: every shared page (read-only
  and read-write) is replicated with zero coherence cost.

Both are driven by a :class:`~repro.analysis.sharing.SharingProfile`, the
same idealisation the paper uses for its "ideal paging mechanism".  The
policies report the replica capacity they consume; unbounded replication
inflates the application footprint ~2.4x on average (Section I), which is
why it cannot substitute for CARVE on capacity-constrained GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sharing import SharingProfile
from repro.config import (
    REPLICATE_ALL,
    REPLICATE_NONE,
    REPLICATE_READ_ONLY,
)
from repro.numa.pagetable import PageTable


@dataclass
class ReplicationPlan:
    """Which pages each GPU will hold replicas of."""

    policy: str
    #: page -> list of GPUs that get a replica (home excluded at apply time).
    replica_holders: dict[int, list[int]]

    @property
    def n_replicated_pages(self) -> int:
        return len(self.replica_holders)

    def total_replicas(self) -> int:
        return sum(len(holders) for holders in self.replica_holders.values())


def build_replication_plan(
    profile: SharingProfile, policy: str
) -> ReplicationPlan:
    """Select pages to replicate under *policy* using the sharing profile."""
    if policy == REPLICATE_NONE:
        return ReplicationPlan(policy, {})
    if policy == REPLICATE_READ_ONLY:
        pages = profile.ro_shared_pages()
    elif policy == REPLICATE_ALL:
        pages = profile.shared_pages()
    else:
        raise ValueError(f"unknown replication policy {policy!r}")
    holders = {page: profile.accessors_of_page(page) for page in sorted(pages)}
    return ReplicationPlan(policy, holders)


def apply_replication_plan(plan: ReplicationPlan, table: PageTable) -> int:
    """Install the plan's replicas in the page table.

    Pages not yet mapped are skipped at this point and picked up lazily by
    the system model on first touch (the home GPU is unknown until then).
    Returns the number of replicas created now.
    """
    created = 0
    for page, holders in plan.replica_holders.items():
        if not table.is_mapped(page):
            continue
        home = table.peek_home(page)
        for gpu in holders:
            if gpu != home and table.add_replica(page, gpu):
                created += 1
    return created


def replica_capacity_bytes(plan: ReplicationPlan, page_bytes: int) -> int:
    """Upper bound on extra memory the plan consumes (every holder pays).

    One holder per page is the home copy, so the true extra cost is one
    page less per replicated page; this accessor-count bound matches the
    shared-footprint metric of Fig. 5.
    """
    return sum(
        max(0, len(holders) - 1) for holders in plan.replica_holders.values()
    ) * page_bytes


__all__ = [
    "ReplicationPlan",
    "apply_replication_plan",
    "build_replication_plan",
    "replica_capacity_bytes",
]
