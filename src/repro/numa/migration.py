"""Runtime page migration (Section I / II-C).

Traditional GPU runtimes migrate a page to the GPU that keeps accessing
it remotely.  Migration helps genuinely private pages that first-touch
mis-placed, but *fails for shared pages*: a page two GPUs touch either
ping-pongs or stays remote for someone.  The engine therefore

* counts remote accesses per (page, GPU);
* migrates once a single GPU's count passes a threshold;
* charges the page transfer to the link and a TLB shootdown to latency;
* caps per-page migrations to bound ping-pong, as real runtimes do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.numa.pagetable import PageTable


@dataclass
class MigrationStats:
    """Pages moved and remote accesses seen by the migration engine."""
    migrations: int = 0
    remote_accesses_observed: int = 0
    blocked_by_cap: int = 0

    @property
    def pages_moved(self) -> int:
        return self.migrations


#: TLB shootdown + remap cost charged to the migrating GPU, nanoseconds.
SHOOTDOWN_LATENCY_NS = 5_000.0


class MigrationEngine:
    """Counter-based migrate-on-remote-access policy (Section II-C)."""

    def __init__(self, table: PageTable, threshold: int = 16,
                 max_moves_per_page: int = 4) -> None:
        if threshold <= 0:
            raise ValueError("migration threshold must be positive")
        if max_moves_per_page <= 0:
            raise ValueError("per-page migration cap must be positive")
        self.table = table
        self.threshold = threshold
        self.max_moves_per_page = max_moves_per_page
        # (page, gpu) -> remote access count since the page last moved.
        self._counts: dict[tuple[int, int], int] = {}
        self._moves: dict[int, int] = {}
        self.stats = MigrationStats()

    def note_remote_access(self, page: int, gpu: int) -> bool:
        """Record a remote access; returns True if *page* migrates to *gpu*.

        The caller is responsible for charging the transfer traffic (the
        whole page over the old-home -> gpu link) and invalidating stale
        cached copies.
        """
        self.stats.remote_accesses_observed += 1
        key = (page, gpu)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count < self.threshold:
            return False
        return self.attempt_migration(page, gpu)

    def attempt_migration(self, page: int, gpu: int) -> bool:
        """Post-threshold decision: cap check, then re-home *page*.

        Split out of :meth:`note_remote_access` so the vectorized engine
        can count remote accesses inline against :attr:`counts` and only
        pay this call once a counter actually reaches the threshold.
        """
        if self._moves.get(page, 0) >= self.max_moves_per_page:
            self.stats.blocked_by_cap += 1
            return False
        self.table.migrate(page, gpu)
        self._moves[page] = self._moves.get(page, 0) + 1
        self.stats.migrations += 1
        # Reset every GPU's counter for this page: the clock restarts.
        for g in range(self.table.n_gpus):
            self._counts.pop((page, g), None)
        return True

    @property
    def counts(self) -> dict:
        """Live (page, gpu) -> remote-access count table (hot-path view).

        Inline increments must mirror :meth:`note_remote_access` exactly:
        bump the count, compare against :attr:`threshold`, call
        :meth:`attempt_migration` when reached, and report the observed
        accesses through :meth:`add_observed`.
        """
        return self._counts

    def add_observed(self, n: int) -> None:
        """Batched ``remote_accesses_observed`` update (engine flush)."""
        self.stats.remote_accesses_observed += n


__all__ = [
    "MigrationEngine",
    "MigrationStats",
    "SHOOTDOWN_LATENCY_NS",
]
