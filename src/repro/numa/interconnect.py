"""Inter-GPU interconnect model (NVLink-like point-to-point links).

The system is fully connected: each ordered GPU pair (src, dst) has a
dedicated uni-directional link of ``inter_gpu_bytes_per_s`` (Fig. 1 /
Table III: 64 GB/s per link, one direction).  The model is a byte
accountant — per-kernel matrices of bytes moved — plus a latency constant;
the performance model turns the most-loaded link into time.

Fault injection (:class:`FaultSchedule`) overlays a deterministic,
seeded schedule of per-kernel link faults: a link may be *degraded*
(bandwidth scaled into ``[min_scale, 1)``) or suffer an *outage*
(bandwidth zeroed).  Because the interconnect is a byte accountant, the
overlay is applied when a kernel's byte matrix is snapshotted: bytes
accounted on a dead link are rerouted through the lowest-numbered
healthy intermediate GPU (both hops pay the bytes — the fabric really
does move the data twice), and the surviving per-link bandwidth scales
are returned alongside the matrix for the performance model to price.
The hot path is untouched: with no fault schedule configured the
accounting and snapshots are bit-identical to the fault-free model.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.config import LinkConfig, LinkFaultConfig

#: Effective bandwidth fraction of a dead link whose traffic cannot be
#: rerouted (two-GPU systems, or a fully partitioned epoch): transfers
#: trickle through at the retry/backpressure residual rather than
#: stalling forever.
OUTAGE_RESIDUAL_SCALE = 1.0 / 64.0


def _stable_unit(seed: int, kernel: int, src: int, dst: int) -> float:
    """Deterministic draw in [0, 1) — stable across processes and order.

    Uses SHA-256 instead of ``hash()`` so the schedule does not depend
    on ``PYTHONHASHSEED``; worker subprocesses must see the same faults
    as an in-process run.
    """
    digest = hashlib.sha256(
        f"{seed}:{kernel}:{src}:{dst}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultSchedule:
    """Per-kernel link-fault epochs derived from a :class:`LinkFaultConfig`."""

    def __init__(self, n_gpus: int, config: LinkFaultConfig) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        config.validate()
        self.n_gpus = n_gpus
        self.config = config

    def scale(self, kernel_index: int, src: int, dst: int) -> float:
        """Bandwidth fraction of link (src, dst) during *kernel_index*."""
        if src == dst:
            return 1.0
        for event in self.config.events:
            if (
                event.first_kernel <= kernel_index <= event.last_kernel
                and event.src in (-1, src)
                and event.dst in (-1, dst)
            ):
                return event.scale
        cfg = self.config
        if cfg.outage_prob <= 0.0 and cfg.degrade_prob <= 0.0:
            return 1.0
        u = _stable_unit(cfg.seed, kernel_index, src, dst)
        if u < cfg.outage_prob:
            return 0.0
        if u < cfg.outage_prob + cfg.degrade_prob:
            # A second independent draw picks the degradation depth.
            v = _stable_unit(cfg.seed + 0x9E3779B9, kernel_index, src, dst)
            return cfg.min_scale + v * (1.0 - cfg.min_scale)
        return 1.0

    def matrix(self, kernel_index: int) -> Optional[list[list[float]]]:
        """Scale matrix for one kernel; None when every link is healthy."""
        n = self.n_gpus
        out = [[1.0] * n for _ in range(n)]
        faulted = False
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                f = self.scale(kernel_index, s, d)
                if f != 1.0:
                    out[s][d] = f
                    faulted = True
        return out if faulted else None


class Interconnect:
    """Directional byte counters for every GPU pair."""

    def __init__(
        self,
        n_gpus: int,
        config: LinkConfig,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus
        self.config = config
        self.faults = faults
        self._bytes = [[0] * n_gpus for _ in range(n_gpus)]
        #: Scale matrix of the kernel being executed (None = all healthy).
        self._scale: Optional[list[list[float]]] = None

    def begin_kernel(self, kernel_index: int) -> None:
        """Enter a kernel's fault epoch (no-op without a schedule)."""
        if self.faults is not None:
            self._scale = self.faults.matrix(kernel_index)

    def send(self, src: int, dst: int, n_bytes: int) -> float:
        """Move *n_bytes* src -> dst; returns the one-way latency in ns."""
        if src == dst:
            raise ValueError("no link from a GPU to itself")
        if n_bytes < 0:
            raise ValueError("cannot send a negative byte count")
        self._bytes[src][dst] += n_bytes
        return self.config.latency_ns

    @property
    def rows(self) -> list[list[int]]:
        """The live (src, dst) byte matrix (hot-path view).

        The vectorized execution engine adds to entries directly instead
        of paying a :meth:`send` call per message; callers must uphold the
        same contract (src != dst, non-negative byte counts).
        """
        return self._bytes

    def bytes_between(self, src: int, dst: int) -> int:
        return self._bytes[src][dst]

    def matrix(self) -> list[list[int]]:
        """Copy of the full (src, dst) byte matrix."""
        return [row[:] for row in self._bytes]

    def total_bytes(self) -> int:
        return sum(sum(row) for row in self._bytes)

    def busiest_link_bytes(self) -> int:
        return max(
            (self._bytes[s][d] for s in range(self.n_gpus)
             for d in range(self.n_gpus) if s != d),
            default=0,
        )

    def snapshot_and_reset(self) -> list[list[int]]:
        """Return the matrix and zero the counters (per-kernel capture).

        Zeroes in place so :attr:`rows` aliases held by a caller stay
        valid across kernels.
        """
        snap = self.matrix()
        zero = [0] * self.n_gpus
        for row in self._bytes:
            row[:] = zero
        return snap

    def snapshot_faulted_and_reset(
        self,
    ) -> tuple[list[list[int]], Optional[list[list[float]]]]:
        """Per-kernel capture with the current fault epoch applied.

        Returns ``(byte_matrix, scale_matrix)``.  With every link
        healthy this kernel, the scale matrix is None and the bytes are
        exactly :meth:`snapshot_and_reset`'s.  Otherwise bytes accounted
        on dead links are rerouted (both hops of the detour pay them)
        or, when no healthy route exists or rerouting is disabled, kept
        in place with the link's scale raised to the retry residual
        :data:`OUTAGE_RESIDUAL_SCALE` so pricing stays finite.
        """
        snap = self.snapshot_and_reset()
        if self._scale is None:
            return snap, None
        scale = [row[:] for row in self._scale]
        reroute = self.faults is None or self.faults.config.reroute
        for s in range(self.n_gpus):
            for d in range(self.n_gpus):
                if s == d or scale[s][d] > 0.0:
                    continue
                moved = snap[s][d]
                if not moved:
                    continue
                via = self._route_via(s, d, scale) if reroute else None
                if via is None:
                    scale[s][d] = OUTAGE_RESIDUAL_SCALE
                else:
                    snap[s][d] = 0
                    snap[s][via] += moved
                    snap[via][d] += moved
        return snap, scale

    def _route_via(
        self, src: int, dst: int, scale: list[list[float]]
    ) -> Optional[int]:
        """Lowest-numbered GPU with both detour hops alive, if any."""
        for via in range(self.n_gpus):
            if via in (src, dst):
                continue
            if scale[src][via] > 0.0 and scale[via][dst] > 0.0:
                return via
        return None


__all__ = [
    "FaultSchedule",
    "Interconnect",
    "OUTAGE_RESIDUAL_SCALE",
]
