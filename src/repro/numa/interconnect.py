"""Inter-GPU interconnect model (NVLink-like point-to-point links).

The system is fully connected: each ordered GPU pair (src, dst) has a
dedicated uni-directional link of ``inter_gpu_bytes_per_s`` (Fig. 1 /
Table III: 64 GB/s per link, one direction).  The model is a byte
accountant — per-kernel matrices of bytes moved — plus a latency constant;
the performance model turns the most-loaded link into time.
"""

from __future__ import annotations

from repro.config import LinkConfig


class Interconnect:
    """Directional byte counters for every GPU pair."""

    def __init__(self, n_gpus: int, config: LinkConfig) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus
        self.config = config
        self._bytes = [[0] * n_gpus for _ in range(n_gpus)]

    def send(self, src: int, dst: int, n_bytes: int) -> float:
        """Move *n_bytes* src -> dst; returns the one-way latency in ns."""
        if src == dst:
            raise ValueError("no link from a GPU to itself")
        if n_bytes < 0:
            raise ValueError("cannot send a negative byte count")
        self._bytes[src][dst] += n_bytes
        return self.config.latency_ns

    @property
    def rows(self) -> list[list[int]]:
        """The live (src, dst) byte matrix (hot-path view).

        The vectorized execution engine adds to entries directly instead
        of paying a :meth:`send` call per message; callers must uphold the
        same contract (src != dst, non-negative byte counts).
        """
        return self._bytes

    def bytes_between(self, src: int, dst: int) -> int:
        return self._bytes[src][dst]

    def matrix(self) -> list[list[int]]:
        """Copy of the full (src, dst) byte matrix."""
        return [row[:] for row in self._bytes]

    def total_bytes(self) -> int:
        return sum(sum(row) for row in self._bytes)

    def busiest_link_bytes(self) -> int:
        return max(
            (self._bytes[s][d] for s in range(self.n_gpus)
             for d in range(self.n_gpus) if s != d),
            default=0,
        )

    def snapshot_and_reset(self) -> list[list[int]]:
        """Return the matrix and zero the counters (per-kernel capture).

        Zeroes in place so :attr:`rows` aliases held by a caller stay
        valid across kernels.
        """
        snap = self.matrix()
        zero = [0] * self.n_gpus
        for row in self._bytes:
            row[:] = zero
        return snap
