"""Page table and page placement for the multi-GPU address space.

NUMA-GPU places pages with a First-Touch (FT) policy: a page is homed at
the GPU that first accesses it, so private data ends up local when CTA
scheduling is locality-aware.  Round-robin and static-interleaved
placements are provided for ablation.  The table also tracks software
*replicas* (read-only page replication) and supports re-homing (page
migration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import (
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_INTERLEAVED,
    PLACEMENT_ROUND_ROBIN,
)


@dataclass
class PageTableStats:
    """Mapping, migration and replication totals for the page table."""
    pages_mapped: int = 0
    migrations: int = 0
    replicas_created: int = 0
    replicas_collapsed: int = 0


class PageTable:
    """Global page -> home-GPU map with replica tracking."""

    def __init__(self, n_gpus: int, placement: str = PLACEMENT_FIRST_TOUCH) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        if placement not in (
            PLACEMENT_FIRST_TOUCH,
            PLACEMENT_ROUND_ROBIN,
            PLACEMENT_INTERLEAVED,
        ):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.n_gpus = n_gpus
        self.placement = placement
        self._home: dict[int, int] = {}
        self._replicas: dict[int, set[int]] = {}
        self._rr_next = 0
        self.stats = PageTableStats()

    # -- placement ------------------------------------------------------------

    def home_of(self, page: int, accessor: int) -> int:
        """Home GPU of *page*, mapping it on first touch."""
        home = self._home.get(page)
        if home is not None:
            return home
        if self.placement == PLACEMENT_FIRST_TOUCH:
            home = accessor
        elif self.placement == PLACEMENT_ROUND_ROBIN:
            home = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.n_gpus
        else:  # PLACEMENT_INTERLEAVED: static hash of the page number
            home = page % self.n_gpus
        self._home[page] = home
        self.stats.pages_mapped += 1
        return home

    def resolve_accesses(
        self,
        pages: Sequence[int],
        accessor: int,
        on_first_touch: Optional[Callable[[int, int], None]] = None,
    ) -> tuple[list[int], list[bool]]:
        """Bulk page-table lookup for one GPU's access stream.

        Single-accessor convenience wrapper over :meth:`resolve_spans`.
        """
        return self.resolve_spans(
            pages, ((accessor, 0, len(pages)),), 0, on_first_touch
        )

    def resolve_spans(
        self,
        pages: Sequence[int],
        spans: Sequence[tuple[int, int, int]],
        from_index: int = 0,
        on_first_touch: Optional[Callable[[int, int], None]] = None,
    ) -> tuple[list[int], list[bool]]:
        """Bulk page-table lookup over interleaved chunk spans (hot path).

        *spans* lists ``(accessor, lo, hi)`` half-open index ranges into
        *pages*, contiguous and in global issue order; entries before
        *from_index* are skipped (the engine re-resolves from mid-kernel
        after a migration).  One pass in stream order: unmapped pages are
        first-touch-mapped exactly as :meth:`home_of` would at the access
        position (placement-order sensitive policies such as round-robin
        see the same touch order), and each access is classified as
        locally serviceable by its span's accessor — homed there or
        replicated there.  *on_first_touch* is invoked as ``(page, home)``
        the moment a page is mapped, before any later access of the
        stream is classified, so replicas it installs are visible to the
        rest of the stream, matching the per-access engine.

        Returns ``(homes, local)`` lists parallel to
        ``pages[from_index:]``.
        """
        get = self._home.get
        replicas = self._replicas
        home_of = self.home_of
        homes: list[int] = []
        local: list[bool] = []
        h_append = homes.append
        l_append = local.append
        # Within one resolution pass a page's (home, local-to-accessor)
        # pair is stable: homes only change via migration (the engine
        # re-resolves after one) and replicas are only installed at the
        # page's own first touch, which precedes any memo entry for it.
        # Access streams revisit pages heavily, so per-accessor memos
        # skip most of the table/replica lookups.
        memos: dict[int, dict[int, tuple[int, bool]]] = {}
        for accessor, lo, hi in spans:
            if hi <= from_index:
                continue
            if lo < from_index:
                lo = from_index
            memo = memos.get(accessor)
            if memo is None:
                memo = memos[accessor] = {}
            memo_get = memo.get
            for page in pages[lo:hi]:
                ent = memo_get(page)
                if ent is not None:
                    h_append(ent[0])
                    l_append(ent[1])
                    continue
                home = get(page)
                if home is None:
                    home = home_of(page, accessor)
                    if on_first_touch is not None:
                        on_first_touch(page, home)
                if home == accessor:
                    is_local = True
                elif replicas:
                    holders = replicas.get(page)
                    is_local = holders is not None and accessor in holders
                else:
                    is_local = False
                memo[page] = (home, is_local)
                h_append(home)
                l_append(is_local)
        return homes, local

    def is_mapped(self, page: int) -> bool:
        return page in self._home

    def peek_home(self, page: int) -> int:
        """Home of a mapped page (-1 if unmapped); no side effects."""
        return self._home.get(page, -1)

    # -- replication ------------------------------------------------------------

    def add_replica(self, page: int, gpu: int) -> bool:
        """Give *gpu* a local replica of *page*; True if newly created."""
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"gpu {gpu} out of range")
        holders = self._replicas.setdefault(page, set())
        if gpu in holders:
            return False
        holders.add(gpu)
        self.stats.replicas_created += 1
        return True

    def has_replica(self, page: int, gpu: int) -> bool:
        holders = self._replicas.get(page)
        return holders is not None and gpu in holders

    def collapse_replicas(self, page: int) -> int:
        """Destroy all replicas of *page* (write to an RO-replicated page).

        Returns how many replicas were collapsed.  The (prohibitive)
        software cost of doing this is exactly why the paper restricts
        replication to read-only pages.
        """
        holders = self._replicas.pop(page, None)
        if not holders:
            return 0
        self.stats.replicas_collapsed += len(holders)
        return len(holders)

    # -- migration ------------------------------------------------------------

    def migrate(self, page: int, new_home: int) -> int:
        """Re-home a mapped page; returns the previous home."""
        if page not in self._home:
            raise KeyError(f"page {page} is not mapped")
        if not 0 <= new_home < self.n_gpus:
            raise ValueError(f"gpu {new_home} out of range")
        old = self._home[page]
        if old != new_home:
            self._home[page] = new_home
            self.stats.migrations += 1
        return old

    # -- capacity accounting ------------------------------------------------------

    def pages_homed(self, gpu: int) -> int:
        return sum(1 for h in self._home.values() if h == gpu)

    def replicas_held(self, gpu: int) -> int:
        return sum(1 for holders in self._replicas.values() if gpu in holders)

    def capacity_pages(self, gpu: int) -> int:
        """Pages of physical memory *gpu* must provide (homed + replicas)."""
        return self.pages_homed(gpu) + self.replicas_held(gpu)

    @property
    def total_pages(self) -> int:
        return len(self._home)

    @property
    def total_replicas(self) -> int:
        return sum(len(h) for h in self._replicas.values())

    def replication_pressure(self) -> float:
        """Total capacity (incl. replicas) over application footprint."""
        if not self._home:
            return 1.0
        return (self.total_pages + self.total_replicas) / self.total_pages


__all__ = [
    "PageTable",
    "PageTableStats",
]
