"""The multi-GPU NUMA system model.

This module wires every substrate together — per-GPU cache hierarchies,
DRAM, the page table and placement/replication/migration runtime, the
interconnect, and (when enabled) the CARVE controllers with their
coherence protocol — and implements the per-access semantics:

read:  L1 -> L2 -> {local DRAM | RDC probe -> remote fetch (+RDC fill)}
write: write-through L1 -> {local L2/DRAM | RDC update + home write}
       -> coherence consult at the home node (possible invalidations)

Kernel boundaries apply the GPU software-coherence contract (invalidate
L1s, drop remote lines from LLCs) and, under CARVE-SWC, epoch-invalidate
the RDCs.

The simulator produces *counters* (see :mod:`repro.perf.stats`); timing is
priced separately by :mod:`repro.perf.model`.

Two execution engines implement the identical per-access semantics:

* ``vectorized`` (default) — the production hot path.  Per kernel it
  precomputes NumPy arrays of derived per-access quantities (page ids,
  cache set indices, DRAM bank/row coordinates), resolves page homes with
  a single bulk first-touch pass over the whole kernel (or per-access
  memoised resolution when migration can re-home pages mid-kernel), and
  drives a tight loop per scheduled chunk with every invariant hoisted
  into per-GPU context tuples, caches/DRAM operated on directly, and
  counters tallied in locals that persist across chunks and flush once
  per kernel.
* ``reference`` — the straightforward per-access loop, kept as the
  executable specification.  The equivalence test suite asserts the two
  engines produce bit-identical :class:`~repro.perf.stats.RunResult`
  counters across the workload suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import (
    COHERENCE_SOFTWARE,
    LINE_BYTES,
    LINK_HEADER_BYTES,
    INVALIDATE_MSG_BYTES,
    WRITE_BACK,
    SystemConfig,
)
from repro.core.carve import CarveController
from repro.core.coherence import make_protocol
from repro.core.rdc import DIRTY_MAP_REGION_LINES
from repro.gpu.cta import KernelTrace, WorkloadTrace
from repro.gpu.scheduler import schedule_kernel
from repro.memory.address import AddressMap
from repro.memory.cache import CacheLineState, SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.tlb import TlbHierarchy
from repro.numa.interconnect import FaultSchedule, Interconnect
from repro.numa.migration import SHOOTDOWN_LATENCY_NS, MigrationEngine
from repro.numa.pagetable import PageTable
from repro.numa.replication import ReplicationPlan
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult


class GpuNode:
    """One GPU: aggregate L1, LLC slice, local DRAM, TLBs, optional RDC."""

    def __init__(self, gpu_id: int, config: SystemConfig, amap: AddressMap) -> None:
        self.gpu_id = gpu_id
        self.l1 = SetAssociativeCache(
            config.l1_lines, config.gpu.l1_ways, name=f"gpu{gpu_id}.l1"
        )
        self.l2 = SetAssociativeCache(
            config.l2_lines, config.gpu.l2_ways, name=f"gpu{gpu_id}.l2"
        )
        self.dram = DramModel(config.memory, amap)
        self.tlb = TlbHierarchy() if config.model_tlb else None
        self.carve: Optional[CarveController] = None
        if config.has_rdc:
            assert config.rdc is not None
            self.carve = CarveController(gpu_id, config.rdc_lines, config.rdc)


#: Execution-engine names (see the module docstring).
ENGINE_VECTORIZED = "vectorized"
ENGINE_REFERENCE = "reference"


@dataclass
class _KernelPrecompute:
    """Per-access quantities derived once per kernel (or chunk) in bulk.

    All members are plain Python lists (``ndarray.tolist()`` output) so
    the inner loop pays C-speed list indexing instead of NumPy scalar
    boxing.  Cache geometry is identical across GPUs and the DRAM
    bank/row mapping depends only on the line number, so one precompute
    serves every chunk of a kernel regardless of which GPU runs it.
    """

    __slots__ = ("lines", "writes", "pages", "l1_idx", "l2_idx", "banks", "rows")

    lines: list
    writes: list
    pages: list
    l1_idx: list
    l2_idx: list
    banks: list
    rows: list


class MultiGpuSystem:
    """A configured NUMA multi-GPU executing workload traces."""

    def __init__(
        self,
        config: SystemConfig,
        replication_plan: Optional[ReplicationPlan] = None,
        label: Optional[str] = None,
        engine: str = ENGINE_VECTORIZED,
        obs=None,
    ) -> None:
        config.validate()
        if engine not in (ENGINE_VECTORIZED, ENGINE_REFERENCE):
            raise ValueError(f"unknown execution engine {engine!r}")
        self.engine = engine
        #: Optional :class:`repro.obs.Observability`.  Duck-typed (no
        #: import of repro.obs here) and consulted only on rare paths —
        #: kernel boundaries, migrations, replica installs — so an
        #: observed run stays bit-identical to an unobserved one.
        self.obs = obs
        self.config = config
        self.label = label or _default_label(config)
        self.amap = AddressMap(
            lines_per_page=config.lines_per_page,
            n_channels=config.memory.n_channels,
            row_bytes=max(LINE_BYTES, config.memory.row_bytes),
        )
        self.nodes = [GpuNode(g, config, self.amap) for g in range(config.n_gpus)]
        self.pagetable = PageTable(config.n_gpus, config.placement)
        faults = (
            FaultSchedule(config.n_gpus, config.link_faults)
            if config.link_faults is not None and config.link_faults.active
            else None
        )
        self.interconnect = Interconnect(config.n_gpus, config.link, faults)
        #: Index of the next kernel to execute (fault-epoch clock; counts
        #: every kernel including warmup).
        self._kernel_index = 0
        if config.has_rdc:
            assert config.rdc is not None
            self.protocol = make_protocol(
                config.rdc.coherence, config.n_gpus, config.rdc
            )
        else:
            # Baseline NUMA-GPU relies on GPU software coherence.
            self.protocol = make_protocol(COHERENCE_SOFTWARE, config.n_gpus)
        self.migration = (
            MigrationEngine(self.pagetable, config.migration_threshold)
            if config.migration
            else None
        )
        self._replica_holders: dict[int, list[int]] = (
            dict(replication_plan.replica_holders) if replication_plan else {}
        )
        #: Distinct remote pages each GPU has fetched (Fig. 5 measurement).
        self._remote_pages: list[set[int]] = [set() for _ in range(config.n_gpus)]
        self._stream = 0

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------

    def run(self, trace: WorkloadTrace) -> RunResult:
        """Execute a whole workload; returns the accumulated counters."""
        result = RunResult(
            workload=trace.name, config_label=self.label, n_gpus=self.config.n_gpus
        )
        for kernel in trace.kernels:
            result.kernels.append(self.run_kernel(kernel))
        result.pages_mapped = [
            self.pagetable.pages_homed(g) for g in range(self.config.n_gpus)
        ]
        result.pages_replicated = [
            self.pagetable.replicas_held(g) for g in range(self.config.n_gpus)
        ]
        result.remote_pages_touched = [len(s) for s in self._remote_pages]
        if self.obs is not None:
            self.obs.end_run(result, self)
        return result

    def run_kernel(self, kernel: KernelTrace) -> KernelStats:
        """Execute one kernel launch, then apply the kernel boundary."""
        cfg = self.config
        ks = KernelStats(
            kernel_id=kernel.kernel_id,
            n_gpus=cfg.n_gpus,
            instr_per_access=kernel.instr_per_access,
            concurrency_per_sm=kernel.concurrency_per_sm,
            warmup=kernel.warmup,
        )
        self._stream = kernel.stream
        if self.obs is not None:
            self.obs.begin_kernel(self._kernel_index, kernel.kernel_id)
        self.interconnect.begin_kernel(self._kernel_index)
        self._kernel_index += 1
        dram_before = [
            (n.dram.stats.reads, n.dram.stats.writes,
             n.dram.stats.row_hits, n.dram.stats.row_misses)
            for n in self.nodes
        ]
        chunks = schedule_kernel(kernel, cfg)
        if self.engine == ENGINE_REFERENCE:
            for gpu, lines, is_write in chunks:
                self._process_chunk_reference(gpu, lines, is_write, ks)
        elif chunks:
            # One bulk precompute for the whole kernel, amortising the
            # NumPy fixed costs across every chunk.
            pre = self._precompute(
                np.concatenate([c[1] for c in chunks]),
                np.concatenate([c[2] for c in chunks]),
            )
            spans = []
            offset = 0
            for gpu, lines, _ in chunks:
                n = len(lines)
                spans.append((gpu, offset, offset + n))
                offset += n
            self._run_kernel_vectorized(ks, pre, spans)
        for st in ks.gpus:
            st.instructions = st.accesses * kernel.instr_per_access
        # The kernel boundary belongs to the kernel that just ended: its
        # write-back flush traffic (link bytes, home DRAM writes) must be
        # captured before the per-kernel snapshots below, not leak into
        # the next kernel — or vanish entirely after the last one.
        self.kernel_boundary(ks, stream=kernel.stream)
        self._capture_dram_deltas(ks, dram_before)
        if self.interconnect.faults is not None:
            ks.link_bytes, ks.link_scale = (
                self.interconnect.snapshot_faulted_and_reset()
            )
        else:
            ks.link_bytes = self.interconnect.snapshot_and_reset()
        if self.obs is not None:
            # After the boundary + snapshots: ks is complete, including
            # flush traffic and the (possibly faulted) link matrix.
            self.obs.end_kernel(ks, self)
        return ks

    def kernel_boundary(self, ks: Optional[KernelStats] = None, stream: int = 0) -> None:
        """Apply end-of-kernel software-coherence actions."""
        for node in self.nodes:
            node.l1.invalidate_all()
            node.l2.invalidate_remote()
            if node.carve is not None and self.protocol.flush_rdc_at_kernel_boundary:
                dirty_lines = (
                    node.carve.rdc.dirty_lines()
                    if node.carve.defers_home_writes
                    else []
                )
                flushed = node.carve.kernel_boundary(stream)
                if self.obs is not None:
                    self.obs.on_epoch_flush(node.gpu_id, flushed)
                # A write-back RDC must push its dirty lines home.
                for line in dirty_lines:
                    home = self.pagetable.peek_home(line // self.amap.lines_per_page)
                    if home < 0 or home == node.gpu_id:
                        continue
                    self.interconnect.send(
                        node.gpu_id, home, LINK_HEADER_BYTES + LINE_BYTES
                    )
                    self.nodes[home].dram.access(line, True)
                    if ks is not None:
                        ks.gpus[node.gpu_id].remote_writes += 1

    # ------------------------------------------------------------------
    # Per-access semantics
    # ------------------------------------------------------------------

    def access(self, gpu: int, line: int, is_write: bool) -> KernelStats:
        """Single-access entry point (tests and interactive use)."""
        ks = KernelStats(kernel_id=-1, n_gpus=self.config.n_gpus,
                         instr_per_access=1.0, concurrency_per_sm=32.0)
        dram_before = [
            (n.dram.stats.reads, n.dram.stats.writes,
             n.dram.stats.row_hits, n.dram.stats.row_misses)
            for n in self.nodes
        ]
        self._process_chunk(
            gpu,
            np.asarray([line], dtype=np.int64),
            np.asarray([is_write], dtype=bool),
            ks,
        )
        self._capture_dram_deltas(ks, dram_before)
        if self.interconnect.faults is not None:
            ks.link_bytes, ks.link_scale = (
                self.interconnect.snapshot_faulted_and_reset()
            )
        else:
            ks.link_bytes = self.interconnect.snapshot_and_reset()
        return ks

    def _capture_dram_deltas(self, ks: KernelStats, before) -> None:
        for g, st in enumerate(ks.gpus):
            r0, w0, h0, m0 = before[g]
            d = self.nodes[g].dram.stats
            st.dram_reads = d.reads - r0
            st.dram_writes = d.writes - w0
            st.dram_row_hits = d.row_hits - h0
            st.dram_row_misses = d.row_misses - m0

    def _on_first_touch(self, page: int, home: int) -> None:
        """Install planned replicas once the page's home is known."""
        holders = self._replica_holders.get(page)
        if holders:
            installed = [g for g in holders if g != home]
            for g in installed:
                self.pagetable.add_replica(page, g)
            if installed and self.obs is not None:
                self.obs.on_replication(page, installed)

    def _precompute(self, lines: np.ndarray, is_write) -> _KernelPrecompute:
        """Derive every per-access quantity that is pure line arithmetic."""
        cfg = self.config
        amap = self.amap
        n_channels = amap.n_channels
        in_channel = lines // n_channels
        channels = lines % n_channels
        bpc = cfg.memory.banks_per_channel
        l1_sets = self.nodes[0].l1.n_sets
        l2_sets = self.nodes[0].l2.n_sets
        return _KernelPrecompute(
            lines=lines.tolist(),
            writes=np.asarray(is_write, dtype=bool).tolist(),
            pages=(lines // amap.lines_per_page).tolist(),
            l1_idx=(lines % l1_sets).tolist(),
            l2_idx=(lines % l2_sets).tolist(),
            banks=(channels * bpc + in_channel % bpc).tolist(),
            rows=(in_channel // amap.lines_per_row).tolist(),
        )

    def _process_chunk(self, gpu: int, lines, is_write, ks: KernelStats) -> None:
        """Execute one scheduled chunk of accesses (engine dispatch)."""
        if self.engine == ENGINE_REFERENCE:
            self._process_chunk_reference(gpu, lines, is_write, ks)
            return
        pre = self._precompute(np.asarray(lines, dtype=np.int64), is_write)
        self._run_kernel_vectorized(ks, pre, [(gpu, 0, len(pre.lines))])

    def _run_kernel_vectorized(
        self, ks: KernelStats, pre: _KernelPrecompute,
        spans: list[tuple[int, int, int]],
    ) -> None:
        """Vectorized engine: one whole kernel of interleaved chunk spans.

        Counter-for-counter identical to :meth:`_process_chunk_reference`
        (asserted by tests/test_hotpath_equivalence.py).  *spans* lists
        ``(gpu, start, stop)`` half-open ranges covering *pre* contiguously
        in global issue order — the scheduler's chunked round-robin
        interleaving.  Structure: per-GPU invariants hoisted into context
        tuples built once per kernel, then a tight loop per span over the
        partition {read, write} x {local, remote} with all per-access stat
        bumps batched into locals that persist across spans and flush once
        per kernel.

        Page resolution runs in one of two modes.  Without migration,
        homes never change mid-kernel, so one bulk
        :meth:`PageTable.resolve_spans` pass precomputes parallel
        home/local arrays for the whole kernel (first-touch order equals
        issue order, so resolve-ahead is exact).  With migration enabled,
        a migration would invalidate such arrays wholesale, so resolution
        is instead memoised per (page, accessor) at the access site —
        first touch happens exactly at reference position — and a
        migration just evicts the moved page from every GPU's memo.
        """
        if not spans:
            return
        cfg = self.config
        pt = self.pagetable
        protocol = self.protocol
        send = self.interconnect.send
        nodes = self.nodes
        ks_gpus = ks.gpus
        stream = self._stream
        migration = self.migration
        l2_lat = cfg.gpu.l2_hit_latency_ns
        link_lat = self.interconnect.config.latency_ns

        # Kernel-level precompute, indexed absolutely.
        lines_c = pre.lines
        writes_c = pre.writes
        pages_c = pre.pages
        l1i_c = pre.l1_idx
        l2i_c = pre.l2_idx
        banks_c = pre.banks
        rows_c = pre.rows

        # Hoisted structure aliases (each owner documents the contract).
        # Cache geometry and DRAM timing are uniform across nodes.
        l1_ways = nodes[0].l1.ways
        l2_ways = nodes[0].l2.ways
        hit_lat = cfg.memory.row_hit_latency_ns
        miss_lat = cfg.memory.row_miss_latency_ns
        may_invalidate = protocol.may_invalidate
        tracks_reads = protocol.tracks_remote_reads
        invalidation_targets = protocol.invalidation_targets
        note_remote_read = protocol.note_remote_read
        line_state = CacheLineState
        hdr = LINK_HEADER_BYTES
        hdr_line = LINK_HEADER_BYTES + LINE_BYTES
        n_gpus = cfg.n_gpus
        # Migration inline fast path: count remote accesses against the
        # live table; only a counter reaching the threshold pays a call.
        if migration is not None:
            mig_counts = migration.counts
            mig_threshold = migration.threshold
        else:
            mig_counts = None
            mig_threshold = 0
        l2_sets_by_node = [n.l2.sets for n in nodes]
        open_rows_by_node = [n.dram.open_rows for n in nodes]
        ic = self.interconnect.rows
        link2 = 2 * link_lat
        link2_l2 = link2 + l2_lat

        # Per-GPU execution contexts and counter accumulators, built once
        # per kernel (spans revisit each GPU every interleave round, so
        # re-deriving these per span would dominate small-chunk runs).
        # The RDC is inlined (direct-mapped tag/epoch arrays) only
        # without a hit predictor — predictor configs keep the
        # CarveController method path.
        ctx = []
        acc = []
        for g in range(n_gpus):
            node = nodes[g]
            carve = node.carve
            c_read = carve.remote_read if carve is not None else None
            c_write = carve.remote_write if carve is not None else None
            defers = carve.defers_home_writes if carve is not None else False
            rdc_tags = rdc_eps = rdc_dirty = dirty_regions = None
            rdc_nsets = cur_epoch = 0
            rdc_wb = False
            if carve is not None and carve.predictor is None:
                rdc = carve.rdc
                rdc_tags = rdc.tags
                rdc_eps = rdc.line_epochs
                rdc_dirty = rdc.dirty_flags
                dirty_regions = rdc.dirty_regions
                rdc_nsets = rdc.n_sets
                # Epochs only advance at kernel boundaries, never
                # mid-kernel, so the snapshot is exact for this kernel.
                cur_epoch = rdc.epochs.current(stream)
                rdc_wb = rdc.write_policy == WRITE_BACK
            ctx.append((
                ks_gpus[g], node.l1.sets, node.l2.sets,
                node.dram.open_rows, node.dram.access,
                self._remote_pages[g], node.tlb,
                c_read, c_write, defers, rdc_tags, rdc_eps, rdc_dirty,
                dirty_regions, rdc_nsets, cur_epoch, rdc_wb,
            ))
            # Accumulator layout (kept in lockstep with the unpack below):
            # [accesses, writes, l1_hits, l2_hits, local_reads,
            #  local_writes, remote_reads, remote_writes, rdc_hits,
            #  rdc_misses, rdc_inserts, rdc_bypasses, invalidates_sent,
            #  latency_ns, c1_hits, c1_misses, c2_hits, c2_misses,
            #  dram_reads, dram_writes, dram_row_hits, dram_row_misses,
            #  dram_latency, rdc_probes, rdc_stat_hits, rdc_stale,
            #  rdc_stat_inserts, rdc_stat_writes]
            acc.append([0] * 13 + [0.0] + [0] * 8 + [0.0] + [0] * 5)

        # Home-node DRAM deltas, indexed by node: peer landings from any
        # requester accumulate here; requesters' own deltas merge in at
        # the flush.
        p_reads = [0] * n_gpus
        p_writes = [0] * n_gpus
        p_rh = [0] * n_gpus
        p_rm = [0] * n_gpus
        p_lat = [0.0] * n_gpus
        m_obs = 0

        if migration is None:
            homes_c, local_c = pt.resolve_spans(
                pages_c, spans, 0, self._on_first_touch
            )
            memos = None
        else:
            homes_c = local_c = None
            memos = [{} for _ in range(n_gpus)]
            mapped_get = pt._home.get  # hot-path alias; PageTable owns it
            home_of = pt.home_of
            replicas = pt._replicas
            on_first_touch = self._on_first_touch

        for gpu, cs, ce in spans:
            (st, l1_sets, l2_sets, open_rows, dram_access, remote_pages,
             tlb, carve_read, carve_write, defers, rdc_tags, rdc_eps,
             rdc_dirty, dirty_regions, rdc_nsets, cur_epoch,
             rdc_wb) = ctx[gpu]
            (acc0, wr, l1h, l2h, lr, lw, rr, rw, rdch, rdcm, rdci,
             rdcb, inv_sent, lat, c1h, c1m, c2h, c2m, d_reads,
             d_writes, d_rh, d_rm, d_lat, r_probes, r_hits, r_stale,
             r_ins, r_wr) = acc[gpu]
            if memos is not None:
                memo = memos[gpu]
                memo_get = memo.get
            for j in range(cs, ce):
                line = lines_c[j]
                if tlb is not None:
                    tlb.translate(pages_c[j])
                s1 = l1_sets[l1i_c[j]]

                if writes_c[j]:
                    # ---- write path (write-through L1, no allocate) ----
                    wr += 1
                    if homes_c is not None:
                        home = homes_c[j]
                        is_local = local_c[j]
                    else:
                        page = pages_c[j]
                        ent = memo_get(page)
                        if ent is not None:
                            home = ent[0]
                            is_local = ent[1]
                        else:
                            home = mapped_get(page)
                            if home is None:
                                home = home_of(page, gpu)
                                on_first_touch(page, home)
                            if home == gpu:
                                is_local = True
                            elif replicas:
                                holders = replicas.get(page)
                                is_local = (
                                    holders is not None and gpu in holders
                                )
                            else:
                                is_local = False
                            memo[page] = (home, is_local)
                    if line in s1:
                        c1h += 1
                        l1h += 1
                        s1.move_to_end(line)
                    else:
                        c1m += 1
                    if is_local:
                        lw += 1
                        s2 = l2_sets[l2i_c[j]]
                        state = s2.get(line)
                        if state is not None:
                            state.dirty = True
                            s2.move_to_end(line)
                        else:
                            # Local DRAM write (inlined dram.access).
                            b = banks_c[j]
                            r = rows_c[j]
                            if open_rows[b] == r:
                                d_rh += 1
                                d_lat += hit_lat
                            else:
                                open_rows[b] = r
                                d_rm += 1
                                d_lat += miss_lat
                            d_writes += 1
                    else:
                        page = pages_c[j]
                        rw += 1
                        remote_pages.add(page)
                        deferred = False
                        if rdc_tags is not None:
                            # Inlined rdc.write: refresh a resident copy.
                            sr = line % rdc_nsets
                            if (
                                rdc_tags[sr] == line
                                and rdc_eps[sr] == cur_epoch
                            ):
                                r_wr += 1
                                if rdc_wb:
                                    rdc_dirty[sr] = True
                                    dirty_regions.add(
                                        line // DIRTY_MAP_REGION_LINES
                                    )
                                updated = True
                            else:
                                updated = False
                        else:
                            updated = carve_write is not None and (
                                carve_write(line, stream)
                            )
                        if updated:
                            # RDC copy refresh: a local DRAM write.
                            b = banks_c[j]
                            r = rows_c[j]
                            if open_rows[b] == r:
                                d_rh += 1
                                d_lat += hit_lat
                            else:
                                open_rows[b] = r
                                d_rm += 1
                                d_lat += miss_lat
                            d_writes += 1
                            deferred = defers
                        if not deferred:
                            ic[gpu][home] += hdr_line
                            lat += link_lat
                            # Inlined home-store landing: the home LLC
                            # absorbs it if the line is resident, else
                            # its DRAM does (bank/row math is identical
                            # across nodes).
                            s2h = l2_sets_by_node[home][l2i_c[j]]
                            hstate = s2h.get(line)
                            if hstate is not None:
                                hstate.dirty = True
                                s2h.move_to_end(line)
                            else:
                                orh = open_rows_by_node[home]
                                b = banks_c[j]
                                r = rows_c[j]
                                if orh[b] == r:
                                    p_rh[home] += 1
                                    p_lat[home] += hit_lat
                                else:
                                    orh[b] = r
                                    p_rm[home] += 1
                                    p_lat[home] += miss_lat
                                p_writes[home] += 1
                        if mig_counts is not None:
                            # Inlined migration.note_remote_access.
                            m_obs += 1
                            key = (page, gpu)
                            cnt = mig_counts.get(key, 0) + 1
                            mig_counts[key] = cnt
                            if cnt >= mig_threshold and (
                                migration.attempt_migration(page, gpu)
                            ):
                                self._do_migration(page, gpu, home, st)
                                # The page's home (and locality for every
                                # GPU) changed: evict it from all memos.
                                for mm in memos:
                                    mm.pop(page, None)
                    # Coherence: the home controller sees the store.
                    if may_invalidate:
                        targets = invalidation_targets(home, gpu, line)
                        if targets:
                            for p in targets:
                                if p != home:
                                    # Invalidates to the home's own
                                    # caches stay on-chip; only remote
                                    # targets cost a message.
                                    send(home, p, INVALIDATE_MSG_BYTES)
                                pn = nodes[p]
                                pn.l1.invalidate_line(line)
                                pn.l2.invalidate_line(line)
                                if pn.carve is not None:
                                    pn.carve.invalidate(line)
                                ks_gpus[p].invalidates_received += 1
                            inv_sent += len(targets)
                            protocol.note_invalidated(home, line)
                    continue

                # ---- read path ----
                if line in s1:
                    c1h += 1
                    l1h += 1
                    s1.move_to_end(line)
                    continue
                c1m += 1
                s2 = l2_sets[l2i_c[j]]
                if line in s2:
                    c2h += 1
                    l2h += 1
                    s2.move_to_end(line)
                    lat += l2_lat
                    if len(s1) >= l1_ways:
                        s1.popitem(last=False)
                    s1[line] = line_state(False, False)
                    continue
                c2m += 1
                if homes_c is not None:
                    home = homes_c[j]
                    is_local = local_c[j]
                else:
                    page = pages_c[j]
                    ent = memo_get(page)
                    if ent is not None:
                        home = ent[0]
                        is_local = ent[1]
                    else:
                        home = mapped_get(page)
                        if home is None:
                            home = home_of(page, gpu)
                            on_first_touch(page, home)
                        if home == gpu:
                            is_local = True
                        elif replicas:
                            holders = replicas.get(page)
                            is_local = (
                                holders is not None and gpu in holders
                            )
                        else:
                            is_local = False
                        memo[page] = (home, is_local)
                if is_local:
                    lr += 1
                    # Local DRAM read (inlined dram.access).
                    b = banks_c[j]
                    r = rows_c[j]
                    if open_rows[b] == r:
                        d_rh += 1
                        d_lat += hit_lat
                        lat += hit_lat
                    else:
                        open_rows[b] = r
                        d_rm += 1
                        d_lat += miss_lat
                        lat += miss_lat
                    d_reads += 1
                    # L2 fill; a displaced dirty (always local) line
                    # writes back to this GPU's DRAM.
                    if len(s2) >= l2_ways:
                        vline, vstate = s2.popitem(last=False)
                        if vstate.dirty:
                            dram_access(vline, True)
                    s2[line] = line_state(False, False)
                    if len(s1) >= l1_ways:
                        s1.popitem(last=False)
                    s1[line] = line_state(False, False)
                    continue

                # Remote line, LLC miss.
                page = pages_c[j]
                lat += l2_lat  # own-LLC miss detection
                remote_pages.add(page)
                serviced_locally = False
                if rdc_tags is not None:
                    # Inlined rdc.probe + (on miss) rdc.insert.
                    sr = line % rdc_nsets
                    r_probes += 1
                    if rdc_tags[sr] == line:
                        if rdc_eps[sr] == cur_epoch:
                            rdc_hit = True
                        else:
                            r_stale += 1
                            rdc_hit = False
                    else:
                        rdc_hit = False
                    # Alloy probe: one local DRAM access (tag+data).
                    b = banks_c[j]
                    r = rows_c[j]
                    if open_rows[b] == r:
                        d_rh += 1
                        d_lat += hit_lat
                        lat += hit_lat
                    else:
                        open_rows[b] = r
                        d_rm += 1
                        d_lat += miss_lat
                        lat += miss_lat
                    d_reads += 1
                    if rdc_hit:
                        r_hits += 1
                        rdch += 1
                        lr += 1
                        serviced_locally = True
                    else:
                        rdcm += 1
                        rdc_tags[sr] = line
                        rdc_eps[sr] = cur_epoch
                        rdc_dirty[sr] = False
                        r_ins += 1
                elif carve_read is not None:
                    outcome = carve_read(line, stream)
                    if outcome.probed:
                        # Alloy probe: one local DRAM access (tag+data).
                        b = banks_c[j]
                        r = rows_c[j]
                        if open_rows[b] == r:
                            d_rh += 1
                            d_lat += hit_lat
                            lat += hit_lat
                        else:
                            open_rows[b] = r
                            d_rm += 1
                            d_lat += miss_lat
                            lat += miss_lat
                        d_reads += 1
                    else:
                        rdcb += 1
                    if outcome.kind == "rdc_hit":
                        rdch += 1
                        lr += 1
                        serviced_locally = True
                    else:
                        rdcm += 1
                if not serviced_locally:
                    rr += 1
                    ic[gpu][home] += hdr
                    # Inlined home fetch: home-LLC presence check, else
                    # home DRAM read (same line -> bank/row mapping).
                    s2h = l2_sets_by_node[home][l2i_c[j]]
                    if line in s2h:
                        lat += link2_l2
                    else:
                        orh = open_rows_by_node[home]
                        b = banks_c[j]
                        r = rows_c[j]
                        if orh[b] == r:
                            p_rh[home] += 1
                            p_lat[home] += hit_lat
                            lat += link2 + hit_lat
                        else:
                            orh[b] = r
                            p_rm[home] += 1
                            p_lat[home] += miss_lat
                            lat += link2 + miss_lat
                        p_reads[home] += 1
                    ic[home][gpu] += hdr_line
                    if tracks_reads:
                        note_remote_read(home, gpu, line)
                    if carve_read is not None:
                        # RDC fill: a local DRAM write off the critical
                        # path.
                        b = banks_c[j]
                        r = rows_c[j]
                        if open_rows[b] == r:
                            d_rh += 1
                            d_lat += hit_lat
                        else:
                            open_rows[b] = r
                            d_rm += 1
                            d_lat += miss_lat
                        d_writes += 1
                        rdci += 1
                    if mig_counts is not None:
                        # Inlined migration.note_remote_access.  The page
                        # may move under us; the fetched copy stays valid
                        # either way.
                        m_obs += 1
                        key = (page, gpu)
                        cnt = mig_counts.get(key, 0) + 1
                        mig_counts[key] = cnt
                        if cnt >= mig_threshold and (
                            migration.attempt_migration(page, gpu)
                        ):
                            self._do_migration(page, gpu, home, st)
                            # Home/locality changed for every GPU: evict
                            # the page from all memos.
                            for mm in memos:
                                mm.pop(page, None)
                # L2 fill (remote) + L1 fill.
                if len(s2) >= l2_ways:
                    vline, vstate = s2.popitem(last=False)
                    if vstate.dirty:
                        dram_access(vline, True)
                s2[line] = line_state(False, True)
                if len(s1) >= l1_ways:
                    s1.popitem(last=False)
                s1[line] = line_state(False, False)

            # ---- bank the span's batched counters ----
            acc[gpu] = [
                acc0 + (ce - cs), wr, l1h, l2h, lr, lw, rr, rw, rdch,
                rdcm, rdci, rdcb, inv_sent, lat, c1h, c1m, c2h, c2m,
                d_reads, d_writes, d_rh, d_rm, d_lat, r_probes,
                r_hits, r_stale, r_ins, r_wr,
            ]

        # ---- flush the kernel's batched counters ----
        for g in range(n_gpus):
            a = acc[g]
            if not a[0]:
                continue
            node = nodes[g]
            ks_gpus[g].add_counts(
                accesses=a[0], writes=a[1], l1_hits=a[2], l2_hits=a[3],
                local_reads=a[4], local_writes=a[5], remote_reads=a[6],
                remote_writes=a[7], rdc_hits=a[8], rdc_misses=a[9],
                rdc_inserts=a[10], rdc_bypasses=a[11],
                invalidates_sent=a[12], latency_ns=a[13],
            )
            node.l1.add_lookup_counts(a[14], a[15])
            node.l2.add_lookup_counts(a[16], a[17])
            p_reads[g] += a[18]
            p_writes[g] += a[19]
            p_rh[g] += a[20]
            p_rm[g] += a[21]
            p_lat[g] += a[22]
            if a[23] or a[26] or a[27]:
                node.carve.rdc.stats.add_counts(
                    probes=a[23], hits=a[24], stale_epoch_misses=a[25],
                    inserts=a[26], writes=a[27],
                )
        for g in range(n_gpus):
            if p_reads[g] or p_writes[g]:
                nodes[g].dram.add_batch(
                    p_reads[g], p_writes[g], p_rh[g], p_rm[g], p_lat[g]
                )
        if m_obs:
            migration.add_observed(m_obs)

    def _process_chunk_reference(
        self, gpu: int, lines, is_write, ks: KernelStats
    ) -> None:
        """Reference engine: the executable per-access specification."""
        cfg = self.config
        node = self.nodes[gpu]
        st = ks.gpus[gpu]
        pt = self.pagetable
        lpp = self.amap.lines_per_page
        l1, l2 = node.l1, node.l2
        carve = node.carve
        protocol = self.protocol
        send = self.interconnect.send
        nodes = self.nodes
        stream = self._stream
        migration = self.migration
        remote_pages = self._remote_pages[gpu]
        l2_lat = cfg.gpu.l2_hit_latency_ns
        tlb = node.tlb

        mapped = pt._home  # hot-path alias; PageTable owns the dict
        for line, write in zip(lines.tolist(), is_write.tolist()):
            page = line // lpp
            home = mapped.get(page)
            if home is None:
                home = pt.home_of(page, gpu)
                self._on_first_touch(page, home)
            if tlb is not None:
                tlb.translate(page)
            st.accesses += 1
            local = home == gpu or pt.has_replica(page, gpu)

            if write:
                st.writes += 1
                if l1.lookup(line):
                    st.l1_hits += 1
                # Write-through L1: the store always proceeds to the L2
                # (local lines) or toward the home node (remote lines).
                if local:
                    st.local_writes += 1
                    if not l2.mark_dirty(line):
                        node.dram.access(line, True)
                else:
                    st.remote_writes += 1
                    remote_pages.add(page)
                    deferred = False
                    if carve is not None:
                        if carve.remote_write(line, stream):
                            node.dram.access(line, True)  # RDC copy refresh
                            deferred = carve.defers_home_writes
                    if not deferred:
                        send(gpu, home, LINK_HEADER_BYTES + LINE_BYTES)
                        st.latency_ns += self.interconnect.config.latency_ns
                        hnode = nodes[home]
                        if not hnode.l2.mark_dirty(line):
                            hnode.dram.access(line, True)
                    if migration is not None:
                        self._maybe_migrate(page, gpu, home, st)
                # Coherence: the home controller sees the store.
                targets = protocol.invalidation_targets(home, gpu, line)
                if targets:
                    for p in targets:
                        if p != home:
                            # Invalidates to the home's own caches stay
                            # on-chip; only remote targets cost a message.
                            send(home, p, INVALIDATE_MSG_BYTES)
                        pn = nodes[p]
                        pn.l1.invalidate_line(line)
                        pn.l2.invalidate_line(line)
                        if pn.carve is not None:
                            pn.carve.invalidate(line)
                        ks.gpus[p].invalidates_received += 1
                    st.invalidates_sent += len(targets)
                    protocol.note_invalidated(home, line)
                continue

            # ---- read path ----
            if l1.lookup(line):
                st.l1_hits += 1
                continue
            if l2.lookup(line):
                st.l2_hits += 1
                st.latency_ns += l2_lat
                l1.insert(line)
                continue
            if local:
                st.local_reads += 1
                st.latency_ns += node.dram.access(line, False)
                self._fill_l2(node, st, line, remote=False)
                l1.insert(line)
                continue

            # Remote line, LLC miss.
            st.latency_ns += l2_lat  # own-LLC miss detection
            remote_pages.add(page)
            serviced_locally = False
            if carve is not None:
                outcome = carve.remote_read(line, stream)
                if outcome.probed:
                    # Alloy probe: one local DRAM access reads tag+data.
                    st.latency_ns += node.dram.access(line, False)
                else:
                    st.rdc_bypasses += 1
                if outcome.kind == "rdc_hit":
                    st.rdc_hits += 1
                    st.local_reads += 1
                    serviced_locally = True
                else:
                    st.rdc_misses += 1
            if not serviced_locally:
                st.remote_reads += 1
                link_lat = self.interconnect.config.latency_ns
                send(gpu, home, LINK_HEADER_BYTES)
                hnode = nodes[home]
                if hnode.l2.contains(line):
                    st.latency_ns += 2 * link_lat + l2_lat
                else:
                    st.latency_ns += 2 * link_lat + hnode.dram.access(line, False)
                send(home, gpu, LINK_HEADER_BYTES + LINE_BYTES)
                protocol.note_remote_read(home, gpu, line)
                if carve is not None:
                    # RDC fill: a local DRAM write off the critical path.
                    node.dram.access(line, True)
                    st.rdc_inserts += 1
                if migration is not None:
                    # The page may move under us; the fetched copy stays
                    # valid either way.
                    self._maybe_migrate(page, gpu, home, st)
            self._fill_l2(node, st, line, remote=True)
            l1.insert(line)

    def _fill_l2(self, node: GpuNode, st: GpuKernelStats, line: int,
                 remote: bool) -> None:
        victim = node.l2.insert(line, remote=remote)
        if victim is not None and victim.dirty:
            # Dirty L2 lines are always locally homed (writes to remote
            # lines write through), so the writeback hits this GPU's DRAM.
            node.dram.access(victim.line, True)

    def _maybe_migrate(self, page: int, gpu: int, home: int,
                       st: GpuKernelStats) -> bool:
        """Migrate *page* to *gpu* if the engine's threshold trips.

        Returns True when the page actually moved (the vectorized engine
        must then recompute its precomputed homes for the rest of the
        chunk).
        """
        assert self.migration is not None
        if home == gpu or not self.migration.note_remote_access(page, gpu):
            return False
        self._do_migration(page, gpu, home, st)
        return True

    def _do_migration(self, page: int, gpu: int, home: int,
                      st: GpuKernelStats) -> None:
        """Execute a decided migration: transfer, shootdown, accounting."""
        lpp = self.amap.lines_per_page
        # Transfer the whole page over the old-home -> gpu link.
        self.interconnect.send(
            home, gpu, lpp * LINE_BYTES + LINK_HEADER_BYTES
        )
        first = page * lpp
        hnode, gnode = self.nodes[home], self.nodes[gpu]
        hnode.dram.access_run(first, lpp, False)
        gnode.dram.access_run(first, lpp, True)
        # TLB shootdown: every GPU drops the stale translation; cached
        # copies of the page's lines are invalidated everywhere else.
        # The requester keeps its L1/L2 copies (the data is unchanged and
        # now local) but must drop its *RDC* entries: the page is no
        # longer remote, so a stale remote-cache copy would shadow the
        # now-authoritative local DRAM and dodge future invalidations.
        for n in self.nodes:
            if n.tlb is not None:
                n.tlb.shootdown(page)
            if n.gpu_id != gpu:
                for ln in range(first, first + lpp):
                    n.l1.invalidate_line(ln)
                    n.l2.invalidate_line(ln)
                    if n.carve is not None:
                        n.carve.invalidate(ln)
            elif n.carve is not None:
                for ln in range(first, first + lpp):
                    n.carve.invalidate(ln)
        st.latency_ns += SHOOTDOWN_LATENCY_NS
        st.migrations += 1
        if self.obs is not None:
            self.obs.on_migration(page, gpu, home)


def _default_label(config: SystemConfig) -> str:
    if config.n_gpus == 1:
        return "single-gpu"
    if config.has_rdc:
        assert config.rdc is not None
        gb = config.rdc.size_bytes / 2**30
        return f"carve-{config.rdc.coherence}-{gb:g}GB"
    parts = ["numa-gpu"]
    if config.replication != "none":
        parts.append(f"repl-{config.replication}")
    if config.migration:
        parts.append("mig")
    return "+".join(parts)


__all__ = [
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "GpuNode",
    "MultiGpuSystem",
]
