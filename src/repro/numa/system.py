"""The multi-GPU NUMA system model.

This module wires every substrate together — per-GPU cache hierarchies,
DRAM, the page table and placement/replication/migration runtime, the
interconnect, and (when enabled) the CARVE controllers with their
coherence protocol — and implements the per-access semantics:

read:  L1 -> L2 -> {local DRAM | RDC probe -> remote fetch (+RDC fill)}
write: write-through L1 -> {local L2/DRAM | RDC update + home write}
       -> coherence consult at the home node (possible invalidations)

Kernel boundaries apply the GPU software-coherence contract (invalidate
L1s, drop remote lines from LLCs) and, under CARVE-SWC, epoch-invalidate
the RDCs.

The simulator produces *counters* (see :mod:`repro.perf.stats`); timing is
priced separately by :mod:`repro.perf.model`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import (
    COHERENCE_SOFTWARE,
    LINE_BYTES,
    LINK_HEADER_BYTES,
    INVALIDATE_MSG_BYTES,
    SystemConfig,
)
from repro.core.carve import CarveController
from repro.core.coherence import make_protocol
from repro.gpu.cta import KernelTrace, WorkloadTrace
from repro.gpu.scheduler import schedule_kernel
from repro.memory.address import AddressMap
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.tlb import TlbHierarchy
from repro.numa.interconnect import Interconnect
from repro.numa.migration import SHOOTDOWN_LATENCY_NS, MigrationEngine
from repro.numa.pagetable import PageTable
from repro.numa.replication import ReplicationPlan
from repro.perf.stats import GpuKernelStats, KernelStats, RunResult


class GpuNode:
    """One GPU: aggregate L1, LLC slice, local DRAM, TLBs, optional RDC."""

    def __init__(self, gpu_id: int, config: SystemConfig, amap: AddressMap) -> None:
        self.gpu_id = gpu_id
        self.l1 = SetAssociativeCache(
            config.l1_lines, config.gpu.l1_ways, name=f"gpu{gpu_id}.l1"
        )
        self.l2 = SetAssociativeCache(
            config.l2_lines, config.gpu.l2_ways, name=f"gpu{gpu_id}.l2"
        )
        self.dram = DramModel(config.memory, amap)
        self.tlb = TlbHierarchy() if config.model_tlb else None
        self.carve: Optional[CarveController] = None
        if config.has_rdc:
            assert config.rdc is not None
            self.carve = CarveController(gpu_id, config.rdc_lines, config.rdc)


class MultiGpuSystem:
    """A configured NUMA multi-GPU executing workload traces."""

    def __init__(
        self,
        config: SystemConfig,
        replication_plan: Optional[ReplicationPlan] = None,
        label: Optional[str] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.label = label or _default_label(config)
        self.amap = AddressMap(
            lines_per_page=config.lines_per_page,
            n_channels=config.memory.n_channels,
            row_bytes=max(LINE_BYTES, config.memory.row_bytes),
        )
        self.nodes = [GpuNode(g, config, self.amap) for g in range(config.n_gpus)]
        self.pagetable = PageTable(config.n_gpus, config.placement)
        self.interconnect = Interconnect(config.n_gpus, config.link)
        if config.has_rdc:
            assert config.rdc is not None
            self.protocol = make_protocol(
                config.rdc.coherence, config.n_gpus, config.rdc
            )
        else:
            # Baseline NUMA-GPU relies on GPU software coherence.
            self.protocol = make_protocol(COHERENCE_SOFTWARE, config.n_gpus)
        self.migration = (
            MigrationEngine(self.pagetable, config.migration_threshold)
            if config.migration
            else None
        )
        self._replica_holders: dict[int, list[int]] = (
            dict(replication_plan.replica_holders) if replication_plan else {}
        )
        #: Distinct remote pages each GPU has fetched (Fig. 5 measurement).
        self._remote_pages: list[set[int]] = [set() for _ in range(config.n_gpus)]
        self._stream = 0

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------

    def run(self, trace: WorkloadTrace) -> RunResult:
        """Execute a whole workload; returns the accumulated counters."""
        result = RunResult(
            workload=trace.name, config_label=self.label, n_gpus=self.config.n_gpus
        )
        for kernel in trace.kernels:
            result.kernels.append(self.run_kernel(kernel))
        result.pages_mapped = [
            self.pagetable.pages_homed(g) for g in range(self.config.n_gpus)
        ]
        result.pages_replicated = [
            self.pagetable.replicas_held(g) for g in range(self.config.n_gpus)
        ]
        result.remote_pages_touched = [len(s) for s in self._remote_pages]
        return result

    def run_kernel(self, kernel: KernelTrace) -> KernelStats:
        """Execute one kernel launch, then apply the kernel boundary."""
        cfg = self.config
        ks = KernelStats(
            kernel_id=kernel.kernel_id,
            n_gpus=cfg.n_gpus,
            instr_per_access=kernel.instr_per_access,
            concurrency_per_sm=kernel.concurrency_per_sm,
            warmup=kernel.warmup,
        )
        self._stream = kernel.stream
        dram_before = [
            (n.dram.stats.reads, n.dram.stats.writes,
             n.dram.stats.row_hits, n.dram.stats.row_misses)
            for n in self.nodes
        ]
        for gpu, lines, is_write in schedule_kernel(kernel, cfg):
            self._process_chunk(gpu, lines, is_write, ks)
        for st in ks.gpus:
            st.instructions = st.accesses * kernel.instr_per_access
        self._capture_dram_deltas(ks, dram_before)
        ks.link_bytes = self.interconnect.snapshot_and_reset()
        self.kernel_boundary(ks, stream=kernel.stream)
        return ks

    def kernel_boundary(self, ks: Optional[KernelStats] = None, stream: int = 0) -> None:
        """Apply end-of-kernel software-coherence actions."""
        for node in self.nodes:
            node.l1.invalidate_all()
            node.l2.invalidate_remote()
            if node.carve is not None and self.protocol.flush_rdc_at_kernel_boundary:
                dirty_lines = (
                    node.carve.rdc.dirty_lines()
                    if node.carve.defers_home_writes
                    else []
                )
                node.carve.kernel_boundary(stream)
                # A write-back RDC must push its dirty lines home.
                for line in dirty_lines:
                    home = self.pagetable.peek_home(line // self.amap.lines_per_page)
                    if home < 0 or home == node.gpu_id:
                        continue
                    self.interconnect.send(
                        node.gpu_id, home, LINK_HEADER_BYTES + LINE_BYTES
                    )
                    self.nodes[home].dram.access(line, True)
                    if ks is not None:
                        ks.gpus[node.gpu_id].remote_writes += 1

    # ------------------------------------------------------------------
    # Per-access semantics
    # ------------------------------------------------------------------

    def access(self, gpu: int, line: int, is_write: bool) -> KernelStats:
        """Single-access entry point (tests and interactive use)."""
        ks = KernelStats(kernel_id=-1, n_gpus=self.config.n_gpus,
                         instr_per_access=1.0, concurrency_per_sm=32.0)
        dram_before = [
            (n.dram.stats.reads, n.dram.stats.writes,
             n.dram.stats.row_hits, n.dram.stats.row_misses)
            for n in self.nodes
        ]
        self._process_chunk(
            gpu,
            np.asarray([line], dtype=np.int64),
            np.asarray([is_write], dtype=bool),
            ks,
        )
        self._capture_dram_deltas(ks, dram_before)
        ks.link_bytes = self.interconnect.snapshot_and_reset()
        return ks

    def _capture_dram_deltas(self, ks: KernelStats, before) -> None:
        for g, st in enumerate(ks.gpus):
            r0, w0, h0, m0 = before[g]
            d = self.nodes[g].dram.stats
            st.dram_reads = d.reads - r0
            st.dram_writes = d.writes - w0
            st.dram_row_hits = d.row_hits - h0
            st.dram_row_misses = d.row_misses - m0

    def _on_first_touch(self, page: int, home: int) -> None:
        """Install planned replicas once the page's home is known."""
        holders = self._replica_holders.get(page)
        if holders:
            for g in holders:
                if g != home:
                    self.pagetable.add_replica(page, g)

    def _process_chunk(self, gpu: int, lines, is_write, ks: KernelStats) -> None:
        cfg = self.config
        node = self.nodes[gpu]
        st = ks.gpus[gpu]
        pt = self.pagetable
        lpp = self.amap.lines_per_page
        l1, l2 = node.l1, node.l2
        carve = node.carve
        protocol = self.protocol
        send = self.interconnect.send
        nodes = self.nodes
        stream = self._stream
        migration = self.migration
        remote_pages = self._remote_pages[gpu]
        l2_lat = cfg.gpu.l2_hit_latency_ns
        tlb = node.tlb

        mapped = pt._home  # hot-path alias; PageTable owns the dict
        for line, write in zip(lines.tolist(), is_write.tolist()):
            page = line // lpp
            home = mapped.get(page)
            if home is None:
                home = pt.home_of(page, gpu)
                self._on_first_touch(page, home)
            if tlb is not None:
                tlb.translate(page)
            st.accesses += 1
            local = home == gpu or pt.has_replica(page, gpu)

            if write:
                st.writes += 1
                if l1.lookup(line):
                    st.l1_hits += 1
                # Write-through L1: the store always proceeds to the L2
                # (local lines) or toward the home node (remote lines).
                if local:
                    st.local_writes += 1
                    if not l2.mark_dirty(line):
                        node.dram.access(line, True)
                else:
                    st.remote_writes += 1
                    remote_pages.add(page)
                    deferred = False
                    if carve is not None:
                        if carve.remote_write(line, stream):
                            node.dram.access(line, True)  # RDC copy refresh
                            deferred = carve.defers_home_writes
                    if not deferred:
                        send(gpu, home, LINK_HEADER_BYTES + LINE_BYTES)
                        st.latency_ns += self.interconnect.config.latency_ns
                        hnode = nodes[home]
                        if not hnode.l2.mark_dirty(line):
                            hnode.dram.access(line, True)
                    if migration is not None:
                        self._maybe_migrate(page, gpu, home, st)
                # Coherence: the home controller sees the store.
                targets = protocol.invalidation_targets(home, gpu, line)
                if targets:
                    for p in targets:
                        if p != home:
                            # Invalidates to the home's own caches stay
                            # on-chip; only remote targets cost a message.
                            send(home, p, INVALIDATE_MSG_BYTES)
                        pn = nodes[p]
                        pn.l1.invalidate_line(line)
                        pn.l2.invalidate_line(line)
                        if pn.carve is not None:
                            pn.carve.invalidate(line)
                        ks.gpus[p].invalidates_received += 1
                    st.invalidates_sent += len(targets)
                    protocol.note_invalidated(home, line)
                continue

            # ---- read path ----
            if l1.lookup(line):
                st.l1_hits += 1
                continue
            if l2.lookup(line):
                st.l2_hits += 1
                st.latency_ns += l2_lat
                l1.insert(line)
                continue
            if local:
                st.local_reads += 1
                st.latency_ns += node.dram.access(line, False)
                self._fill_l2(node, st, line, remote=False)
                l1.insert(line)
                continue

            # Remote line, LLC miss.
            st.latency_ns += l2_lat  # own-LLC miss detection
            remote_pages.add(page)
            serviced_locally = False
            if carve is not None:
                outcome = carve.remote_read(line, stream)
                if outcome.probed:
                    # Alloy probe: one local DRAM access reads tag+data.
                    st.latency_ns += node.dram.access(line, False)
                else:
                    st.rdc_bypasses += 1
                if outcome.kind == "rdc_hit":
                    st.rdc_hits += 1
                    st.local_reads += 1
                    serviced_locally = True
                else:
                    st.rdc_misses += 1
            if not serviced_locally:
                st.remote_reads += 1
                link_lat = self.interconnect.config.latency_ns
                send(gpu, home, LINK_HEADER_BYTES)
                hnode = nodes[home]
                if hnode.l2.contains(line):
                    st.latency_ns += 2 * link_lat + l2_lat
                else:
                    st.latency_ns += 2 * link_lat + hnode.dram.access(line, False)
                send(home, gpu, LINK_HEADER_BYTES + LINE_BYTES)
                protocol.note_remote_read(home, gpu, line)
                if carve is not None:
                    # RDC fill: a local DRAM write off the critical path.
                    node.dram.access(line, True)
                    st.rdc_inserts += 1
                if migration is not None:
                    # The page may move under us; the fetched copy stays
                    # valid either way.
                    self._maybe_migrate(page, gpu, home, st)
            self._fill_l2(node, st, line, remote=True)
            l1.insert(line)

    def _fill_l2(self, node: GpuNode, st: GpuKernelStats, line: int,
                 remote: bool) -> None:
        victim = node.l2.insert(line, remote=remote)
        if victim is not None and victim.dirty:
            # Dirty L2 lines are always locally homed (writes to remote
            # lines write through), so the writeback hits this GPU's DRAM.
            node.dram.access(victim.line, True)

    def _maybe_migrate(self, page: int, gpu: int, home: int,
                       st: GpuKernelStats) -> None:
        assert self.migration is not None
        if home == gpu or not self.migration.note_remote_access(page, gpu):
            return
        lpp = self.amap.lines_per_page
        # Transfer the whole page over the old-home -> gpu link.
        self.interconnect.send(
            home, gpu, lpp * LINE_BYTES + LINK_HEADER_BYTES
        )
        first = page * lpp
        hnode, gnode = self.nodes[home], self.nodes[gpu]
        for ln in range(first, first + lpp):
            hnode.dram.access(ln, False)
            gnode.dram.access(ln, True)
        # TLB shootdown: every GPU drops the stale translation; cached
        # copies of the page's lines are invalidated everywhere else.
        for n in self.nodes:
            if n.tlb is not None:
                n.tlb.shootdown(page)
            if n.gpu_id != gpu:
                for ln in range(first, first + lpp):
                    n.l1.invalidate_line(ln)
                    n.l2.invalidate_line(ln)
                    if n.carve is not None:
                        n.carve.invalidate(ln)
        st.latency_ns += SHOOTDOWN_LATENCY_NS
        st.migrations += 1


def _default_label(config: SystemConfig) -> str:
    if config.n_gpus == 1:
        return "single-gpu"
    if config.has_rdc:
        assert config.rdc is not None
        gb = config.rdc.size_bytes / 2**30
        return f"carve-{config.rdc.coherence}-{gb:g}GB"
    parts = ["numa-gpu"]
    if config.replication != "none":
        parts.append(f"repl-{config.replication}")
    if config.migration:
        parts.append("mig")
    return "+".join(parts)
