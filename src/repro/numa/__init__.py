"""The multi-GPU NUMA substrate the paper's mechanisms plug into.

``repro.numa`` models the transparent multi-GPU system of Young et al.
(MICRO 2018) — the baseline whose remote-access bottleneck CARVE
attacks — plus the state-of-the-art software stack the paper layers
under it (Section II):

* :class:`PageTable` — global page → home-GPU map with first-touch,
  round-robin and interleaved placement policies, and replica tracking
  (Section II-C).
* :class:`MigrationEngine` — counter-based migrate-on-remote-access
  page migration with TLB-shootdown cost (Sections I, II-C).
* :class:`ReplicationPlan` / :func:`build_replication_plan` —
  software read-only page replication, including the ideal
  replicate-everything upper bound of Fig. 2 (Section II-C).
* :class:`Interconnect` — directional NVLink-style byte accounting per
  GPU pair (Section II-A), plus :class:`FaultSchedule`, the seeded
  link-fault injection layer (degradations and outages with detour
  routing) used by the fabric-fault study.
* :class:`MultiGpuSystem` — the system glue: GPUs, memories, page
  table, links and (optionally) per-GPU CARVE controllers executing a
  workload trace; accepts an ``obs=`` hook for the observability layer
  (``repro.obs``).
* :func:`assess_capacity_loss` — the Unified-Memory capacity-spill
  model pricing the RDC carve-out (Section V-C, Table V(b)).

NUMA traffic surfaces as the ``mem.*``, ``link.bytes``, ``mig.*`` and
``repl.*`` metrics documented in ``docs/metrics.md``.
"""

from repro.numa.interconnect import (
    OUTAGE_RESIDUAL_SCALE,
    FaultSchedule,
    Interconnect,
)
from repro.numa.migration import MigrationEngine, MigrationStats
from repro.numa.pagetable import PageTable, PageTableStats
from repro.numa.replication import (
    ReplicationPlan,
    apply_replication_plan,
    build_replication_plan,
    replica_capacity_bytes,
)
from repro.numa.system import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    GpuNode,
    MultiGpuSystem,
)
from repro.numa.unified_memory import (
    SpillAssessment,
    assess_capacity_loss,
    spilled_access_fraction,
)

__all__ = [
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "FaultSchedule",
    "GpuNode",
    "Interconnect",
    "MigrationEngine",
    "MigrationStats",
    "MultiGpuSystem",
    "OUTAGE_RESIDUAL_SCALE",
    "PageTable",
    "PageTableStats",
    "ReplicationPlan",
    "SpillAssessment",
    "apply_replication_plan",
    "assess_capacity_loss",
    "build_replication_plan",
    "replica_capacity_bytes",
    "spilled_access_fraction",
]
