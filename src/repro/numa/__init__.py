"""numa subpackage of the CARVE reproduction."""
