"""Unified-Memory capacity-spill model (Section V-C, Table V(b)).

Carving an RDC out of GPU memory shrinks the OS-visible capacity.  When a
hand-optimised application already fills GPU memory, the displaced
fraction of its footprint spills to system (CPU) memory and is serviced
through the 32 GB/s CPU link under a Unified-Memory-like runtime that
keeps the *hottest* pages resident in GPU memory.

The model prices that spill analytically from a run's page-heat
histogram: the coldest pages whose capacity sums to the carve-out are
demoted, their accesses cross the CPU link, and the slowdown is the ratio
of the re-priced time to the original.  UM paging focuses on the cold end
while CARVE serves the hot shared end, which is why the two remain
largely orthogonal (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINE_BYTES, SystemConfig


@dataclass
class SpillAssessment:
    """Outcome of spilling a footprint fraction to system memory."""

    spill_fraction: float
    spilled_pages: int
    spilled_access_fraction: float
    slowdown: float  # < 1.0 means the spilled system runs slower


def spilled_access_fraction(
    page_access_counts_desc: list[int], spill_fraction: float
) -> float:
    """Fraction of accesses hitting spilled pages.

    *page_access_counts_desc* holds per-page access counts sorted hottest
    first; UM keeps the hot prefix resident and spills the cold suffix
    whose page count is ``spill_fraction`` of the footprint.
    """
    if not 0.0 <= spill_fraction <= 1.0:
        raise ValueError("spill fraction must be in [0, 1]")
    n_pages = len(page_access_counts_desc)
    if not n_pages or spill_fraction == 0.0:
        return 0.0
    n_spilled = int(round(n_pages * spill_fraction))
    if n_spilled == 0:
        return 0.0
    total = sum(page_access_counts_desc)
    if not total:
        return 0.0
    spilled = sum(page_access_counts_desc[n_pages - n_spilled:])
    return spilled / total


#: Demand paging moves whole (large) pages for a handful of line accesses
#: and pays fault-handling overhead, so the effective bytes moved per
#: spilled access exceed one line.  Calibrated against Table V(b).
DEFAULT_TRANSFER_AMPLIFICATION = 2.5


def assess_capacity_loss(
    page_access_counts_desc: list[int],
    spill_fraction: float,
    config: SystemConfig,
    baseline_time_s: float,
    total_accesses: int,
    transfer_amplification: float = DEFAULT_TRANSFER_AMPLIFICATION,
) -> SpillAssessment:
    """Price the slowdown of spilling *spill_fraction* of the footprint.

    The spilled accesses stream over the per-GPU CPU link; the added time
    is those bytes (amplified by demand-paging transfer overhead) over
    ``cpu_gpu_bytes_per_s``, overlapped with nothing — UM faults serialise
    against the faulting warp, so this is the pessimistic end the paper's
    Table V(b) also reflects.
    """
    if baseline_time_s <= 0:
        raise ValueError("baseline time must be positive")
    if total_accesses < 0:
        raise ValueError("access count cannot be negative")
    if transfer_amplification < 1.0:
        raise ValueError("transfer amplification cannot be below 1")
    frac = spilled_access_fraction(page_access_counts_desc, spill_fraction)
    n_pages = len(page_access_counts_desc)
    n_spilled = int(round(n_pages * spill_fraction))
    spilled_bytes = frac * total_accesses * LINE_BYTES * transfer_amplification
    per_gpu_bytes = spilled_bytes / config.n_gpus
    added_time = per_gpu_bytes / config.link.cpu_gpu_bytes_per_s
    slowdown = baseline_time_s / (baseline_time_s + added_time)
    return SpillAssessment(
        spill_fraction=spill_fraction,
        spilled_pages=n_spilled,
        spilled_access_fraction=frac,
        slowdown=slowdown,
    )


__all__ = [
    "DEFAULT_TRANSFER_AMPLIFICATION",
    "SpillAssessment",
    "assess_capacity_loss",
    "spilled_access_fraction",
]
