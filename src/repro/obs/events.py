"""Typed trace events and their kind vocabulary.

A :class:`TraceEvent` is one timestamped-by-kernel record in the tracer's
ring buffer.  ``kind`` comes from the ``EVENT_*`` vocabulary below — like
metric names, event kinds are a documented contract (``docs/metrics.md``
lists them and ``tools/check_docs.py`` enforces the mapping).

Events carry *kernel index* rather than wall-clock time: the simulator is
deterministic and untimed until the roofline model prices a result, so
the exporter assigns real timestamps only at export time (from
:class:`repro.perf.model.PerformanceModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Kernel begin/end markers (always recorded when tracing is on).
EVENT_KERNEL = "kernel"
#: Bulk RDC probe outcome summary for one kernel/GPU (hit/miss/evict).
EVENT_RDC = "rdc"
#: GPU-VI invalidation burst sent by one GPU in one kernel.
EVENT_INVALIDATE = "coh.invalidate"
#: IMST state-transition summary for one kernel (broadcast filtering).
EVENT_IMST = "imst"
#: Kernel-boundary epoch flush (software coherence write-back).
EVENT_EPOCH_FLUSH = "epoch.flush"
#: One page migrated between GPUs.
EVENT_MIGRATION = "mig.page"
#: Read-only replica(s) installed on first touch.
EVENT_REPLICATION = "repl.install"
#: A link-fault epoch was active during a kernel.
EVENT_LINK_FAULT = "link.fault"
#: The fault-tolerant runner retried a task.
EVENT_RUNNER_RETRY = "runner.retry"
#: A distributed-trace span opened (mirrored into the spill file).
EVENT_SPAN_BEGIN = "span.begin"
#: A distributed-trace span closed (carries its status).
EVENT_SPAN_END = "span.end"

#: Every contracted event kind (what docs may legally reference).
EVENT_KINDS = frozenset({
    EVENT_KERNEL,
    EVENT_RDC,
    EVENT_INVALIDATE,
    EVENT_IMST,
    EVENT_EPOCH_FLUSH,
    EVENT_MIGRATION,
    EVENT_REPLICATION,
    EVENT_LINK_FAULT,
    EVENT_RUNNER_RETRY,
    EVENT_SPAN_BEGIN,
    EVENT_SPAN_END,
})


@dataclass(slots=True)
class TraceEvent:
    """One record in the tracer ring.

    ``kind`` is an ``EVENT_*`` constant; ``kernel`` the zero-based kernel
    index it occurred in (-1 when outside any kernel, e.g. runner
    events); ``gpu`` the GPU it concerns (-1 for system-wide events);
    ``count`` how many underlying occurrences one record summarises
    (bulk ``record_many`` sets it > 1); ``payload`` kind-specific detail
    (page numbers, byte counts, fault scales...).
    """

    kind: str
    kernel: int = -1
    gpu: int = -1
    count: int = 1
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form used by the JSONL exporter."""
        out = {"kind": self.kind, "kernel": self.kernel, "gpu": self.gpu,
               "count": self.count}
        if self.payload:
            out["payload"] = self.payload
        return out


__all__ = [
    "EVENT_EPOCH_FLUSH",
    "EVENT_IMST",
    "EVENT_INVALIDATE",
    "EVENT_KERNEL",
    "EVENT_KINDS",
    "EVENT_LINK_FAULT",
    "EVENT_MIGRATION",
    "EVENT_RDC",
    "EVENT_REPLICATION",
    "EVENT_RUNNER_RETRY",
    "EVENT_SPAN_BEGIN",
    "EVENT_SPAN_END",
    "TraceEvent",
]
