"""Schema-versioned run records and the committed baseline store.

A **run record** is the durable, JSON-safe identity of one simulated
(workload, system) point: the deterministic traffic digest the paper's
claims are made of (``sim.accesses``, ``rdc.hit``/``rdc.miss``,
``coh.invalidate``, ``link.bytes``, ``mig.page_moves``, the per-link
byte matrix), the modelled and measured performance numbers, and an
**environment fingerprint** (simulator ``CODE_VERSION``, config hash,
execution engine, git sha, python version) that says *what produced it*.

Records live in the **baseline store** — a directory (``baselines/`` at
the repository root, committed to git) with one file per point::

    baselines/<system>/<workload>.json

``python -m repro baseline record`` writes records, ``... compare``
re-runs the same points and gates them against the store with the
two-tier checker in :mod:`repro.obs.regress`, and ``... list`` shows
what the store holds.  ``docs/regression.md`` walks through the
workflow.

The record schema is versioned (:data:`SCHEMA_VERSION`); the comparator
refuses records from a future schema instead of mis-reading them.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.summary import summarize_result
from repro.sim.cache import CODE_VERSION
from repro.sim.runner import config_hash

#: Version of the run-record schema.  Bump when the record layout
#: changes incompatibly; the comparator rejects newer-schema records.
SCHEMA_VERSION = 1

#: The ``kind`` tag every run record carries.
RECORD_KIND = "repro.run_record"

#: Default root of the committed baseline store.
DEFAULT_STORE_DIR = "baselines"

#: Digest keys gated **bit-exact** by the regression checker: integer
#: traffic counters (plus the rounded remote fraction derived from
#: them).  These are fully deterministic — identical across runs,
#: engines, and machines for the same code version and config.
DETERMINISTIC_KEYS = (
    "kernels",
    "sim.accesses",
    "sim.writes",
    "mem.remote.read",
    "mem.remote.write",
    "remote_fraction",
    "rdc.hit",
    "rdc.miss",
    "coh.invalidate",
    "mig.page_moves",
    "link.bytes",
    "mem.pages_replicated",
)


def git_sha() -> Optional[str]:
    """Short git revision of the working tree (best effort, else None).

    Falls back to ``GITHUB_SHA`` when git itself is unavailable (e.g. a
    CI step running from an exported tarball).
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    env = os.environ.get("GITHUB_SHA")
    return env[:12] if env else None


def environment_fingerprint(
    config=None, engine: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> dict:
    """What produced a record: code version, config, engine, revision.

    ``config`` (a :class:`repro.config.SystemConfig`) contributes its
    stable hash; ``engine`` names the execution engine used; ``trace_id``
    links the record to its distributed trace (docs/tracing.md), so a
    dashboard row can point at the timeline that produced it.  All are
    optional so batch-level fingerprints (runner journals) can omit
    them.
    """
    import platform

    fp = {
        "schema_version": SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "git_sha": git_sha(),
        "python": platform.python_version(),
    }
    if config is not None:
        fp["config_hash"] = config_hash(config)
    if engine is not None:
        fp["engine"] = engine
    if trace_id is not None:
        fp["trace_id"] = trace_id
    return fp


def _link_matrix(result) -> list[list[int]]:
    """Summed directed link-byte matrix over every kernel of a run."""
    n = result.n_gpus
    matrix = [[0] * n for _ in range(n)]
    for ks in result.kernels:
        for s, row in enumerate(ks.link_bytes):
            for d, b in enumerate(row):
                matrix[s][d] += b
    return matrix


def make_run_record(
    result,
    config,
    system: str,
    workload: str,
    *,
    engine: str,
    wall_s: float,
    modelled_s: float,
    recorded_at: Optional[float] = None,
) -> dict:
    """Assemble the JSON-safe run record for one executed point."""
    digest = summarize_result(result)
    if digest is None:
        raise ValueError(
            f"cannot digest result for {system}/{workload}: not a RunResult"
        )
    deterministic = {key: digest[key] for key in DETERMINISTIC_KEYS}
    accesses = deterministic["sim.accesses"]
    return {
        "kind": RECORD_KIND,
        "schema_version": SCHEMA_VERSION,
        "system": system,
        "workload": workload,
        # Record metadata, not simulated state: the timestamp never
        # feeds a gated counter.
        # lint: disable=DET001
        "recorded_at": recorded_at if recorded_at is not None else time.time(),
        "fingerprint": environment_fingerprint(config, engine),
        "deterministic": deterministic,
        "link_matrix": _link_matrix(result),
        "perf": {
            "modelled_total_s": modelled_s,
            "wall_s": wall_s,
            "accesses_per_s": (accesses / wall_s) if wall_s > 0 else 0.0,
        },
    }


def validate_record(record: dict) -> list[str]:
    """Structural problems of a loaded record (empty list when sound)."""
    problems = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    if record.get("kind") != RECORD_KIND:
        problems.append(
            f"kind is {record.get('kind')!r}, expected {RECORD_KIND!r}"
        )
    version = record.get("schema_version")
    if not isinstance(version, int):
        problems.append("schema_version missing")
    elif version > SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION} — upgrade the repro checkout"
        )
    for field in ("system", "workload", "fingerprint", "deterministic",
                  "perf"):
        if field not in record:
            problems.append(f"missing field {field!r}")
    return problems


def collect_run_record(
    workload: str,
    system: str,
    config,
    *,
    engine: Optional[str] = None,
    repeats: int = 1,
) -> dict:
    """Run one point (uncached) and build its record.

    Wall time is best-of-*repeats* — the standard robust throughput
    estimator — while counters come from the first run (they are
    deterministic, so any run would do).
    """
    from repro.numa.system import ENGINE_VECTORIZED
    from repro.perf.model import PerformanceModel
    from repro.sim.driver import run_workload

    engine = engine or ENGINE_VECTORIZED
    best = math.inf
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()  # lint: disable=DET001 - wall-time is
        r = run_workload(          # the measured quantity here
            workload, config, label=system, use_cache=False, engine=engine
        )
        best = min(best, time.perf_counter() - t0)  # lint: disable=DET001
        if result is None:
            result = r
    modelled = PerformanceModel(config).total_time_s(result)
    return make_run_record(
        result, config, system, workload,
        engine=engine, wall_s=best, modelled_s=modelled,
    )


@dataclass(frozen=True)
class StoredBaseline:
    """One record in the store plus where it lives."""

    system: str
    workload: str
    path: Path
    record: dict


class BaselineStore:
    """The committed ``baselines/`` directory: one JSON per point."""

    def __init__(self, root=DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, system: str, workload: str) -> Path:
        return self.root / system / f"{workload}.json"

    def save(self, record: dict) -> Path:
        """Write one record (pretty-printed, stable key order)."""
        problems = validate_record(record)
        if problems:
            raise ValueError(
                "refusing to store malformed record: " + "; ".join(problems)
            )
        path = self.path_for(record["system"], record["workload"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def load(self, system: str, workload: str) -> Optional[dict]:
        """The stored record for one point (None when absent)."""
        path = self.path_for(system, workload)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def entries(self) -> list[StoredBaseline]:
        """Every record in the store, sorted by (system, workload)."""
        out = []
        if not self.root.exists():
            return out
        for path in sorted(self.root.glob("*/*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            out.append(StoredBaseline(
                system=path.parent.name,
                workload=path.stem,
                path=path,
                record=record,
            ))
        return out


def store_points(
    store: BaselineStore,
    systems: Sequence[str],
    workloads: Sequence[str],
) -> list[tuple[str, str]]:
    """(system, workload) pairs compare/record should visit.

    The cartesian product of the requested systems and workloads; order
    is systems-major to keep CLI output grouped.
    """
    return [(s, w) for s in systems for w in workloads]


__all__ = [
    "BaselineStore",
    "DEFAULT_STORE_DIR",
    "DETERMINISTIC_KEYS",
    "RECORD_KIND",
    "SCHEMA_VERSION",
    "StoredBaseline",
    "collect_run_record",
    "environment_fingerprint",
    "git_sha",
    "make_run_record",
    "store_points",
    "validate_record",
]
