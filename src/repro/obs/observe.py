"""The :class:`Observability` facade: one object the simulator talks to.

``MultiGpuSystem`` (and the driver/runner around it) never touch metric
or tracer internals — they hold an optional ``obs`` and call the hook
methods below at *rare-path* moments only:

* ``begin_kernel`` / ``end_kernel`` — once per kernel launch; the end
  hook bulk-copies the kernel's already-computed
  :class:`~repro.perf.stats.KernelStats` into the registry (one
  ``inc_many`` per metric, never one call per access).
* ``on_epoch_flush`` / ``on_migration`` / ``on_replication`` /
  ``on_link_fault`` — at the corresponding rare events.
* ``end_run`` — once per workload, to set end-of-run gauges.

This placement is what keeps the observed run *bit-identical* to an
unobserved one: the hooks read simulator state, they never steer it, and
the vectorized inner loop contains no obs code at all.  The <5% overhead
budget is enforced by ``benchmarks/bench_hotpath.py --obs-check``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import events as ev
from repro.obs.metrics import default_registry
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer


class Observability:
    """Metrics registry + event tracer, pre-wired to the metric contract.

    ``trace=False`` (the default) gives metrics-only observation: the
    tracer is constructed disabled and every event hook short-circuits.
    Pass ``trace=True`` (optionally with ``ring``/``sample_every``/
    ``sample_overrides``) to also capture the typed event stream.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        trace: bool = False,
        tracer: Optional[Tracer] = None,
        ring: int = DEFAULT_CAPACITY,
        sample_every: int = 1,
        sample_overrides: Optional[dict] = None,
        context=None,
        spill=None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.tracer = tracer if tracer is not None else Tracer(
            ring, enabled=trace, sample_every=sample_every,
            sample_overrides=sample_overrides, context=context,
            spill=spill,
        )
        r = self.registry
        # Cached handles: end_kernel runs once per kernel but touches ~20
        # metrics; skipping the name lookup keeps it cheap.
        self._c_accesses = r.get("sim.accesses")
        self._c_writes = r.get("sim.writes")
        self._c_instructions = r.get("sim.instructions")
        self._c_l1 = r.get("cache.l1.hit")
        self._c_l2 = r.get("cache.l2.hit")
        self._c_lr = r.get("mem.local.read")
        self._c_lw = r.get("mem.local.write")
        self._c_rr = r.get("mem.remote.read")
        self._c_rw = r.get("mem.remote.write")
        self._c_dr = r.get("dram.read")
        self._c_dw = r.get("dram.write")
        self._c_drh = r.get("dram.row_hit")
        self._c_drm = r.get("dram.row_miss")
        self._c_rdc_hit = r.get("rdc.hit")
        self._c_rdc_miss = r.get("rdc.miss")
        self._c_rdc_ins = r.get("rdc.insert")
        self._c_rdc_byp = r.get("rdc.bypass")
        self._c_rdc_stale = r.get("rdc.stale")
        self._c_inv = r.get("coh.invalidate")
        self._c_inv_recv = r.get("coh.invalidate_recv")
        self._c_epoch = r.get("epoch.flush_lines")
        self._c_imst_bc = r.get("imst.broadcast")
        self._c_imst_av = r.get("imst.broadcast_avoided")
        self._c_imst_dem = r.get("imst.demotion")
        self._c_mig = r.get("mig.page_moves")
        self._c_repl = r.get("repl.pages")
        self._c_link = r.get("link.bytes")
        self._c_dropped = r.get("trace.dropped")
        self._g_mapped = r.get("mem.pages_mapped")
        self._g_replicated = r.get("mem.pages_replicated")
        self._g_occupancy = r.get("rdc.occupancy")
        self._g_fault = r.get("fault.link_scale")
        self._h_accesses = r.get("kernel.accesses")
        self._h_latency = r.get("kernel.latency_ns")
        #: Kernel index currently executing (-1 outside any kernel).
        self._kernel = -1
        # Run-long baselines for stats the simulator accumulates itself
        # (RDC stale counters, IMST counters): end_kernel records deltas.
        self._rdc_stale_base: dict = {}
        self._imst_base: dict = {}
        self._dropped_synced = 0
        #: Open per-kernel span context (distributed tracing attached).
        self._kernel_ctx = None
        self._spill_synced = (0, 0, 0)

    # -- kernel lifecycle -----------------------------------------------

    def begin_kernel(self, kernel_index: int, kernel_id: int) -> None:
        self._kernel = kernel_index
        self.registry.begin_kernel(kernel_id)
        if self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_KERNEL, kernel=kernel_index,
                kernel_id=kernel_id, phase="begin",
            )
        if self.tracer.span_capable:
            self._kernel_ctx = self.tracer.span_begin(
                f"kernel:{kernel_index}", kernel=kernel_index,
                kernel_id=kernel_id,
            )

    def end_kernel(self, ks, system) -> None:
        """Absorb one finished kernel's counters into the registry.

        ``ks`` is the kernel's :class:`~repro.perf.stats.KernelStats`
        (complete: the caller invokes this *after* the kernel boundary
        and link snapshot), ``system`` the
        :class:`~repro.numa.system.MultiGpuSystem` that ran it.
        """
        kern = self._kernel
        gpus = ks.gpus

        def bulk(counter, values) -> None:
            counter.inc_many(
                ((g,), v) for g, v in enumerate(values) if v
            )

        bulk(self._c_accesses, [st.accesses for st in gpus])
        bulk(self._c_writes, [st.writes for st in gpus])
        bulk(self._c_instructions, [st.instructions for st in gpus])
        bulk(self._c_l1, [st.l1_hits for st in gpus])
        bulk(self._c_l2, [st.l2_hits for st in gpus])
        bulk(self._c_lr, [st.local_reads for st in gpus])
        bulk(self._c_lw, [st.local_writes for st in gpus])
        bulk(self._c_rr, [st.remote_reads for st in gpus])
        bulk(self._c_rw, [st.remote_writes for st in gpus])
        bulk(self._c_dr, [st.dram_reads for st in gpus])
        bulk(self._c_dw, [st.dram_writes for st in gpus])
        bulk(self._c_drh, [st.dram_row_hits for st in gpus])
        bulk(self._c_drm, [st.dram_row_misses for st in gpus])
        bulk(self._c_rdc_hit, [st.rdc_hits for st in gpus])
        bulk(self._c_rdc_miss, [st.rdc_misses for st in gpus])
        bulk(self._c_rdc_ins, [st.rdc_inserts for st in gpus])
        bulk(self._c_rdc_byp, [st.rdc_bypasses for st in gpus])
        bulk(self._c_inv, [st.invalidates_sent for st in gpus])
        bulk(self._c_inv_recv, [st.invalidates_received for st in gpus])
        self._c_link.inc_many(
            ((s, d), b)
            for s, row in enumerate(ks.link_bytes)
            for d, b in enumerate(row)
            if b
        )

        # RDC stale-epoch misses live on the RDC's own run-long stats,
        # not on KernelStats — record the delta since the last kernel.
        stale = []
        for g, node in enumerate(system.nodes):
            if node.carve is None:
                stale.append(0)
                continue
            now = node.carve.rdc.stats.stale_epoch_misses
            stale.append(now - self._rdc_stale_base.get(g, 0))
            self._rdc_stale_base[g] = now
        bulk(self._c_rdc_stale, stale)

        # IMST counters likewise accumulate per home node across the run.
        imst = getattr(system.protocol, "imst", None)
        imst_deltas = []
        if imst is not None:
            for g, tracker in enumerate(imst):
                s = tracker.stats
                base = self._imst_base.get(g, (0, 0, 0))
                delta = (
                    s.broadcasts - base[0],
                    s.broadcasts_avoided - base[1],
                    s.demotions - base[2],
                )
                self._imst_base[g] = (
                    s.broadcasts, s.broadcasts_avoided, s.demotions
                )
                imst_deltas.append(delta)
            bulk(self._c_imst_bc, [d[0] for d in imst_deltas])
            bulk(self._c_imst_av, [d[1] for d in imst_deltas])
            bulk(self._c_imst_dem, [d[2] for d in imst_deltas])

        total = sum(st.accesses for st in gpus)
        self._h_accesses.observe(total)
        for g, st in enumerate(gpus):
            if st.accesses:
                self._h_latency.observe(st.latency_ns, gpu=g)

        if ks.link_scale is not None:
            self.on_link_fault(ks.link_scale)

        tracer = self.tracer
        if tracer.enabled:
            for g, st in enumerate(gpus):
                tracer.record_many(
                    ev.EVENT_RDC, st.rdc_hits + st.rdc_misses,
                    kernel=kern, gpu=g,
                    hits=st.rdc_hits, misses=st.rdc_misses,
                    inserts=st.rdc_inserts, stale=stale[g],
                )
                tracer.record_many(
                    ev.EVENT_INVALIDATE, st.invalidates_sent,
                    kernel=kern, gpu=g,
                )
                if imst_deltas and any(imst_deltas[g]):
                    tracer.record_many(
                        ev.EVENT_IMST,
                        imst_deltas[g][0] + imst_deltas[g][1],
                        kernel=kern, gpu=g,
                        broadcasts=imst_deltas[g][0],
                        avoided=imst_deltas[g][1],
                        demotions=imst_deltas[g][2],
                    )
            tracer.record(
                ev.EVENT_KERNEL, kernel=kern,
                kernel_id=ks.kernel_id, phase="end", accesses=total,
                warmup=ks.warmup,
            )
        if self._kernel_ctx is not None:
            tracer.span_end(
                self._kernel_ctx, f"kernel:{kern}", kernel=kern,
                accesses=total,
            )
            self._kernel_ctx = None
        self.registry.end_kernel()
        self._kernel = -1

    # -- rare-event hooks -------------------------------------------------

    def on_epoch_flush(self, gpu: int, flushed_lines: int) -> None:
        """A kernel-boundary epoch advance flushed *flushed_lines* home."""
        if flushed_lines:
            self._c_epoch.inc(flushed_lines, gpu=gpu)
        if self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_EPOCH_FLUSH, kernel=self._kernel, gpu=gpu,
                flushed=flushed_lines,
            )

    def on_migration(self, page: int, dst_gpu: int, src_gpu: int) -> None:
        """A page migrated src -> dst (charged to the receiving GPU)."""
        self._c_mig.inc(1, gpu=dst_gpu)
        if self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_MIGRATION, kernel=self._kernel, gpu=dst_gpu,
                page=page, src=src_gpu,
            )

    def on_replication(self, page: int, holders) -> None:
        """Read-only replicas of *page* were installed on *holders*."""
        for g in holders:
            self._c_repl.inc(1, gpu=g)
        if self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_REPLICATION, kernel=self._kernel,
                page=page, holders=list(holders),
            )

    def on_link_fault(self, scale) -> None:
        """A kernel ran under a fault epoch; *scale* is its matrix."""
        faulted = []
        for s, row in enumerate(scale):
            for d, f in enumerate(row):
                if s != d and f != 1.0:
                    self._g_fault.set(f, src=s, dst=d)
                    faulted.append([s, d, f])
        if faulted and self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_LINK_FAULT, kernel=self._kernel, links=faulted,
            )

    # -- runner hooks ------------------------------------------------------

    def on_runner_retry(self, key: str, attempt: int, kind: str) -> None:
        """The fault-tolerant runner is retrying task *key*.

        The failure kind lands in the payload as ``failure_kind``
        (``kind`` is the event-kind parameter of ``Tracer.record``).
        """
        if self.tracer.enabled:
            self.tracer.record(
                ev.EVENT_RUNNER_RETRY,
                key=key, attempt=attempt, failure_kind=kind,
            )

    # -- run lifecycle -----------------------------------------------------

    def end_run(self, result, system) -> None:
        """Set end-of-run gauges and sync tracer self-accounting."""
        for g, pages in enumerate(result.pages_mapped):
            self._g_mapped.set(pages, gpu=g)
        for g, pages in enumerate(result.pages_replicated):
            self._g_replicated.set(pages, gpu=g)
        if self.tracer.enabled:
            # occupancy() walks the whole tag store — affordable on a
            # traced run, too slow for the metrics-only overhead budget.
            for g, node in enumerate(system.nodes):
                if node.carve is not None:
                    self._g_occupancy.set(
                        node.carve.rdc.occupancy(system._stream), gpu=g
                    )
        new_drops = self.tracer.dropped - self._dropped_synced
        if new_drops:
            self._c_dropped.inc(new_drops)
            self._dropped_synced = self.tracer.dropped
        spill = self.tracer.spill
        if spill is not None:
            now = (spill.spans, spill.bytes_written, spill.dropped)
            base = self._spill_synced
            deltas = tuple(n - b for n, b in zip(now, base))
            names = ("trace.spans", "trace.spill_bytes",
                     "trace.dropped_spans")
            for name, delta in zip(names, deltas):
                if delta:
                    self.registry.get(name).inc(delta)
            self._spill_synced = now


__all__ = ["Observability"]
