"""Ring-buffered event tracer with sampling controls.

The tracer is the *event* half of the observability layer (counters live
in :mod:`repro.obs.registry`).  Design constraints, in order:

1. **Off means free.**  Tracing defaults off; every call site guards with
   ``if obs is not None`` (and the facade checks :attr:`Tracer.enabled`),
   so the vectorized hot path pays nothing when no one is watching.
2. **Bounded memory.**  Events land in a ``deque(maxlen=capacity)`` ring;
   overflow silently evicts the oldest and bumps :attr:`dropped` (also
   exported as the ``trace.dropped`` counter).
3. **Bulk over per-occurrence.**  High-frequency happenings (RDC probes)
   are recorded as one summarising event per kernel via
   :meth:`record_many`, never one event per access.
4. **Sampling.**  ``sample_every=N`` keeps every Nth occurrence of a
   kind; per-kind overrides let you thin chatty kinds (migrations) while
   keeping rare ones (link faults) exact.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.obs.events import EVENT_SPAN_BEGIN, EVENT_SPAN_END, TraceEvent
from repro.obs.trace import SpanSpill, TraceContext

DEFAULT_CAPACITY = 65_536


class Tracer:
    """Bounded, sampled event sink.

    ``capacity`` bounds the ring; ``sample_every`` is the global sampling
    stride (1 = keep everything); ``sample_overrides`` maps event kind to
    a per-kind stride.  A disabled tracer drops everything (and records
    nothing, not even drops).

    Distributed tracing (docs/tracing.md) attaches two optionals:
    ``context`` (the process's :class:`TraceContext` — span methods
    derive children from it) and ``spill`` (a :class:`SpanSpill` that
    mirrors span edges to the crash-safe file).  Both default off, so
    a plain metrics/ring tracer pays nothing new.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 enabled: bool = True, sample_every: int = 1,
                 sample_overrides: Optional[dict] = None,
                 context: Optional[TraceContext] = None,
                 spill: Optional[SpanSpill] = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.sample_every = sample_every
        self.sample_overrides = dict(sample_overrides or {})
        self.context = context
        self.spill = spill
        self._ring: deque = deque(maxlen=capacity)
        self._seen: dict = {}
        #: Events evicted from the ring by overflow (not sampling skips).
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def events(self) -> list:
        """The retained events, oldest first."""
        return list(self._ring)

    def _stride(self, kind: str) -> int:
        return self.sample_overrides.get(kind, self.sample_every)

    def _push(self, event: TraceEvent) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def record(self, kind: str, kernel: int = -1, gpu: int = -1,
               **payload) -> None:
        """Record one occurrence of ``kind`` (subject to sampling)."""
        if not self.enabled:
            return
        seen = self._seen.get(kind, 0)
        self._seen[kind] = seen + 1
        if seen % self._stride(kind):
            return
        self._push(TraceEvent(kind, kernel, gpu, 1, payload))

    def record_many(self, kind: str, count: int, kernel: int = -1,
                    gpu: int = -1, **payload) -> None:
        """Record ``count`` occurrences as ONE summarising event.

        This is the bulk mutator the vectorized engine uses: an entire
        kernel's worth of RDC hits becomes a single ring entry.  Zero
        counts are skipped entirely.  Bulk events bypass occurrence
        sampling — they are already summaries.
        """
        if not self.enabled or not count:
            return
        self._push(TraceEvent(kind, kernel, gpu, count, payload))

    # -- distributed spans (docs/tracing.md) -----------------------------

    @property
    def span_capable(self) -> bool:
        """True when span methods would actually record something."""
        return self.context is not None and \
            (self.enabled or self.spill is not None)

    def span_begin(self, name: str, *, key: str = "", kernel: int = -1,
                   **payload) -> Optional[TraceContext]:
        """Open a child span of :attr:`context` named *name*.

        Returns the child's context (pass it to :meth:`span_end`), or
        ``None`` when span tracing is off.  The begin edge lands in the
        ring (kind ``span.begin``) and, when a spill is attached, is
        flushed to disk before this returns — a crash after this call
        still leaves the span visible to the flight recorder.
        """
        if not self.span_capable:
            return None
        ctx = self.context.child(name)
        if self.enabled:
            self._push(TraceEvent(
                EVENT_SPAN_BEGIN, kernel, -1, 1,
                {"name": name, "key": key, "span": ctx.span_id, **payload},
            ))
        if self.spill is not None:
            self.spill.span_begin(ctx, name, key=key, **payload)
        return ctx

    def span_end(self, ctx: Optional[TraceContext], name: str, *,
                 key: str = "", kernel: int = -1, status: str = "ok",
                 **payload) -> None:
        """Close a span opened by :meth:`span_begin` (no-op on None)."""
        if ctx is None or not self.span_capable:
            return
        if self.enabled:
            self._push(TraceEvent(
                EVENT_SPAN_END, kernel, -1, 1,
                {"name": name, "key": key, "span": ctx.span_id,
                 "status": status, **payload},
            ))
        if self.spill is not None:
            self.spill.span_end(ctx, name, key=key, status=status,
                                **payload)

    def clear(self) -> None:
        self._ring.clear()
        self._seen.clear()
        self.dropped = 0


__all__ = ["DEFAULT_CAPACITY", "Tracer"]
