"""Trace and metric exporters: JSONL and Chrome ``trace_event``.

Two output formats:

* **JSONL** — one JSON object per line: a header, every trace event, and
  a final metrics snapshot.  Greppable, streamable, diff-friendly.
* **Chrome trace** — the ``trace_event`` JSON format consumed by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Kernels
  become ``"X"`` (complete) slices on one track per GPU, per-kernel
  counter snapshots become ``"C"`` counter tracks, and discrete events
  (migrations, epoch flushes, link faults) become ``"i"`` instants.

The simulator itself is untimed — counters first, roofline pricing after
— so timestamps are synthesised here from
:class:`repro.perf.model.PerformanceModel`: kernel *k*'s slice starts
where kernel *k-1*'s ended, and its duration is the modelled kernel time.
That makes the Perfetto view show *modelled* time, which is exactly the
quantity the paper's figures are drawn in.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.obs.events import (
    EVENT_IMST,
    EVENT_KERNEL,
    EVENT_RDC,
)

#: Bulk per-kernel summary kinds that would clutter the instant track —
#: their information is already on the counter tracks.
_SUMMARY_KINDS = frozenset({EVENT_KERNEL, EVENT_RDC, EVENT_IMST})

_US = 1e6  # seconds -> microseconds (trace_event timestamps are µs)


def _counter_track_args(name: str, samples: dict) -> dict:
    """Chrome counter ``args``: one series per rendered label key."""
    return {key or "value": value for key, value in samples.items()}


def build_chrome_trace(result, config, obs) -> dict:
    """Assemble a Chrome ``trace_event`` document for one observed run.

    ``result`` is the :class:`~repro.perf.stats.RunResult`, ``config``
    the :class:`~repro.config.SystemConfig` it ran under (needed to price
    kernel durations), ``obs`` the :class:`~repro.obs.Observability` that
    watched the run (kernel snapshots + tracer ring).
    """
    from repro.perf.model import PerformanceModel

    model = PerformanceModel(config)
    # Price every kernel individually: run_time() covers only measured
    # (non-warmup) kernels, but the timeline must align index-for-index
    # with result.kernels so counter snapshots and instants land on the
    # kernel they were recorded in.
    kernel_times = [model.kernel_time(ks) for ks in result.kernels]
    n_gpus = result.n_gpus
    events: list = []

    # Process/thread naming metadata: pid 1..n = GPUs, pid 0 = system.
    events.append({
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": f"system ({result.config_label})"},
    })
    for gpu in range(n_gpus):
        events.append({
            "name": "process_name", "ph": "M", "pid": gpu + 1, "tid": 0,
            "args": {"name": f"GPU {gpu}"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": gpu + 1, "tid": 0,
            "args": {"name": "kernels"},
        })

    # Kernel slices on modelled time.  kernel_starts[i] is the µs offset
    # of kernel i; the list is also the clock for counters and instants.
    kernel_starts: list[float] = []
    cursor = 0.0
    for i, kt in enumerate(kernel_times):
        kernel_starts.append(cursor)
        ks = result.kernels[i]
        for gpu in range(n_gpus):
            dur = kt.per_gpu[gpu] * _US
            events.append({
                "name": f"kernel {kt.kernel_id}"
                        + (" (warmup)" if ks.warmup else ""),
                "ph": "X", "pid": gpu + 1, "tid": 0,
                "ts": cursor, "dur": dur,
                "args": {
                    "kernel_id": kt.kernel_id,
                    "bottleneck": kt.bottlenecks[gpu],
                    "accesses": ks.gpus[gpu].accesses,
                    "rdc.hit": ks.gpus[gpu].rdc_hits,
                    "mem.remote.read": ks.gpus[gpu].remote_reads,
                    # Derived per-GPU egress total (sum of
                    # link.bytes{src,dst} over dst) — a Perfetto
                    # annotation, not a registry metric.
                    # lint: disable=OBS001
                    "link.out_bytes": ks.link_out_bytes(gpu),
                },
            })
        cursor += kt.time * _US

    # Per-kernel counter tracks from the registry snapshots (the "C"
    # sample is stamped at the *end* of the kernel it summarises).
    snapshots = obs.registry.kernel_snapshots if obs is not None else []
    for snap in snapshots:
        if snap.index >= len(kernel_starts):
            continue
        end_ts = (
            kernel_starts[snap.index + 1]
            if snap.index + 1 < len(kernel_starts)
            else cursor
        )
        for name, samples in sorted(snap.counters.items()):
            events.append({
                "name": name, "ph": "C", "pid": 0, "tid": 0,
                "ts": end_ts,
                "args": _counter_track_args(name, samples),
            })

    # Discrete happenings as instant events, placed at the start of the
    # kernel they occurred in (the simulator has no finer clock).
    tracer = obs.tracer if obs is not None else None
    if tracer is not None:
        for ev in tracer.events():
            if ev.kind in _SUMMARY_KINDS:
                continue
            if 0 <= ev.kernel < len(kernel_starts):
                ts = kernel_starts[ev.kernel]
            else:
                ts = 0.0
            args = {"count": ev.count}
            args.update(ev.payload)
            events.append({
                "name": ev.kind, "ph": "i", "s": "g" if ev.gpu < 0 else "p",
                "pid": (ev.gpu + 1) if ev.gpu >= 0 else 0, "tid": 0,
                "ts": ts, "args": args,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "workload": result.workload,
            "config": result.config_label,
            "n_gpus": n_gpus,
            # The paper's quantity: measured (non-warmup) kernels only.
            "modelled_total_s": model.run_time(result).total_s,
            # What the timeline spans: every kernel, warmup included.
            "timeline_total_s": cursor / _US,
        },
    }


def write_chrome_trace(path, result, config, obs) -> dict:
    """Build and write the Chrome trace; returns the document."""
    doc = build_chrome_trace(result, config, obs)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def write_jsonl(fh: IO[str], obs, result=None) -> int:
    """Stream the observed run as JSON Lines; returns lines written.

    Layout: one ``{"record": "header"}`` line, one ``{"record":
    "event"}`` line per retained trace event, one final ``{"record":
    "metrics"}`` line holding the full registry snapshot.
    """
    lines = 0
    header = {
        "record": "header",
        "events": len(obs.tracer) if obs.tracer is not None else 0,
        "dropped": obs.tracer.dropped if obs.tracer is not None else 0,
    }
    if result is not None:
        header["workload"] = result.workload
        header["config"] = result.config_label
        header["n_gpus"] = result.n_gpus
    fh.write(json.dumps(header) + "\n")
    lines += 1
    if obs.tracer is not None:
        for ev in obs.tracer.events():
            fh.write(json.dumps({"record": "event", **ev.to_dict()}) + "\n")
            lines += 1
    fh.write(json.dumps(
        {"record": "metrics", "metrics": obs.registry.snapshot()}
    ) + "\n")
    return lines + 1


def write_metrics_json(path, obs, extra: Optional[dict] = None) -> dict:
    """Dump the registry (totals + per-kernel snapshots) as one JSON file.

    ``obs`` may be an ``Observability`` or a bare ``MetricsRegistry``.
    """
    registry = getattr(obs, "registry", obs)
    doc = {
        "metrics": registry.snapshot(),
        "kernel_snapshots": [
            {
                "index": s.index,
                "kernel_id": s.kernel_id,
                "counters": s.counters,
                "gauges": s.gauges,
            }
            for s in registry.kernel_snapshots
        ],
    }
    if extra:
        doc.update(extra)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    return doc


__all__ = [
    "build_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
