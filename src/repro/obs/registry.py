"""Named metric primitives and the :class:`MetricsRegistry`.

The observability layer treats metric names as a *stable contract*: every
counter, gauge, and histogram is registered under a dotted name with a
declared unit and label set, `docs/metrics.md` documents each one, and
``tools/check_docs.py`` fails CI when the two drift apart.

Three metric kinds exist:

* :class:`Counter` — monotonically increasing totals.  ``inc`` is the
  *bulk* mutator: the vectorized engine tallies a whole kernel in locals
  and flushes one ``inc(value=N)`` per metric, never one call per access.
* :class:`Gauge` — a point-in-time value (last write wins), e.g. the
  bandwidth scale of a faulted link or end-of-run page occupancy.
* :class:`Histogram` — fixed-bucket distribution with bulk
  ``observe_many``; used for per-kernel quantities whose spread matters
  (accesses per kernel, accumulated latency).

A registry also provides *per-kernel snapshotting*: :meth:`MetricsRegistry.
begin_kernel` marks a baseline and :meth:`MetricsRegistry.end_kernel`
appends the counter deltas (plus current gauge values) to
:attr:`MetricsRegistry.kernel_snapshots`, which is what the Chrome-trace
exporter turns into per-kernel counter tracks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence


class MetricError(Exception):
    """Misuse of the metrics API (bad labels, name/kind conflicts)."""


#: Metric kinds (the ``kind`` field of :class:`MetricSpec`).
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: Names are dotted lower-case contracts: ``subsystem.metric[.sub]``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


@dataclass(frozen=True)
class MetricSpec:
    """The declared identity of one metric — the documented contract.

    ``name`` is dotted and stable (``rdc.hit``); ``labels`` is the exact
    ordered set of label names every sample must carry (``("gpu",)`` or
    ``("src", "dst")``); ``paper_ref`` names the paper figure/section the
    metric maps to, mirrored into ``docs/metrics.md``.
    """

    name: str
    kind: str
    unit: str
    labels: tuple = ()
    description: str = ""
    paper_ref: str = ""
    #: Histogram bucket upper bounds (ignored for other kinds).
    buckets: tuple = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise MetricError(
                f"metric name {self.name!r} must be dotted lower-case "
                f"(like 'rdc.hit')"
            )
        if self.kind not in (KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM):
            raise MetricError(f"unknown metric kind {self.kind!r}")
        if self.kind == KIND_HISTOGRAM:
            if not self.buckets:
                raise MetricError(f"histogram {self.name!r} needs buckets")
            bounds = list(self.buckets)
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise MetricError(
                    f"histogram {self.name!r} buckets must strictly increase"
                )


def label_key(spec: MetricSpec, labels: dict) -> tuple:
    """Canonical sample key: label values in declared order."""
    try:
        key = tuple(labels[name] for name in spec.labels)
    except KeyError as exc:
        raise MetricError(
            f"{spec.name}: missing label {exc.args[0]!r} "
            f"(requires {list(spec.labels)})"
        ) from None
    if len(labels) != len(spec.labels):
        extra = set(labels) - set(spec.labels)
        raise MetricError(f"{spec.name}: unexpected labels {sorted(extra)}")
    return key


def _render_key(spec: MetricSpec, key: tuple) -> str:
    """JSON-safe label key: ``"gpu=0"``, ``"src=0,dst=1"``, ``""``."""
    return ",".join(f"{n}={v}" for n, v in zip(spec.labels, key))


class Metric:
    """Base class: a spec plus per-label-key sample storage."""

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._values: dict = {}

    @property
    def name(self) -> str:
        return self.spec.name

    def values(self) -> dict:
        """Live ``label-key tuple -> value`` mapping (do not mutate)."""
        return self._values

    def value(self, **labels):
        """One sample's value (0 / None when never touched)."""
        return self._values.get(label_key(self.spec, labels), self._zero())

    def _zero(self):
        return 0


class Counter(Metric):
    """Monotonic counter.  ``inc(value=N)`` is the bulk mutator."""

    def inc(self, value: float = 1, **labels) -> None:
        if value < 0:
            raise MetricError(f"{self.name}: counters only increase")
        if not value:
            return
        key = label_key(self.spec, labels)
        self._values[key] = self._values.get(key, 0) + value

    def inc_many(self, samples: Iterable[tuple]) -> None:
        """Bulk-add ``(label-value-tuple, delta)`` pairs in one call."""
        values = self._values
        for key, delta in samples:
            if delta < 0:
                raise MetricError(f"{self.name}: counters only increase")
            if delta:
                values[key] = values.get(key, 0) + delta

    def total(self) -> float:
        return sum(self._values.values())


class Gauge(Metric):
    """Point-in-time value; last ``set`` wins."""

    def set(self, value: float, **labels) -> None:
        self._values[label_key(self.spec, labels)] = value

    def _zero(self):
        return None


class Histogram(Metric):
    """Fixed-bucket histogram with bulk observation.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Per label key the state is
    ``[bucket_counts..., overflow]`` plus running count/sum.
    """

    def __init__(self, spec: MetricSpec) -> None:
        super().__init__(spec)
        bounds = tuple(spec.buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"{self.name}: buckets must strictly increase")
        self.bounds = bounds

    def _state(self, key: tuple) -> dict:
        state = self._values.get(key)
        if state is None:
            state = {
                "buckets": [0] * (len(self.bounds) + 1),
                "count": 0,
                "sum": 0.0,
            }
            self._values[key] = state
        return state

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def observe(self, value: float, **labels) -> None:
        state = self._state(label_key(self.spec, labels))
        state["buckets"][self._bucket_index(value)] += 1
        state["count"] += 1
        state["sum"] += value

    def observe_many(self, values: Sequence[float], **labels) -> None:
        """Bulk mutator: one call per batch, not one per sample."""
        if not len(values):
            return
        state = self._state(label_key(self.spec, labels))
        buckets = state["buckets"]
        total = 0.0
        for v in values:
            buckets[self._bucket_index(v)] += 1
            total += v
        state["count"] += len(values)
        state["sum"] += total

    def _zero(self):
        return None


_KIND_CLASS = {
    KIND_COUNTER: Counter,
    KIND_GAUGE: Gauge,
    KIND_HISTOGRAM: Histogram,
}


@dataclass
class KernelSnapshot:
    """Counter deltas (and gauge values) for one executed kernel."""

    index: int
    kernel_id: int
    #: name -> {rendered-label-key: counter delta}; zero deltas omitted.
    counters: dict = field(default_factory=dict)
    #: name -> {rendered-label-key: gauge value at end of kernel}.
    gauges: dict = field(default_factory=dict)


class MetricsRegistry:
    """All metrics of one observed run, keyed by stable dotted name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._kernel_base: Optional[dict[str, dict]] = None
        self._kernel_index = -1
        self._kernel_id = -1
        #: One :class:`KernelSnapshot` per observed kernel, in order.
        self.kernel_snapshots: list[KernelSnapshot] = []

    # -- registration ---------------------------------------------------

    def register(self, spec: MetricSpec) -> Metric:
        """Create (or fetch, if the spec is identical) a metric."""
        existing = self._metrics.get(spec.name)
        if existing is not None:
            if existing.spec != spec:
                raise MetricError(
                    f"metric {spec.name!r} already registered with a "
                    f"different spec"
                )
            return existing
        metric = _KIND_CLASS[spec.kind](spec)
        self._metrics[spec.name] = metric
        return metric

    def counter(self, name: str, unit: str = "count", labels: tuple = (),
                description: str = "", paper_ref: str = "") -> Counter:
        return self.register(MetricSpec(
            name, KIND_COUNTER, unit, tuple(labels), description, paper_ref
        ))

    def gauge(self, name: str, unit: str = "value", labels: tuple = (),
              description: str = "", paper_ref: str = "") -> Gauge:
        return self.register(MetricSpec(
            name, KIND_GAUGE, unit, tuple(labels), description, paper_ref
        ))

    def histogram(self, name: str, buckets: tuple, unit: str = "value",
                  labels: tuple = (), description: str = "",
                  paper_ref: str = "") -> Histogram:
        return self.register(MetricSpec(
            name, KIND_HISTOGRAM, unit, tuple(labels), description,
            paper_ref, buckets=tuple(buckets),
        ))

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"unknown metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def specs(self) -> list[MetricSpec]:
        return [self._metrics[n].spec for n in self.names()]

    # -- per-kernel snapshotting ----------------------------------------

    def _counter_state(self) -> dict[str, dict]:
        return {
            name: dict(m.values())
            for name, m in self._metrics.items()
            if m.spec.kind == KIND_COUNTER
        }

    def begin_kernel(self, kernel_id: int) -> None:
        """Mark the counter baseline for the kernel about to execute."""
        self._kernel_index += 1
        self._kernel_id = kernel_id
        self._kernel_base = self._counter_state()

    def end_kernel(self) -> KernelSnapshot:
        """Append (and return) the delta snapshot since ``begin_kernel``."""
        if self._kernel_base is None:
            raise MetricError("end_kernel without a matching begin_kernel")
        snap = KernelSnapshot(index=self._kernel_index,
                              kernel_id=self._kernel_id)
        base = self._kernel_base
        for name, metric in self._metrics.items():
            spec = metric.spec
            if spec.kind == KIND_COUNTER:
                before = base.get(name, {})
                deltas = {}
                for key, value in metric.values().items():
                    delta = value - before.get(key, 0)
                    if delta:
                        deltas[_render_key(spec, key)] = delta
                if deltas:
                    snap.counters[name] = deltas
            elif spec.kind == KIND_GAUGE and metric.values():
                snap.gauges[name] = {
                    _render_key(spec, k): v
                    for k, v in metric.values().items()
                }
        self._kernel_base = None
        self.kernel_snapshots.append(snap)
        return snap

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric's current state."""
        out = {}
        for name in self.names():
            metric = self._metrics[name]
            spec = metric.spec
            if spec.kind == KIND_HISTOGRAM:
                values = {
                    _render_key(spec, k): {
                        "buckets": list(st["buckets"]),
                        "count": st["count"],
                        "sum": st["sum"],
                    }
                    for k, st in metric.values().items()
                }
            else:
                values = {
                    _render_key(spec, k): v
                    for k, v in metric.values().items()
                }
            out[name] = {
                "kind": spec.kind,
                "unit": spec.unit,
                "labels": list(spec.labels),
                "description": spec.description,
                "paper_ref": spec.paper_ref,
                "values": values,
            }
            if spec.kind == KIND_HISTOGRAM:
                out[name]["buckets"] = list(spec.buckets)
        return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM",
    "KernelSnapshot",
    "Metric",
    "MetricError",
    "MetricSpec",
    "MetricsRegistry",
    "label_key",
]
