"""``repro report`` — aggregate journals + metrics into a dashboard.

The observability layer produces three kinds of durable artefacts:
runner journals (``.repro-journal/*.jsonl``, one record per attempt with
a metric digest on ``done``), ``--metrics-out`` JSON dumps of the metric
registry, and stamped ``BENCH_*.json`` benchmark payloads at the repo
root.  This module renders them — plus baseline comparisons from
:mod:`repro.obs.regress` — into one markdown (optionally HTML) report:

* **provenance** — the environment fingerprint each journal was written
  under (code version, git sha);
* **run inventory** — per-point status, attempts, wall time, and the
  headline traffic digest (``rdc.hit``, ``link.bytes``, remote
  fraction) straight from journal ``done`` records;
* **CARVE-vs-baseline tables** — for every workload journalled under
  more than one system, the side-by-side traffic comparison the paper's
  figures are built from;
* **per-link traffic matrices** — from ``link.bytes{src,dst}`` samples
  in metrics dumps;
* **baseline gate** — rendered :class:`~repro.obs.regress.
  RegressionReport` tables with per-metric deltas;
* **benchmark trends** — the stamped history carried inside
  ``BENCH_*.json`` files (see ``benchmarks/_common.py``).

Everything degrades gracefully: a section with no input data renders a
one-line "no data" note instead of failing, so the command is usable on
partial artefacts (e.g. only a journal, no metrics dump).
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.obs.regress import RegressionReport

#: Digest columns shown in run-inventory and comparison tables, in
#: display order.  All are keys of the journal ``metrics`` digest.
_DIGEST_COLUMNS = (
    "sim.accesses",
    "remote_fraction",
    "rdc.hit",
    "rdc.miss",
    "coh.invalidate",
    "mig.page_moves",
    "link.bytes",
)


# ---------------------------------------------------------------------------
# Input loading
# ---------------------------------------------------------------------------

def load_journal_rows(paths: Iterable) -> tuple[list[dict], list[dict]]:
    """(meta fingerprints, final per-key rows) from journal files.

    A key's *final* row is its last terminal record (``done`` or
    ``failed``); earlier attempts only bump the attempt count shown.
    """
    metas: list[dict] = []
    final: dict[str, dict] = {}
    from repro.sim.journal import Journal

    for path in paths:
        journal = Journal(path)
        for rec in journal.records():
            event = rec["event"]
            if event == "meta":
                fp = rec.get("fingerprint")
                if isinstance(fp, dict):
                    metas.append({**fp, "journal": str(path)})
            elif event in ("done", "failed"):
                final[rec["key"]] = {**rec, "journal": str(path)}
    rows = [final[key] for key in sorted(final)]
    return metas, rows


def load_metrics_docs(paths: Iterable) -> list[dict]:
    """Parse ``--metrics-out`` JSON dumps (unreadable files skipped)."""
    docs = []
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            doc["_path"] = str(path)
            docs.append(doc)
    return docs


def link_matrix_of(doc: dict) -> Optional[list[list[int]]]:
    """The directed link-byte matrix held in one metrics dump."""
    samples = doc.get("metrics", {}).get("link.bytes", {}).get("values")
    if not samples:
        return None
    cells = {}
    n = 0
    for key, value in samples.items():
        try:
            parts = dict(p.split("=", 1) for p in key.split(","))
            s, d = int(parts["src"]), int(parts["dst"])
        except (KeyError, ValueError):
            continue
        cells[(s, d)] = value
        n = max(n, s + 1, d + 1)
    if not cells:
        return None
    return [[cells.get((s, d), 0) for d in range(n)] for s in range(n)]


def load_bench_payloads(paths: Iterable) -> list[dict]:
    """Parse stamped ``BENCH_*.json`` payloads (bad files skipped)."""
    out = []
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            doc["_path"] = str(path)
            out.append(doc)
    return out


# ---------------------------------------------------------------------------
# Markdown building blocks
# ---------------------------------------------------------------------------

def _md_table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(str(h) for h in header) + " |",
           "|" + "---|" * len(header)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def _digest_cells(metrics: Optional[dict]) -> list[str]:
    if not metrics:
        return ["-"] * len(_DIGEST_COLUMNS)
    return [_fmt(metrics.get(col, "-")) for col in _DIGEST_COLUMNS]


def _trace_cell(meta: dict) -> str:
    """The provenance trace cell: the batch's trace id, linked to the
    assembled timeline (``repro trace --journal`` writes it next to the
    report; the serve dashboard serves it at the sibling ``trace``
    route)."""
    trace_id = meta.get("trace_id")
    if not trace_id:
        return "-"
    stem = Path(str(meta.get("journal", "journal"))).stem
    return f"[{trace_id}]({stem}.trace.json)"


def provenance_section(metas: list[dict]) -> str:
    lines = ["## Provenance", ""]
    if not metas:
        lines.append("_No journal fingerprints found._")
        return "\n".join(lines)
    rows = [
        [m.get("journal", "-"), m.get("code_version", "-"),
         m.get("git_sha") or "-", m.get("python", "-"), _trace_cell(m)]
        for m in metas
    ]
    lines.append(_md_table(
        ["journal", "code version", "git sha", "python", "trace"], rows
    ))
    return "\n".join(lines)


def inventory_section(rows: list[dict]) -> str:
    lines = ["## Run inventory", ""]
    if not rows:
        lines.append("_No journalled points found._")
        return "\n".join(lines)
    table = []
    for rec in rows:
        if rec["event"] == "done":
            status = "ok"
            attempts = rec.get("attempt", "-")
            elapsed = rec.get("elapsed_s")
        else:
            status = f"FAILED ({rec.get('kind', '?')})"
            attempts = rec.get("attempts", "-")
            elapsed = rec.get("elapsed_s")
        table.append(
            [rec["key"], status, attempts,
             f"{elapsed:.3g} s" if isinstance(elapsed, (int, float)) else "-"]
            + _digest_cells(rec.get("metrics"))
        )
    lines.append(_md_table(
        ["point", "status", "attempts", "wall"] + list(_DIGEST_COLUMNS),
        table,
    ))
    return "\n".join(lines)


def comparison_section(rows: list[dict]) -> str:
    """Per-workload system-vs-system traffic tables from journal rows.

    Journal keys are ``<system>/<workload>``; any workload observed
    under two or more systems gets a side-by-side table — the CARVE-vs-
    baseline view when the journals cover both.
    """
    lines = ["## Per-workload system comparison", ""]
    by_workload: dict[str, list[tuple[str, dict]]] = {}
    for rec in rows:
        if rec["event"] != "done" or not rec.get("metrics"):
            continue
        key = rec["key"]
        if "/" not in key:
            continue
        system, workload = key.split("/", 1)
        by_workload.setdefault(workload, []).append((system, rec["metrics"]))
    multi = {w: rs for w, rs in by_workload.items() if len(rs) > 1}
    if not multi:
        lines.append(
            "_No workload journalled under more than one system._"
        )
        return "\n".join(lines)
    for workload in sorted(multi):
        lines.append(f"### {workload}")
        lines.append("")
        table = [
            [system] + _digest_cells(metrics)
            for system, metrics in sorted(multi[workload])
        ]
        lines.append(_md_table(["system"] + list(_DIGEST_COLUMNS), table))
        lines.append("")
    return "\n".join(lines).rstrip()


def link_matrix_section(docs: list[dict]) -> str:
    lines = ["## Per-link traffic matrices", ""]
    rendered = 0
    for doc in docs:
        matrix = link_matrix_of(doc)
        if matrix is None:
            continue
        rendered += 1
        title = doc.get("workload") or doc.get("system") or doc["_path"]
        lines.append(f"### {title} ({doc['_path']})")
        lines.append("")
        n = len(matrix)
        header = ["src \\ dst"] + [f"GPU {d}" for d in range(n)]
        table = [
            [f"GPU {s}"] + [f"{b:,}" for b in row]
            for s, row in enumerate(matrix)
        ]
        lines.append(_md_table(header, table))
        lines.append("")
    if not rendered:
        lines.append("_No `link.bytes{src,dst}` samples in the metrics "
                     "dumps._")
    return "\n".join(lines).rstrip()


def comparison_markdown(reports: list[RegressionReport]) -> str:
    """Baseline-gate tables: one row per gated metric, deltas named."""
    lines = ["## Baseline gate", ""]
    if not reports:
        lines.append("_No baseline comparisons were run._")
        return "\n".join(lines)
    failed = sum(1 for r in reports if not r.ok)
    lines.append(
        f"**{len(reports) - failed}/{len(reports)} point(s) passed**"
        + (f" — {failed} FAILED" if failed else "")
    )
    lines.append("")
    for report in reports:
        verdict = "ok" if report.ok else "**FAIL**"
        lines.append(f"### {report.system}/{report.workload} — {verdict}")
        lines.append("")
        if report.ok:
            lines.append("All gated metrics within policy.")
        else:
            table = [
                [f.metric, f.tier, _fmt(f.baseline) if f.baseline is not None
                 else "-", _fmt(f.current) if f.current is not None else "-",
                 f.delta_str(), "ok" if f.ok else "**FAIL**"]
                for f in report.findings
            ]
            lines.append(_md_table(
                ["metric", "tier", "baseline", "current", "delta",
                 "verdict"], table,
            ))
        for note in report.notes:
            lines.append(f"- note: {note}")
        lines.append("")
    return "\n".join(lines).rstrip()


def bench_trend_section(payloads: list[dict]) -> str:
    lines = ["## Benchmark trends", ""]
    if not payloads:
        lines.append("_No BENCH_*.json payloads found._")
        return "\n".join(lines)
    for doc in payloads:
        name = doc.get("bench", doc["_path"])
        lines.append(f"### {name} ({doc['_path']})")
        lines.append("")
        stamp = doc.get("provenance")
        if not isinstance(stamp, dict):
            lines.append("_Unstamped payload (no provenance block) — "
                         "regenerate with the current harness._")
            lines.append("")
            continue
        entries = list(doc.get("history", []))
        entries.append({**stamp, **{k: doc.get(k) for k in
                                    stamp.get("trend_keys", [])}})
        trend_keys = stamp.get("trend_keys", [])
        header = ["recorded", "git sha", "code version"] + list(trend_keys)
        rows = []
        for e in entries:
            when = e.get("generated_at")
            rows.append(
                [when or "-", e.get("git_sha") or "-",
                 e.get("code_version", "-")]
                + [_fmt(e.get(k, "-")) for k in trend_keys]
            )
        lines.append(_md_table(header, rows))
        lines.append("")
    return "\n".join(lines).rstrip()


# ---------------------------------------------------------------------------
# Whole-report assembly
# ---------------------------------------------------------------------------

def build_report(
    journal_paths: Iterable = (),
    metrics_paths: Iterable = (),
    bench_paths: Iterable = (),
    regression_reports: Optional[list[RegressionReport]] = None,
    title: str = "repro report",
) -> str:
    """Assemble the full markdown dashboard from the given artefacts."""
    metas, rows = load_journal_rows(journal_paths)
    docs = load_metrics_docs(metrics_paths)
    payloads = load_bench_payloads(bench_paths)
    when = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    sections = [
        f"# {title}",
        "",
        f"_Generated {when}._",
        "",
        provenance_section(metas),
        "",
        inventory_section(rows),
        "",
        comparison_section(rows),
        "",
        link_matrix_section(docs),
        "",
        comparison_markdown(regression_reports or []),
        "",
        bench_trend_section(payloads),
        "",
    ]
    return "\n".join(sections)


def markdown_to_html(md: str, title: str = "repro report") -> str:
    """A minimal, dependency-free markdown renderer (headings, tables,
    emphasis-free paragraphs).  Good enough for CI artefact viewing; use
    the markdown output for anything richer."""
    import re

    body: list[str] = []
    table: list[str] = []
    link_re = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")

    def render_text(text: str) -> str:
        """Escape, then rewrite ``[text](href)`` markdown links."""
        return link_re.sub(
            r"<a href='\2'>\1</a>", html.escape(text)
        )

    def flush_table() -> None:
        if not table:
            return
        rows = [
            [c.strip() for c in line.strip().strip("|").split("|")]
            for line in table
            if not set(line.replace("|", "").strip()) <= {"-", " ", ":"}
        ]
        body.append("<table>")
        for i, cells in enumerate(rows):
            tag = "th" if i == 0 else "td"
            body.append(
                "<tr>" + "".join(
                    f"<{tag}>{render_text(c).replace('**', '')}</{tag}>"
                    for c in cells
                ) + "</tr>"
            )
        body.append("</table>")
        table.clear()

    for line in md.splitlines():
        if line.startswith("|"):
            table.append(line)
            continue
        flush_table()
        stripped = line.strip()
        if stripped.startswith("#"):
            level = len(stripped) - len(stripped.lstrip("#"))
            text = html.escape(stripped.lstrip("#").strip())
            body.append(f"<h{level}>{text}</h{level}>")
        elif stripped.startswith("- "):
            body.append(f"<li>{render_text(stripped[2:])}</li>")
        elif stripped:
            body.append(f"<p>{render_text(stripped)}</p>")
    flush_table()
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2rem;max-width:70rem}"
        "table{border-collapse:collapse;margin:0.5rem 0}"
        "th,td{border:1px solid #999;padding:0.25rem 0.5rem;"
        "text-align:right}th{background:#eee}</style></head><body>"
        + "\n".join(body) + "</body></html>"
    )


__all__ = [
    "bench_trend_section",
    "build_report",
    "comparison_markdown",
    "comparison_section",
    "inventory_section",
    "link_matrix_of",
    "link_matrix_section",
    "load_bench_payloads",
    "load_journal_rows",
    "load_metrics_docs",
    "markdown_to_html",
    "provenance_section",
]
