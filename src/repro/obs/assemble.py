"""Assemble one Perfetto timeline from a traced batch's artifacts.

A traced batch (docs/tracing.md) leaves three kinds of evidence behind:

* the execution **journal** (``<name>.jsonl``) — start/retry/done/failed
  records, plus the ``meta`` record carrying the trace id;
* the **span spills** (``<name>-spans/``) — the runner's attempt spans
  (``runner.jsonl``) and each worker's ``task``/``kernel`` spans
  (``worker-NN.jsonl``), every record flushed before the work it
  describes, so even a SIGKILLed worker's final span survives;
* optionally the **serve event log** — the job lifecycle events the
  service streamed over ``GET /jobs/<id>/events``.

:func:`assemble_trace` merges them into a single Chrome ``trace_event``
document loadable in Perfetto (https://ui.perfetto.dev): the runner is
one process row with one track per worker slot, every worker is its own
process row labeled with its slot and NUMA node, journal transitions
and serve events render as instants, and spans whose end edge never
made it to disk (the crash victims) render to the end of the timeline
flagged ``unfinished`` — the flight-recorder view.

This module only *reads* artifacts; it can run long after the batch
(or the service) that produced them is gone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.obs.trace import read_spans_dir, spans_dir_for
from repro.sim.journal import Journal

#: pid of the synthetic "serve" process row (job lifecycle instants).
PID_SERVE = 1
#: pid of the runner process row (attempt spans + journal instants).
PID_RUNNER = 2
#: Worker slot N renders as process row ``PID_WORKER_BASE + N``.
PID_WORKER_BASE = 10


def _us(ts: float, t0: float) -> int:
    """Seconds-since-epoch to integer µs relative to the trace start."""
    return max(0, int(round((ts - t0) * 1_000_000)))


def _pair_spans(records: list[dict]) -> tuple[list[dict], list[dict]]:
    """Match begin/end edges; returns ``(closed, open)`` span dicts.

    A closed span carries ``ts_begin``/``ts_end``/``status``; an open
    one (end edge never written — the process died first) only
    ``ts_begin``.  Pairing is by span id; duplicate begins (a retried
    dispatch) keep the earliest begin and latest end.
    """
    begins: dict[str, dict] = {}
    closed: list[dict] = []
    for record in records:
        span_id = record.get("span", "")
        if record.get("ph") == "B":
            if span_id not in begins:
                begins[span_id] = record
        elif record.get("ph") == "E":
            begin = begins.pop(span_id, None)
            if begin is None:
                continue  # end without a begin: skip rather than guess
            closed.append({
                "begin": begin,
                "ts_begin": begin.get("ts", 0.0),
                "ts_end": record.get("ts", begin.get("ts", 0.0)),
                "status": record.get("status", "ok"),
            })
    open_spans = [
        {"begin": begin, "ts_begin": begin.get("ts", 0.0)}
        for begin in begins.values()
    ]
    return closed, open_spans


def open_spans(records: list[dict]) -> list[dict]:
    """Begin records whose end edge never hit the disk.

    On a healthy run this is empty; after a worker SIGKILL it is the
    victim's final timeline — what the chaos flight recorder reports.
    """
    _, unfinished = _pair_spans(records)
    return sorted(
        (span["begin"] for span in unfinished),
        key=lambda r: (r.get("ts", 0.0), r.get("span", "")),
    )


def _row_for(record: dict) -> tuple[int, int]:
    """``(pid, tid)`` placement of one span record."""
    name = record.get("name", "")
    slot = record.get("slot", -1)
    if name == "attempt":
        # Runner-side spans: one runner process, one track per slot so
        # concurrent attempts never overlap on a row.
        return PID_RUNNER, slot + 2 if isinstance(slot, int) else 1
    if isinstance(slot, int) and slot >= 0:
        return PID_WORKER_BASE + slot, 1
    return PID_RUNNER, 1


def _span_label(record: dict) -> str:
    name = record.get("name", "")
    key = record.get("key", "")
    if name == "attempt":
        return f"attempt {key} #{record.get('attempt', '?')}"
    if key and name == "task":
        return f"task {key}"
    return name or "span"


def assemble_trace(
    journal_path,
    *,
    title: Optional[str] = None,
    trace_id: Optional[str] = None,
    serve_events: Optional[list[dict]] = None,
) -> dict:
    """One Perfetto ``trace_event`` document for a traced batch.

    *journal_path* names the batch journal; the spans directory is
    found next to it.  *trace_id* filters spans to one trace (a journal
    reused across batches holds several); when omitted, the newest
    ``meta`` record's trace id is used, falling back to "everything".
    *serve_events* adds the job-service lifecycle row.
    """
    journal_path = Path(journal_path)
    journal_records: list[dict] = []
    if journal_path.exists():
        journal = Journal(journal_path)
        journal_records = journal.records()
        if trace_id is None:
            meta = journal.meta()  # the latest fingerprint dict
            if meta is not None:
                trace_id = meta.get("trace_id")
    span_records, damaged = read_spans_dir(spans_dir_for(journal_path))
    if trace_id:
        span_records = [
            r for r in span_records if r.get("trace") == trace_id
        ]

    timestamps = [r["ts"] for r in span_records if "ts" in r]
    timestamps += [r["ts"] for r in journal_records if "ts" in r]
    if serve_events:
        timestamps += [e["ts"] for e in serve_events if "ts" in e]
    t0 = min(timestamps) if timestamps else 0.0
    t_max = max(timestamps) if timestamps else 0.0

    events: list[dict] = []
    pids: dict[int, str] = {}

    closed, unfinished = _pair_spans(span_records)
    for span in closed + unfinished:
        begin = span["begin"]
        pid, tid = _row_for(begin)
        if pid >= PID_WORKER_BASE:
            slot = pid - PID_WORKER_BASE
            node = begin.get("node", -1)
            label = f"worker {slot:02d}"
            if isinstance(node, int) and node >= 0:
                label += f" (node {node})"
            pids.setdefault(pid, label)
        elif pid == PID_RUNNER:
            pids.setdefault(pid, "runner")
        finished = "ts_end" in span
        ts_end = span["ts_end"] if finished else t_max
        args = {
            "trace_id": begin.get("trace", ""),
            "span_id": begin.get("span", ""),
            "parent_id": begin.get("parent", ""),
            "key": begin.get("key", ""),
            "status": span.get("status", "unfinished"),
        }
        if "attempt" in begin:
            args["attempt"] = begin["attempt"]
        if not finished:
            args["unfinished"] = True
        events.append({
            "name": _span_label(begin),
            "cat": "span" if finished else "span,unfinished",
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": _us(span["ts_begin"], t0),
            "dur": max(1, _us(ts_end, t0) - _us(span["ts_begin"], t0)),
            "args": args,
        })

    for record in journal_records:
        event = record.get("event", "")
        if event in ("span", "meta") or "ts" not in record:
            continue
        events.append({
            "name": f"{event} {record.get('key', '')}".strip(),
            "cat": "journal",
            "ph": "i",
            "s": "p",
            "pid": PID_RUNNER,
            "tid": 1,
            "ts": _us(record["ts"], t0),
            "args": {
                k: v for k, v in record.items()
                if k not in ("ts", "sum") and not isinstance(v, dict)
            },
        })
        pids.setdefault(PID_RUNNER, "runner")

    for event in serve_events or ():
        if "ts" not in event:
            continue
        pids.setdefault(PID_SERVE, "serve")
        events.append({
            "name": event.get("kind", "event"),
            "cat": "serve",
            "ph": "i",
            "s": "p",
            "pid": PID_SERVE,
            "tid": 1,
            "ts": _us(event["ts"], t0),
            "args": {k: v for k, v in event.items() if k != "ts"},
        })

    metadata: list[dict] = []
    for pid in sorted(pids):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": pids[pid]},
        })
        metadata.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {
        "displayTimeUnit": "ms",
        "traceEvents": metadata + events,
        "otherData": {
            "title": title or journal_path.stem,
            "trace_id": trace_id or "",
            "journal": journal_path.name,
            "spans": len(span_records),
            "unfinished_spans": len(unfinished),
            "damaged_span_records": damaged,
        },
    }


def write_trace(path, doc: dict) -> Path:
    """Write an assembled document as Perfetto-loadable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    return path


__all__ = [
    "PID_RUNNER",
    "PID_SERVE",
    "PID_WORKER_BASE",
    "assemble_trace",
    "open_spans",
    "write_trace",
]
