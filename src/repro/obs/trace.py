"""Distributed trace contexts and the crash-safe span spill.

The observability layer (PR 3) is strictly per-process: a worker's ring
buffer dies with the worker.  This module adds the two pieces that make
tracing survive the serve → runner → pool fabric:

:class:`TraceContext`
    The identity carried across process boundaries — a ``trace_id``
    minted once per job/sweep plus a span id, with **deterministic**
    child-span derivation (``sha256(trace/parent/name)``), so replaying
    the same batch under the same trace yields the same span ids and
    the assembled timeline diffs cleanly.  Contexts cross the pool wire
    protocol as plain dicts (:meth:`TraceContext.to_wire`).

:class:`SpanSpill`
    An append-only JSONL span file, one per process, living in the
    journal workspace (``<journal>-spans/``).  Every record reuses the
    journal-v2 checksum envelope (:func:`repro.sim.journal.record_checksum`)
    and is flushed per append, so a SIGKILLed worker leaves behind every
    span it began — the chaos flight recorder reads the victim's final
    timeline straight from its spill file.  Write failures are counted,
    never raised: tracing must not be able to fail a run.

Reading a spill (:func:`read_spans`) is torn-tail tolerant with the
same rules as the journal: an unterminated final line is a crash
mid-append and is skipped silently; damaged interior lines are counted.
"""

from __future__ import annotations

import hashlib
import json
import os

# Span timestamps are observability metadata stamped at append time;
# nothing deterministic is derived from them (span *ids* are derived
# from names, not clocks).  Allowlisted for DET001 in repro/lint/rules.
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.sim.journal import CHECKSUM_FIELD, _intact_record, record_checksum

#: Event name of every spill record (journal-v2 envelope requires one).
SPAN_EVENT = "span"

#: hex digits kept of trace and span ids.
ID_LEN = 16

#: File name of the runner's own spill inside the spans directory.
RUNNER_SPILL = "runner.jsonl"  # lint: disable=OBS001 - file name, not a metric


def derive_span_id(trace_id: str, parent_id: str, name: str) -> str:
    """Deterministic child-span id: same tree position → same id."""
    basis = f"{trace_id}/{parent_id}/{name}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:ID_LEN]


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace tree, cheap to copy across processes."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def mint(cls, seed=None) -> "TraceContext":
        """A fresh root context.

        With *seed* the trace id is derived (stable across runs — used
        by tests and the chaos drill); without, it is random, which is
        what the job service wants: two submissions of the same config
        are distinct traces.
        """
        if seed is not None:
            trace_id = hashlib.sha256(
                f"repro-trace:{seed}".encode("utf-8")
            ).hexdigest()[:ID_LEN]
        else:
            trace_id = uuid.uuid4().hex[:ID_LEN]
        return cls(trace_id, derive_span_id(trace_id, "", "root"), "")

    def child(self, name: str) -> "TraceContext":
        """The context of a child span named *name* under this span."""
        return TraceContext(
            self.trace_id,
            derive_span_id(self.trace_id, self.span_id, name),
            self.span_id,
        )

    def to_wire(self) -> dict:
        """The dict form carried over the pool wire protocol."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "TraceContext":
        return cls(
            str(wire.get("trace", "")),
            str(wire.get("span", "")),
            str(wire.get("parent", "")),
        )


def spans_dir_for(journal_path) -> Path:
    """Where a journal's span spills live (mirrors the sidecar rule)."""
    path = Path(journal_path)
    return path.parent / f"{path.stem}-spans"


def worker_spill_name(slot: int) -> str:
    return f"worker-{slot:02d}.jsonl"


class SpanSpill:
    """Append-only, checksummed, flush-per-record span file.

    Failure policy: an unwritable spill increments :attr:`dropped` and
    keeps going — span loss is reported (``trace.dropped_spans``), but
    it can never fail the run it is describing.
    """

    def __init__(self, path, *, slot: int = -1, node: int = -1):
        self.path = Path(path)
        self.slot = slot
        self.node = node
        self.spans = 0
        self.bytes_written = 0
        self.dropped = 0
        self._fh = None

    # -- writing ---------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _append(self, record: dict) -> bool:
        record[CHECKSUM_FIELD] = record_checksum(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            fh = self._handle()
            fh.write(line)
            # Flushed per record so a SIGKILL loses at most the span
            # currently being written — and that one only as a torn
            # tail, which readers skip.
            fh.flush()
        except OSError:
            self.dropped += 1
            return False
        self.spans += 1
        self.bytes_written += len(line)
        return True

    def span_begin(self, ctx: TraceContext, name: str, *, key: str = "",
                   **payload) -> bool:
        """Record the begin edge of *ctx*'s span; flushed before return."""
        record = {
            "event": SPAN_EVENT,
            "key": key,
            "ph": "B",
            "name": name,
            "trace": ctx.trace_id,
            "span": ctx.span_id,
            "parent": ctx.parent_id,
            "slot": self.slot,
            "node": self.node,
            "pid": os.getpid(),
            "ts": time.time(),
        }
        record.update(payload)
        return self._append(record)

    def span_end(self, ctx: TraceContext, name: str, *, key: str = "",
                 status: str = "ok", **payload) -> bool:
        record = {
            "event": SPAN_EVENT,
            "key": key,
            "ph": "E",
            "name": name,
            "trace": ctx.trace_id,
            "span": ctx.span_id,
            "parent": ctx.parent_id,
            "slot": self.slot,
            "node": self.node,
            "pid": os.getpid(),
            "ts": time.time(),
            "status": status,
        }
        record.update(payload)
        return self._append(record)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "SpanSpill":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_spans(path) -> tuple[list[dict], int]:
    """``(records, damaged)`` from one spill file.

    Torn-tail tolerant: an unterminated final line is crash fallout by
    definition and is skipped without counting.  Interior damage
    (undecodable / malformed / checksum-failing lines) is counted in
    ``damaged`` — the test suite asserts a SIGKILL never produces any.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], 0
    records: list[dict] = []
    damaged = 0
    lines = text.split("\n")
    # A well-formed file ends with "\n" → last element is "".  Anything
    # else in the final slot is a torn tail.
    torn = lines[-1] != ""
    body = lines[:-1]
    for line in body:
        if not line.strip():
            continue
        record, why = _intact_record(line)
        if record is None:
            damaged += 1
            continue
        if record.get("event") == SPAN_EVENT:
            records.append(record)
    del torn  # the torn tail (if any) is simply never parsed
    return records, damaged


def read_spans_dir(spans_dir) -> tuple[list[dict], int]:
    """All span records under a spans directory, stably ordered.

    Records are ordered by (file, position) — per-file append order is
    causal order within one process, which is what the assembler needs;
    cross-process ordering comes from timestamps at render time.
    """
    spans_dir = Path(spans_dir)
    if not spans_dir.is_dir():
        return [], 0
    records: list[dict] = []
    damaged = 0
    for path in sorted(spans_dir.glob("*.jsonl")):
        recs, bad = read_spans(path)
        records.extend(recs)
        damaged += bad
    return records, damaged


__all__ = [
    "ID_LEN",
    "RUNNER_SPILL",
    "SPAN_EVENT",
    "SpanSpill",
    "TraceContext",
    "derive_span_id",
    "read_spans",
    "read_spans_dir",
    "spans_dir_for",
    "worker_spill_name",
]
