"""The canonical metric contract of the CARVE reproduction.

Every metric the simulator can emit is declared here, once, as a
:class:`~repro.obs.registry.MetricSpec`.  ``docs/metrics.md`` is the
human-readable mirror of this table and ``tools/check_docs.py`` keeps the
two in lockstep: a metric added here without a doc row (or referenced in
docs without a spec here) fails CI.

Names are **stable contracts**.  Renaming one is a breaking change to
every experiment script, dashboard, and doc that refers to it; add a new
name and deprecate the old one instead.

Naming scheme: ``<subsystem>.<quantity>`` with dotted lowercase segments;
label sets are rendered in docs as ``name{label,label}`` (e.g.
``link.bytes{src,dst}``).  Paper references point at Young et al.,
MICRO 2018 ("Combining HW/SW Mechanisms to Improve NUMA Performance of
Multi-GPU Systems").
"""

from __future__ import annotations

from repro.obs.registry import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    MetricSpec,
    MetricsRegistry,
)

_G = ("gpu",)
_LINK = ("src", "dst")

#: Bucket bounds for per-kernel access counts (log-ish spacing).
ACCESS_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)
#: Bucket bounds for per-kernel accumulated latency in nanoseconds.
LATENCY_BUCKETS = (1e5, 1e6, 1e7, 1e8, 1e9, 1e10)
#: Bucket bounds for job service execution latency in seconds.
SERVE_LATENCY_BUCKETS = (0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)

#: The full, ordered metric contract.  docs/metrics.md mirrors this table.
SPECS: tuple = (
    # -- access stream ---------------------------------------------------
    MetricSpec("sim.accesses", KIND_COUNTER, "accesses", _G,
               "Memory accesses issued by each GPU (after coalescing).",
               "§6 methodology"),
    MetricSpec("sim.writes", KIND_COUNTER, "accesses", _G,
               "Write accesses issued by each GPU.",
               "§6 methodology"),
    MetricSpec("sim.instructions", KIND_COUNTER, "instructions", _G,
               "Instructions attributed to each GPU (instr_per_access "
               "scaled).", "§6 methodology"),
    # -- SM-side caches --------------------------------------------------
    MetricSpec("cache.l1.hit", KIND_COUNTER, "accesses", _G,
               "L1 hits; filtered before any NUMA traffic.", "Table III"),
    MetricSpec("cache.l2.hit", KIND_COUNTER, "accesses", _G,
               "L2 hits; last stop before local DRAM or the fabric.",
               "Table III"),
    # -- memory locality -------------------------------------------------
    MetricSpec("mem.local.read", KIND_COUNTER, "accesses", _G,
               "Reads served by the issuing GPU's own memory.", "§2.1"),
    MetricSpec("mem.local.write", KIND_COUNTER, "accesses", _G,
               "Writes absorbed by the issuing GPU's own memory.", "§2.1"),
    MetricSpec("mem.remote.read", KIND_COUNTER, "accesses", _G,
               "Reads whose home node is another GPU — the traffic CARVE "
               "exists to eliminate.", "§2.1, Fig. 2"),
    MetricSpec("mem.remote.write", KIND_COUNTER, "accesses", _G,
               "Writes whose home node is another GPU.", "§2.1, Fig. 2"),
    # -- DRAM behaviour --------------------------------------------------
    MetricSpec("dram.read", KIND_COUNTER, "accesses", _G,
               "DRAM read accesses at each GPU's memory controller.",
               "§6 methodology"),
    MetricSpec("dram.write", KIND_COUNTER, "accesses", _G,
               "DRAM write accesses at each GPU's memory controller.",
               "§6 methodology"),
    MetricSpec("dram.row_hit", KIND_COUNTER, "accesses", _G,
               "Row-buffer hits at the memory controller.", "§6"),
    MetricSpec("dram.row_miss", KIND_COUNTER, "accesses", _G,
               "Row-buffer misses (activate+precharge) at the controller.",
               "§6"),
    # -- Remote Data Cache (CARVE) ---------------------------------------
    MetricSpec("rdc.hit", KIND_COUNTER, "accesses", _G,
               "Remote accesses served from the GPU's carved-out Remote "
               "Data Cache instead of crossing the fabric.", "§3, Fig. 5"),
    MetricSpec("rdc.miss", KIND_COUNTER, "accesses", _G,
               "RDC probes that missed and went remote.", "§3, Fig. 5"),
    MetricSpec("rdc.insert", KIND_COUNTER, "lines", _G,
               "Lines filled into the RDC on a remote fetch.", "§3.2"),
    MetricSpec("rdc.bypass", KIND_COUNTER, "accesses", _G,
               "Remote accesses that bypassed the RDC (no allocation).",
               "§3.2"),
    MetricSpec("rdc.stale", KIND_COUNTER, "accesses", _G,
               "Probes that found a tag match with a stale epoch counter — "
               "the software-coherence invalidation mechanism at work.",
               "§4.2"),
    # -- coherence -------------------------------------------------------
    MetricSpec("coh.invalidate", KIND_COUNTER, "messages", _G,
               "Invalidation messages each GPU sent to remote sharers "
               "(GPU-VI write propagation).", "§4.3"),
    MetricSpec("coh.invalidate_recv", KIND_COUNTER, "messages", _G,
               "Invalidation messages received and applied to the local "
               "RDC.", "§4.3"),
    MetricSpec("epoch.flush_lines", KIND_COUNTER, "lines", _G,
               "Dirty RDC lines written back at kernel-boundary epoch "
               "flushes (software coherence).", "§4.2"),
    # -- In-Memory Sharing Tracker ---------------------------------------
    MetricSpec("imst.broadcast", KIND_COUNTER, "messages", _G,
               "Invalidation broadcasts the IMST could not filter.",
               "§4.3"),
    MetricSpec("imst.broadcast_avoided", KIND_COUNTER, "messages", _G,
               "Broadcasts suppressed because the IMST proved the line "
               "unshared.", "§4.3"),
    MetricSpec("imst.demotion", KIND_COUNTER, "transitions", _G,
               "IMST state demotions (RW-shared collapse on writes).",
               "§4.3"),
    # -- page placement --------------------------------------------------
    MetricSpec("mig.page_moves", KIND_COUNTER, "pages", _G,
               "Pages migrated *to* each GPU by the first-touch/counter "
               "migration engine.", "§2.2"),
    MetricSpec("repl.pages", KIND_COUNTER, "pages", _G,
               "Read-only page replicas installed on each GPU.", "§2.2"),
    # -- interconnect ----------------------------------------------------
    MetricSpec("link.bytes", KIND_COUNTER, "bytes", _LINK,
               "Bytes moved over each directed inter-GPU link.",
               "§2.1, Fig. 3"),
    # -- runner ----------------------------------------------------------
    MetricSpec("runner.attempts", KIND_COUNTER, "attempts", (),
               "Task attempts started by the fault-tolerant runner.",
               "repro infra"),
    MetricSpec("runner.retries", KIND_COUNTER, "attempts", (),
               "Attempts that were retries of a previously failed task.",
               "repro infra"),
    MetricSpec("runner.failures", KIND_COUNTER, "failures", ("kind",),
               "Task attempts that failed, by failure kind "
               "(exception/timeout/crash/crash_loop).", "repro infra"),
    # -- worker pool -----------------------------------------------------
    MetricSpec("pool.tasks", KIND_COUNTER, "tasks", ("worker",),
               "Tasks dispatched to each persistent pool worker slot "
               "(counts across respawns).", "repro infra"),
    # -- chaos engine & journal durability (docs/chaos.md) ---------------
    MetricSpec("chaos.injected", KIND_COUNTER, "faults", ("kind",),
               "Faults injected in this process by the seeded chaos "
               "engine, by fault kind; the drill state directory is the "
               "cross-process audit trail.", "repro infra"),
    MetricSpec("journal.torn_records", KIND_COUNTER, "records", (),
               "Half-written journal tail lines (crash mid-append) "
               "detected and silently truncated before the next append.",
               "repro infra"),
    MetricSpec("journal.corrupt_records", KIND_COUNTER, "records", (),
               "Damaged non-tail journal lines (unparsable or malformed) "
               "skipped with a one-shot warning — not crash fallout.",
               "repro infra"),
    MetricSpec("journal.checksum_failures", KIND_COUNTER, "records", (),
               "Complete journal records dropped because their "
               "per-record checksum did not verify.", "repro infra"),
    MetricSpec("journal.sidecar_quarantined", KIND_COUNTER, "files", (),
               "Unreadable or digest-mismatched sidecar result pickles "
               "quarantined to *.corrupt; the point re-runs on resume.",
               "repro infra"),
    # -- job service (docs/serve.md) -------------------------------------
    MetricSpec("serve.submitted", KIND_COUNTER, "requests", (),
               "Job submissions accepted by the service, regardless of "
               "disposition (new, coalesced, or cached).", "repro infra"),
    MetricSpec("serve.deduped", KIND_COUNTER, "requests", (),
               "Submissions answered straight from the content-addressed "
               "result store (CAS hit — no execution).", "repro infra"),
    MetricSpec("serve.coalesced", KIND_COUNTER, "requests", (),
               "Submissions attached to an already-queued or running job "
               "with the same content address.", "repro infra"),
    MetricSpec("serve.rejected", KIND_COUNTER, "requests", (),
               "Submissions refused with 429 because the bounded "
               "submission queue was full.", "repro infra"),
    MetricSpec("serve.completed", KIND_COUNTER, "jobs", ("state",),
               "Jobs reaching a terminal lifecycle state, by state "
               "(done, failed, cancelled).", "repro infra"),
    MetricSpec("serve.store_quarantined", KIND_COUNTER, "files", (),
               "Corrupt CAS result files (bad checksum, decode failure, "
               "or key mismatch) quarantined to *.corrupt; the config "
               "re-runs on next submission.", "repro infra"),
    MetricSpec("serve.store_evicted", KIND_COUNTER, "results", (),
               "CAS results (and their journals/sidecars/spans) evicted "
               "by the --store-max-bytes LRU sweep.", "repro infra"),
    # -- tracer self-accounting ------------------------------------------
    MetricSpec("trace.dropped", KIND_COUNTER, "events", (),
               "Events evicted from the tracer ring buffer (capacity "
               "overflow).", "repro infra"),
    # -- distributed tracing (docs/tracing.md) ---------------------------
    MetricSpec("trace.spans", KIND_COUNTER, "records", (),
               "Span records (begin/end edges each count once) written "
               "to the crash-safe spill files of a traced batch.",
               "repro infra"),
    MetricSpec("trace.spill_bytes", KIND_COUNTER, "bytes", (),
               "Bytes appended to span spill files by a traced batch "
               "(runner + all worker spills).", "repro infra"),
    MetricSpec("trace.dropped_spans", KIND_COUNTER, "records", (),
               "Span records lost to spill write failures (full disk, "
               "permissions) — tracing degrades, the run itself never "
               "fails.", "repro infra"),
    # -- obs self-accounting ---------------------------------------------
    MetricSpec("obs.digest_errors", KIND_COUNTER, "failures", (),
               "Result digest computations that raised and were skipped "
               "(summarize_result); the journal 'done' record then "
               "carries no metrics field.", "repro infra"),
    # -- gauges ----------------------------------------------------------
    MetricSpec("mem.pages_mapped", KIND_GAUGE, "pages", _G,
               "Pages homed on each GPU at end of run.", "§2.2"),
    MetricSpec("mem.pages_replicated", KIND_GAUGE, "pages", _G,
               "Replica pages resident on each GPU at end of run.",
               "§2.2"),
    MetricSpec("rdc.occupancy", KIND_GAUGE, "fraction", _G,
               "Fraction of RDC lines valid at end of run.", "§3.3"),
    MetricSpec("fault.link_scale", KIND_GAUGE, "fraction", _LINK,
               "Effective bandwidth scale of each faulted link during the "
               "most recent fault epoch (1.0 = healthy).", "repro infra"),
    MetricSpec("pool.workers", KIND_GAUGE, "processes", (),
               "Worker-pool processes alive at the last scheduling step "
               "(0 after shutdown).", "repro infra"),
    MetricSpec("pool.queue_depth", KIND_GAUGE, "tasks", (),
               "Tasks queued behind the pool (pending dispatch or "
               "backing off) at the last scheduling step.", "repro infra"),
    MetricSpec("serve.queue_depth", KIND_GAUGE, "jobs", (),
               "Jobs waiting in the service's bounded submission queue "
               "(excludes the one currently executing).", "repro infra"),
    MetricSpec("serve.stream_clients", KIND_GAUGE, "clients", (),
               "Long-poll clients currently parked on "
               "GET /jobs/<id>/events waiting for new job events.",
               "repro infra"),
    # -- histograms ------------------------------------------------------
    MetricSpec("kernel.accesses", KIND_HISTOGRAM, "accesses", (),
               "Distribution of access counts across kernels.",
               "§6 methodology", buckets=ACCESS_BUCKETS),
    MetricSpec("kernel.latency_ns", KIND_HISTOGRAM, "nanoseconds", _G,
               "Distribution of per-kernel accumulated access latency per "
               "GPU.", "§6 methodology", buckets=LATENCY_BUCKETS),
    MetricSpec("serve.latency_s", KIND_HISTOGRAM, "seconds", (),
               "Distribution of job execution wall time (running → "
               "terminal), excluding queue wait.", "repro infra",
               buckets=SERVE_LATENCY_BUCKETS),
)

#: Every contracted metric name (what docs may legally reference).
METRIC_NAMES = frozenset(spec.name for spec in SPECS)


def default_registry() -> MetricsRegistry:
    """A registry pre-populated with the full contract above."""
    registry = MetricsRegistry()
    for spec in SPECS:
        registry.register(spec)
    return registry


def spec_for(name: str) -> MetricSpec:
    """Look up one contracted spec by name (KeyError if unknown)."""
    for spec in SPECS:
        if spec.name == name:
            return spec
    raise KeyError(name)


__all__ = [
    "ACCESS_BUCKETS",
    "LATENCY_BUCKETS",
    "METRIC_NAMES",
    "SPECS",
    "default_registry",
    "spec_for",
]
