"""``repro.obs`` — low-overhead instrumentation & tracing for the simulator.

The observability layer answers the paper's *traffic-shape* questions —
who hits in the RDC (§3), how many bytes cross which NVLink (§2.1), when
GPU-VI invalidations fire (§4.3) — as first-class, documented data
instead of end-of-run aggregates.  It has four pieces:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters, gauges,
  and histograms with per-kernel snapshotting.  The metric *names* are a
  stable contract declared in :mod:`repro.obs.metrics` and documented in
  ``docs/metrics.md`` (CI keeps the two in sync).
* :class:`~repro.obs.tracer.Tracer` — a ring-buffered, sampled stream of
  typed events (:mod:`repro.obs.events`): RDC activity, IMST
  transitions, epoch flushes, page migrations/replications, link-fault
  epochs, runner retries.
* Exporters (:mod:`repro.obs.export`) — JSONL and Chrome ``trace_event``
  JSON loadable in Perfetto; see ``docs/observability.md``.
* The :class:`~repro.obs.observe.Observability` facade — the one object
  the simulator holds.  All hooks fire on rare paths (per kernel, per
  migration), so an observed run is bit-identical to an unobserved one
  and, with tracing off, within the <5% overhead budget enforced by
  ``benchmarks/bench_hotpath.py --obs-check``.

On top of the live layer sits the *run-over-run* layer (see
``docs/regression.md``):

* :mod:`repro.obs.baseline` — schema-versioned run records (metric
  digest + perf-model times + environment fingerprint) and the
  committed ``baselines/`` store (``python -m repro baseline``).
* :mod:`repro.obs.regress` — the two-tier regression checker: bit-exact
  gates for deterministic traffic counters, tolerance bands for
  throughput/latency.
* :mod:`repro.obs.report` — ``python -m repro report``: journals +
  metrics dumps + stamped benchmark payloads rendered as one
  markdown/HTML dashboard.

Quickstart::

    from repro import carve_config, run_workload
    from repro.obs import Observability
    from repro.obs.export import write_chrome_trace

    obs = Observability(trace=True)
    cfg = carve_config(rdc_bytes=2 << 30)
    result = run_workload("Lulesh", cfg, use_cache=False, obs=obs)
    print(obs.registry.get("rdc.hit").total())
    write_chrome_trace("lulesh.trace.json", result, cfg, obs)  # Perfetto

or from the CLI: ``python -m repro trace Lulesh --system carve-hwc``.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import METRIC_NAMES, SPECS, default_registry
from repro.obs.observe import Observability
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    KernelSnapshot,
    MetricError,
    MetricSpec,
    MetricsRegistry,
)
from repro.obs.summary import summarize_result
from repro.obs.trace import SpanSpill, TraceContext
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "KernelSnapshot",
    "METRIC_NAMES",
    "MetricError",
    "MetricSpec",
    "MetricsRegistry",
    "Observability",
    "SPECS",
    "SpanSpill",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "default_registry",
    "summarize_result",
]
