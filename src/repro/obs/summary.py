"""Compact per-result metric summaries for the runner journal.

The fault-tolerant runner (:mod:`repro.sim.runner`) journals one record
per attempt.  When an attempt returns a :class:`repro.perf.stats.RunResult`
the journal's ``done`` record is enriched with the dict produced here — a
deliberately small, JSON-safe digest (a dozen scalars, not the full
counter dump) so journals stay greppable and cheap.

The function is duck-typed: task functions can return anything, so a
non-RunResult simply yields ``None`` and the journal stays unchanged.
A RunResult-*shaped* object whose digest computation raises is a
different story — that is data loss, so it is **counted**
(``obs.digest_errors`` on the caller's registry) and surfaced as a
single :class:`RuntimeWarning` per process instead of being silently
swallowed.
"""

from __future__ import annotations

import warnings
from typing import Optional

#: Whether the once-per-process digest-failure warning already fired.
_warned_digest_failure = False


def _note_digest_failure(exc: BaseException, registry) -> None:
    """Count a digest failure and warn exactly once per process."""
    global _warned_digest_failure
    if registry is not None:
        from repro.obs.metrics import spec_for

        try:
            registry.register(spec_for("obs.digest_errors")).inc()
        except Exception:
            pass  # a foreign registry must still never fail the journal
    if not _warned_digest_failure:
        _warned_digest_failure = True
        warnings.warn(
            f"metric digest failed and was dropped from the journal "
            f"({type(exc).__name__}: {exc}); further failures are "
            f"counted in obs.digest_errors without this warning",
            RuntimeWarning,
            stacklevel=3,
        )


def summarize_result(result, registry=None) -> Optional[dict]:
    """A small JSON-safe digest of a ``RunResult`` (else ``None``).

    Keys are derived from the metric contract (``sim.accesses``,
    ``rdc.hit`` ...) so journal greps and docs speak the same language.

    *registry* (a :class:`repro.obs.registry.MetricsRegistry`, optional)
    receives an ``obs.digest_errors`` increment when a RunResult-shaped
    object blows up mid-digest; the failure itself never propagates — a
    malformed result must not fail the journal write.
    """
    total = getattr(result, "total", None)
    kernels = getattr(result, "kernels", None)
    if not callable(total) or kernels is None:
        return None  # a foreign result type, by design: no digest
    try:
        agg = total()
        link_bytes = 0
        for ks in kernels:
            for row in ks.link_bytes:
                link_bytes += sum(row)
        # Self-loops (diagonal) never carry fabric bytes, so the sum is
        # exactly the directed off-diagonal traffic.
        return {
            "workload": getattr(result, "workload", None),
            "config": getattr(result, "config_label", None),
            "kernels": len(kernels),
            "sim.accesses": int(agg.accesses),
            "sim.writes": int(agg.writes),
            "mem.remote.read": int(agg.remote_reads),
            "mem.remote.write": int(agg.remote_writes),
            "remote_fraction": round(float(result.remote_fraction), 6),
            "rdc.hit": int(agg.rdc_hits),
            "rdc.miss": int(agg.rdc_misses),
            "coh.invalidate": int(agg.invalidates_sent),
            "mig.page_moves": int(agg.migrations),
            "link.bytes": int(link_bytes),
            "mem.pages_replicated": int(sum(
                getattr(result, "pages_replicated", []) or []
            )),
        }
    except Exception as exc:
        _note_digest_failure(exc, registry)
        return None


__all__ = ["summarize_result"]
