"""Compact per-result metric summaries for the runner journal.

The fault-tolerant runner (:mod:`repro.sim.runner`) journals one record
per attempt.  When an attempt returns a :class:`repro.perf.stats.RunResult`
the journal's ``done`` record is enriched with the dict produced here — a
deliberately small, JSON-safe digest (a dozen scalars, not the full
counter dump) so journals stay greppable and cheap.

The function is duck-typed: task functions can return anything, so a
non-RunResult simply yields ``None`` and the journal stays unchanged.
"""

from __future__ import annotations

from typing import Optional


def summarize_result(result) -> Optional[dict]:
    """A small JSON-safe digest of a ``RunResult`` (else ``None``).

    Keys are derived from the metric contract (``sim.accesses``,
    ``rdc.hit`` ...) so journal greps and docs speak the same language.
    """
    total = getattr(result, "total", None)
    kernels = getattr(result, "kernels", None)
    if not callable(total) or kernels is None:
        return None
    try:
        agg = total()
        link_bytes = 0
        for ks in kernels:
            for row in ks.link_bytes:
                link_bytes += sum(row)
        # Self-loops (diagonal) never carry fabric bytes, so the sum is
        # exactly the directed off-diagonal traffic.
        return {
            "workload": getattr(result, "workload", None),
            "config": getattr(result, "config_label", None),
            "kernels": len(kernels),
            "sim.accesses": int(agg.accesses),
            "sim.writes": int(agg.writes),
            "mem.remote.read": int(agg.remote_reads),
            "mem.remote.write": int(agg.remote_writes),
            "remote_fraction": round(float(result.remote_fraction), 6),
            "rdc.hit": int(agg.rdc_hits),
            "rdc.miss": int(agg.rdc_misses),
            "coh.invalidate": int(agg.invalidates_sent),
            "mig.page_moves": int(agg.migrations),
            "link.bytes": int(link_bytes),
            "mem.pages_replicated": int(sum(
                getattr(result, "pages_replicated", []) or []
            )),
        }
    except Exception:
        # A malformed or foreign result must never fail the journal write.
        return None


__all__ = ["summarize_result"]
