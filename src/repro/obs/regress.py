"""Two-tier regression checker over run records.

The paper's claims are *traffic-shape* claims, and the simulator is
deterministic, so the gate has two tiers with different semantics:

* **exact tier** — deterministic traffic counters
  (:data:`repro.obs.baseline.DETERMINISTIC_KEYS` plus the per-link byte
  matrix and the config hash) must match the baseline **bit-exact**.
  Any drift means simulator semantics changed: either a bug, or an
  intentional change that must re-record its baselines.
* **band tier** — throughput/latency quantities carry measurement noise
  (wall clock) or are expected to move only with the pricing model
  (modelled time).  They are gated by relative tolerance bands:
  wall-clock throughput fails only on a *regression* beyond
  ``wall_epsilon`` (improvements always pass); modelled time is
  two-sided with a tiny ``modelled_epsilon`` because it is a pure
  function of the deterministic counters.

``compare_records`` never raises on metric drift — it returns a
:class:`RegressionReport` whose :meth:`~RegressionReport.render` is a
readable diff naming every offending metric; the CLI turns ``ok`` into
the exit status.  See ``docs/regression.md`` for gate semantics and the
baseline workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.baseline import (
    DETERMINISTIC_KEYS,
    SCHEMA_VERSION,
    validate_record,
)

#: Finding tiers.
TIER_EXACT = "exact"
TIER_BAND = "band"


@dataclass(frozen=True)
class RegressionPolicy:
    """Tolerances of the band tier (the exact tier has none).

    ``wall_epsilon`` is the relative wall-clock throughput loss
    tolerated before ``perf.accesses_per_s`` fails (one-sided: faster
    always passes).  The default is deliberately loose — single-machine
    wall clock is noisy; CI gates that must never flake should pass
    ``deterministic_only=True`` and gate traffic shape alone.
    """

    wall_epsilon: float = 0.5
    modelled_epsilon: float = 1e-6
    #: Skip the band tier entirely (CI mode: bit-exact gates only).
    deterministic_only: bool = False

    def validate(self) -> None:
        if not 0 <= self.wall_epsilon:
            raise ValueError("wall_epsilon cannot be negative")
        if not 0 <= self.modelled_epsilon:
            raise ValueError("modelled_epsilon cannot be negative")


@dataclass
class Finding:
    """One gated quantity: its tier, both values, and the verdict."""

    metric: str
    tier: str  # TIER_EXACT | TIER_BAND
    baseline: object
    current: object
    ok: bool
    note: str = ""

    @property
    def rel_delta(self) -> Optional[float]:
        """(current - baseline) / baseline where that makes sense."""
        try:
            base = float(self.baseline)  # type: ignore[arg-type]
            cur = float(self.current)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if base == 0:
            return None
        return (cur - base) / base

    def delta_str(self) -> str:
        rel = self.rel_delta
        if rel is None:
            return "-"
        return f"{rel:+.4%}"

    def line(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        note = f"  [{self.note}]" if self.note else ""
        return (
            f"{verdict:4s} {self.tier:5s} {self.metric:24s} "
            f"baseline={self.baseline!r} current={self.current!r} "
            f"delta={self.delta_str()}{note}"
        )


@dataclass
class RegressionReport:
    """Everything ``compare_records`` determined about one point."""

    system: str
    workload: str
    findings: list[Finding] = field(default_factory=list)
    #: Non-gating observations (fingerprint drift, engine change...).
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(f.ok for f in self.findings)

    def failures(self) -> list[Finding]:
        return [f for f in self.findings if not f.ok]

    def render(self) -> str:
        """Readable multi-line diff naming every gated metric."""
        head = f"{self.system}/{self.workload}: " + (
            "ok" if self.ok else f"{len(self.failures())} regression(s)"
        )
        lines = [head]
        for f in self.findings:
            if not f.ok:
                lines.append("  " + f.line())
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _exact(report: RegressionReport, metric: str, base, cur,
           note: str = "") -> None:
    report.findings.append(Finding(
        metric=metric, tier=TIER_EXACT, baseline=base, current=cur,
        ok=(base == cur), note=note,
    ))


def compare_records(
    baseline: dict,
    current: dict,
    policy: Optional[RegressionPolicy] = None,
) -> RegressionReport:
    """Gate *current* against *baseline*; returns the full report.

    Both arguments are run records (:mod:`repro.obs.baseline`).  Schema
    problems become failing findings — a malformed or future-schema
    baseline can never silently pass.
    """
    policy = policy or RegressionPolicy()
    policy.validate()
    report = RegressionReport(
        system=current.get("system", "?"),
        workload=current.get("workload", "?"),
    )

    for label, record in (("baseline", baseline), ("current", current)):
        problems = validate_record(record)
        if problems:
            report.findings.append(Finding(
                metric=f"record.{label}", tier=TIER_EXACT,
                baseline=SCHEMA_VERSION,
                current=record.get("schema_version"),
                ok=False, note="; ".join(problems),
            ))
    if not report.ok:
        return report  # cannot meaningfully diff malformed records

    # -- fingerprint -----------------------------------------------------
    base_fp = baseline.get("fingerprint", {})
    cur_fp = current.get("fingerprint", {})
    _exact(report, "fingerprint.config_hash",
           base_fp.get("config_hash"), cur_fp.get("config_hash"),
           note="records compare different configurations"
           if base_fp.get("config_hash") != cur_fp.get("config_hash")
           else "")
    if base_fp.get("code_version") != cur_fp.get("code_version"):
        report.notes.append(
            f"CODE_VERSION drift: baseline recorded at "
            f"{base_fp.get('code_version')}, current is "
            f"{cur_fp.get('code_version')} — counter changes may be "
            f"intentional; re-record the baseline if so"
        )
    if base_fp.get("engine") != cur_fp.get("engine"):
        report.notes.append(
            f"engine differs ({base_fp.get('engine')} -> "
            f"{cur_fp.get('engine')}): deterministic counters must "
            f"still match bit-exact"
        )
    if base_fp.get("git_sha") and cur_fp.get("git_sha") and \
            base_fp["git_sha"] != cur_fp["git_sha"]:
        report.notes.append(
            f"tree moved {base_fp['git_sha']} -> {cur_fp['git_sha']}"
        )

    # -- exact tier: deterministic traffic counters ----------------------
    base_det = baseline.get("deterministic", {})
    cur_det = current.get("deterministic", {})
    for key in DETERMINISTIC_KEYS:
        _exact(report, key, base_det.get(key), cur_det.get(key))
    # Any extra digest keys a newer minor revision added still gate.
    for key in sorted(set(base_det) | set(cur_det)):
        if key not in DETERMINISTIC_KEYS:
            _exact(report, key, base_det.get(key), cur_det.get(key))
    # "link.matrix" is this gate row's label (asserted by tests and
    # shown in reports), not a registry metric.
    # lint: disable=OBS001
    _exact(report, "link.matrix",
           baseline.get("link_matrix"), current.get("link_matrix"),
           note="per-link traffic shape changed"
           if baseline.get("link_matrix") != current.get("link_matrix")
           else "")

    # -- band tier: modelled time and wall throughput --------------------
    if not policy.deterministic_only:
        base_perf = baseline.get("perf", {})
        cur_perf = current.get("perf", {})

        base_t = base_perf.get("modelled_total_s")
        cur_t = cur_perf.get("modelled_total_s")
        if base_t and cur_t is not None:
            rel = abs(cur_t - base_t) / base_t
            report.findings.append(Finding(
                metric="perf.modelled_total_s", tier=TIER_BAND,
                baseline=base_t, current=cur_t,
                ok=rel <= policy.modelled_epsilon,
                note=f"two-sided band ±{policy.modelled_epsilon:g}",
            ))

        base_tp = base_perf.get("accesses_per_s")
        cur_tp = cur_perf.get("accesses_per_s")
        if base_tp and cur_tp is not None:
            floor = base_tp * (1.0 - policy.wall_epsilon)
            report.findings.append(Finding(
                metric="perf.accesses_per_s", tier=TIER_BAND,
                baseline=base_tp, current=cur_tp,
                ok=cur_tp >= floor,
                note=f"one-sided band: fails below "
                     f"{1.0 - policy.wall_epsilon:.0%} of baseline",
            ))
    return report


def summarize_reports(reports: list[RegressionReport]) -> str:
    """One-line-per-point roll-up plus the failing diffs."""
    lines = []
    failed = [r for r in reports if not r.ok]
    for report in reports:
        lines.append(report.render())
    lines.append(
        f"{len(reports) - len(failed)}/{len(reports)} point(s) ok"
        + (f", {len(failed)} FAILED" if failed else "")
    )
    return "\n".join(lines)


__all__ = [
    "Finding",
    "RegressionPolicy",
    "RegressionReport",
    "TIER_BAND",
    "TIER_EXACT",
    "compare_records",
    "summarize_reports",
]
