"""Command-line interface.

Exposes the library's common operations without writing Python:

    python -m repro list                      # the Table II suite
    python -m repro run Lulesh --system carve-hwc
    python -m repro compare Lulesh            # all headline systems
    python -m repro suite carve-hwc --jobs 4  # fault-tolerant batch
    python -m repro trace Lulesh              # Perfetto-loadable trace
    python -m repro sharing XSBench           # Fig. 4-style analysis
    python -m repro configs                   # experiment registry
    python -m repro cache --clear             # simulation result cache
    python -m repro baseline record           # commit run records
    python -m repro baseline compare          # two-tier regression gate
    python -m repro report                    # markdown/HTML dashboard
    python -m repro lint                      # determinism/invariant lint
    python -m repro serve --port 8765         # async job service (HTTP)

``run``, ``suite`` and ``trace`` all accept ``--metrics-out PATH`` to
dump the metric registry (see ``docs/metrics.md``) as JSON; ``trace``
additionally writes Chrome ``trace_event`` JSON for
https://ui.perfetto.dev (see ``docs/observability.md``).  The baseline
store, the regression gate's two tiers, and the report layout are
documented in ``docs/regression.md``.

Exit status: 0 on success, 1 when a batch finished with failed points
(or a baseline comparison found a regression, or ``lint`` found new
findings), 2 on an invalid configuration or a missing baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.bottleneck import analyze, render
from repro.analysis.report import format_table
from repro.analysis.sharing import profile_sharing
from repro.config import ConfigError
from repro.numa.system import ENGINE_REFERENCE, ENGINE_VECTORIZED
from repro.obs import Observability, default_registry
from repro.obs.export import (
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.sim import cache as simcache
from repro.sim import experiments as E
from repro.sim.driver import run_workload, time_of
from repro.sim.runner import RunnerPolicy, default_journal_dir
from repro.workloads import suite
from repro.workloads.base import generate_trace

_HEADLINE = (E.SINGLE_GPU, E.NUMA_GPU, E.NUMA_REPL_RO, E.CARVE_HWC, E.IDEAL)

#: Points covered by ``baseline record``/``compare`` when not narrowed:
#: the CARVE headline system against the NUMA baseline, on two
#: behaviourally different workloads — small enough to re-run in
#: seconds, wide enough to catch traffic-shape drift.
DEFAULT_BASELINE_SYSTEMS = (E.CARVE_HWC, E.NUMA_GPU)
DEFAULT_BASELINE_WORKLOADS = ("Lulesh", "Euler")


def _cmd_list(_args) -> int:
    rows = [
        [s, name, abbr, fp, suite.GROUPS[abbr]]
        for (s, name, abbr, fp) in suite.table2_rows()
    ]
    print(format_table(
        ["suite", "benchmark", "abbr", "footprint", "behaviour group"],
        rows, title="Workload suite (Table II)",
    ))
    return 0


def _cmd_configs(_args) -> int:
    rows = []
    for name, cfg in E.experiment_configs().items():
        rdc = "-" if cfg.rdc is None else (
            f"{cfg.rdc.size_bytes / 2**30:g} GB / {cfg.rdc.coherence}"
        )
        rows.append([
            name, str(cfg.n_gpus), cfg.replication,
            "yes" if cfg.migration else "no", rdc,
        ])
    print(format_table(
        ["config", "GPUs", "replication", "migration", "RDC"],
        rows, title="Experiment configurations",
    ))
    return 0


def _resolve_config(name: str, rdc_gb: Optional[float]):
    rdc_bytes = int(rdc_gb * 2**30) if rdc_gb else 2 * 2**30
    return E.config_for(name, rdc_bytes=rdc_bytes)


def _cmd_run(args) -> int:
    cfg = _resolve_config(args.system, args.rdc_gb)
    obs = Observability() if args.metrics_out else None
    result = run_workload(args.workload, cfg, label=args.system,
                          use_cache=not args.no_cache, obs=obs)
    print(render(analyze(result, cfg)))
    if obs is not None:
        write_metrics_json(
            args.metrics_out, obs,
            extra={"workload": args.workload, "system": args.system},
        )
        print(f"\nmetrics written to {args.metrics_out}")
    return 0


def _cmd_trace(args) -> int:
    """Two modes: assemble a distributed trace from a traced batch's
    artifacts (--job/--journal, docs/tracing.md), or run one workload
    under full observation and export its kernel trace."""
    if args.job or args.batch_journal:
        return _cmd_trace_assemble(args)
    if not args.workload:
        print("repro trace: a workload (or --job/--journal) is required",
              file=sys.stderr)
        return 2
    cfg = _resolve_config(args.system, args.rdc_gb)
    obs = Observability(
        trace=True, ring=args.ring, sample_every=args.sample
    )
    # Tracing requires an actual execution: a disk-cached result would
    # produce an empty trace, so the cache is always bypassed here.
    result = run_workload(args.workload, cfg, label=args.system,
                          use_cache=False, obs=obs)
    out = args.out or f"{args.workload}-{args.system}.trace.json"
    write_chrome_trace(out, result, cfg, obs)
    dropped = obs.tracer.dropped
    print(f"{len(obs.tracer)} event(s) retained"
          + (f", {dropped} dropped (ring full)" if dropped else ""))
    print(f"Chrome trace written to {out} — open at https://ui.perfetto.dev")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            n = write_jsonl(fh, obs, result)
        print(f"{n} JSONL record(s) written to {args.jsonl}")
    if args.metrics_out:
        write_metrics_json(
            args.metrics_out, obs,
            extra={"workload": args.workload, "system": args.system},
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_trace_assemble(args) -> int:
    """Merge journal + span spills into one Perfetto timeline."""
    from repro.obs.assemble import assemble_trace, write_trace

    if args.batch_journal:
        journal = Path(args.batch_journal)
    else:
        # A job id is job-NNNN-<key prefix>; its journal lives in the
        # serve store under the full CAS key.
        prefix = args.job.rsplit("-", 1)[-1] if args.job.startswith("job-") \
            else args.job
        matches = sorted(
            Path(args.store).glob(f"journals/{prefix}*.jsonl")
        )
        if len(matches) != 1:
            found = ", ".join(p.stem for p in matches) or "none"
            print(f"repro trace: {len(matches)} journal(s) match job "
                  f"{args.job!r} under {args.store} (found: {found})",
                  file=sys.stderr)
            return 1
        journal = matches[0]
    if not journal.exists():
        print(f"repro trace: no journal at {journal}", file=sys.stderr)
        return 1
    doc = assemble_trace(journal, title=args.job or journal.stem)
    out = args.out or f"{journal.stem}.trace.json"
    write_trace(out, doc)
    meta = doc["otherData"]
    print(f"{meta['spans']} span(s) assembled from {journal} "
          f"(trace {meta['trace_id'] or '<none>'}, "
          f"{meta['unfinished_spans']} unfinished, "
          f"{meta['damaged_span_records']} damaged)")
    print(f"Perfetto trace written to {out} — open at "
          f"https://ui.perfetto.dev")
    return 0


def _cmd_compare(args) -> int:
    rows = []
    t_single = None
    for name in _HEADLINE:
        cfg = _resolve_config(name, args.rdc_gb)
        r = run_workload(args.workload, cfg, label=name,
                         use_cache=not args.no_cache)
        t = time_of(r, cfg)
        if name == E.SINGLE_GPU:
            t_single = t
        speedup = "-" if t_single is None else f"{t_single / t:.2f}x"
        rows.append([name, speedup, f"{r.remote_fraction:.1%}",
                     f"{r.replication_pressure:.2f}x"])
    print(format_table(
        ["system", "speedup vs 1 GPU", "remote accesses", "memory pressure"],
        rows, title=f"{args.workload} across the headline systems",
    ))
    return 0


def _cmd_suite(args) -> int:
    """Run one configuration across workloads via the fault-tolerant
    runner; exits 1 when any point ultimately fails so scripts and CI
    can observe partial batches."""
    journal = args.journal or str(
        default_journal_dir() / f"suite-{args.system}.jsonl"
    )
    policy = RunnerPolicy(
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        keep_going=args.keep_going,
        journal_path=journal,
        resume=args.resume,
        pin=args.pin,
        fsync_journal=args.fsync_journal,
    )
    rdc_bytes = int(args.rdc_gb * 2**30) if args.rdc_gb else 2 * 2**30
    registry = default_registry() if args.metrics_out else None
    trace_ctx = None
    if args.trace:
        from repro.obs.trace import TraceContext, spans_dir_for

        trace_ctx = TraceContext.mint()
    run = E.run_suite(
        args.system,
        workloads=args.workloads,
        rdc_bytes=rdc_bytes,
        use_cache=not args.no_cache,
        runner=policy,
        registry=registry,
        trace=trace_ctx,
    )
    rows = []
    for abbr in (args.workloads or suite.all_abbrs()):
        if abbr in run.results:
            rows.append([abbr, f"{run.time_s(abbr):.4g} s", "ok"])
        elif abbr in run.failures:
            f = run.failures[abbr]
            rows.append([abbr, "-", f"{f.kind} x{f.attempts}"])
        else:
            rows.append([abbr, "-", "cancelled"])
    print(format_table(
        ["workload", "time", "status"],
        rows, title=f"{args.system} suite (journal: {journal})",
    ))
    if trace_ctx is not None:
        print(f"trace {trace_ctx.trace_id}: spans spilled to "
              f"{spans_dir_for(journal)}; assemble with "
              f"`python -m repro trace --journal {journal}`")
    if registry is not None:
        from repro.obs.summary import summarize_result

        write_metrics_json(
            args.metrics_out, registry,
            extra={
                "system": args.system,
                "workloads": {
                    abbr: summarize_result(r)
                    for abbr, r in run.results.items()
                },
            },
        )
        print(f"metrics written to {args.metrics_out}")
    if not run.ok:
        print(f"\n{len(run.failures)} failed, {len(run.cancelled)} "
              f"cancelled point(s):", file=sys.stderr)
        print(run.failure_summary(), file=sys.stderr)
        print("re-run with --resume to retry only the failed points",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    """Run the seeded crash drill (docs/chaos.md): a fault-free serial
    reference sweep, then the same sweep under a chaos plan with the
    batch SIGKILLed between --resume rounds, then invariant checks
    (byte-identical results, terminal journal, no orphans).  Exits 1
    when any invariant is violated."""
    import shutil
    import tempfile

    from repro.sim.chaos import DRILL_WORKLOADS, run_drill

    explicit_dir = args.dir is not None
    root = (
        Path(args.dir) if explicit_dir
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    )
    report = run_drill(
        root,
        seed=args.seed,
        system=args.system,
        workloads=args.workloads or DRILL_WORKLOADS,
        rounds=args.rounds,
        jobs=args.jobs,
        pin=args.pin,
        trace=not args.no_trace,
    )
    print(report.render())
    if report.ok and not explicit_dir:
        shutil.rmtree(root, ignore_errors=True)
    elif not report.ok:
        print(f"\ndrill workspace kept for inspection: {root}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_sharing(args) -> int:
    cfg = E.config_for(E.NUMA_GPU)
    spec = suite.get(args.workload)
    profile = profile_sharing(generate_trace(spec, cfg), cfg)
    page = profile.access_distribution("page")
    line = profile.access_distribution("line")
    print(format_table(
        ["granularity", "private", "ro-shared", "rw-shared"],
        [
            ["2 MB page", f"{page.private:.1%}", f"{page.ro_shared:.1%}",
             f"{page.rw_shared:.1%}"],
            ["128 B line", f"{line.private:.1%}", f"{line.ro_shared:.1%}",
             f"{line.rw_shared:.1%}"],
        ],
        title=f"{args.workload}: access distribution (Fig. 4 analysis)",
    ))
    fp = profile.shared_footprint_bytes()
    print(f"\nshared working-set cover: {fp / 2**30:.2f} GB "
          f"(aggregate LLC: {cfg.total_llc_bytes / 2**20:.0f} MB)")
    return 0


def _cmd_baseline(args) -> int:
    """Record, compare, or list the committed baseline store."""
    from repro.obs.baseline import (
        BaselineStore,
        collect_run_record,
        store_points,
    )
    from repro.obs.regress import (
        RegressionPolicy,
        compare_records,
        summarize_reports,
    )

    store = BaselineStore(args.dir)

    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"baseline store {store.root} is empty")
            return 0
        rows = []
        for e in entries:
            fp = e.record.get("fingerprint", {})
            det = e.record.get("deterministic", {})
            rows.append([
                e.system, e.workload,
                str(fp.get("code_version", "-")),
                fp.get("git_sha") or "-",
                fp.get("engine", "-"),
                f"{det.get('sim.accesses', 0):,}",
            ])
        print(format_table(
            ["system", "workload", "code ver", "git sha", "engine",
             "accesses"],
            rows, title=f"baseline store ({store.root})",
        ))
        return 0

    rdc_bytes = int(args.rdc_gb * 2**30) if args.rdc_gb else 2 * 2**30
    points = store_points(store, args.systems, args.workloads)

    if args.action == "record":
        for system, workload in points:
            cfg = E.config_for(system, rdc_bytes=rdc_bytes)
            record = collect_run_record(
                workload, system, cfg,
                engine=args.engine, repeats=args.repeats,
            )
            path = store.save(record)
            det = record["deterministic"]
            print(f"recorded {system}/{workload} -> {path} "
                  f"(accesses={det['sim.accesses']:,}, "
                  f"rdc.hit={det['rdc.hit']:,})")
        return 0

    # compare: re-run every point and gate it against the store.
    policy = RegressionPolicy(
        wall_epsilon=args.wall_epsilon,
        deterministic_only=args.deterministic_only,
    )
    reports = []
    missing = []
    for system, workload in points:
        baseline = store.load(system, workload)
        if baseline is None:
            missing.append(f"{system}/{workload}")
            continue
        cfg = E.config_for(system, rdc_bytes=rdc_bytes)
        current = collect_run_record(
            workload, system, cfg,
            engine=args.engine, repeats=args.repeats,
        )
        reports.append(compare_records(baseline, current, policy))
    if reports:
        print(summarize_reports(reports))
    if args.report:
        from repro.obs.report import comparison_markdown

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(comparison_markdown(reports) + "\n")
        print(f"comparison report written to {args.report}")
    if missing:
        print(
            f"no baseline recorded for: {', '.join(missing)} "
            f"(run `python -m repro baseline record` first)",
            file=sys.stderr,
        )
        return 2
    return 0 if all(r.ok for r in reports) else 1


def _cmd_report(args) -> int:
    """Aggregate journals + metrics dumps into the markdown dashboard."""
    from pathlib import Path

    from repro.obs.report import build_report, markdown_to_html

    journals = args.journal or sorted(
        str(p) for p in default_journal_dir().glob("*.jsonl")
    )
    bench = args.bench or sorted(
        str(p) for p in Path(".").glob("BENCH_*.json")
    )
    md = build_report(
        journal_paths=journals,
        metrics_paths=args.metrics or (),
        bench_paths=bench,
    )
    Path(args.out).write_text(md, encoding="utf-8")
    print(f"report written to {args.out} "
          f"({len(journals)} journal(s), {len(args.metrics or ())} "
          f"metrics dump(s), {len(bench)} bench payload(s))")
    if args.html:
        Path(args.html).write_text(markdown_to_html(md), encoding="utf-8")
        print(f"HTML report written to {args.html}")
    return 0


def _cmd_lint(args) -> int:
    """Run the determinism/invariant linter (docs/lint.md)."""
    import json
    import os
    from pathlib import Path

    from repro.lint import (
        SCOPE_FILE,
        LintConfigError,
        discover_repo_root,
        run_lint,
        save_baseline,
        save_scope,
    )

    root = Path(args.root) if args.root is not None \
        else discover_repo_root(Path(args.path))
    baseline = args.baseline
    if baseline is None and not args.update_baseline:
        default = root / "lint-baseline.json"
        if default.exists():
            baseline = str(default)
    cache_dir = args.cache_dir or os.environ.get("REPRO_LINT_CACHE") \
        or str(root / ".lint-cache")
    if cache_dir == "none":
        cache_dir = None
    explain = None
    if args.explain is not None:
        parts = args.explain.rsplit(":", 2)
        if len(parts) != 3 or not parts[2].isdigit():
            print("error: --explain expects ID:PATH:LINE "
                  "(e.g. DET004:src/repro/sim/cache.py:39)",
                  file=sys.stderr)
            return 2
        explain = (parts[0], parts[1], int(parts[2]))
    try:
        result = run_lint(
            args.path,
            select=args.select,
            ignore=args.ignore,
            baseline_path=baseline,
            repo_root=root,
            ver_base=args.ver_base,
            cache_dir=cache_dir,
            need_graph=bool(args.graph_out or args.update_scope),
        )
    except LintConfigError as exc:
        print(f"error: invalid lint configuration: {exc}",
              file=sys.stderr)
        return 2
    if args.graph_out and result.graph is not None:
        out = Path(args.graph_out)
        if out.suffix == ".dot":
            out.write_text(result.graph.to_dot(), encoding="utf-8")
        else:
            out.write_text(
                json.dumps(result.graph.to_json(), indent=2,
                           sort_keys=True) + "\n",
                encoding="utf-8",
            )
        print(f"call graph written to {out} "
              f"({result.graph.stats()['functions']} function(s))")
    if args.update_scope:
        target = root / SCOPE_FILE
        save_scope(target, result.scope_doc)
        n = len(result.scope_doc["modules"])
        print(f"derived scope written to {target} "
              f"({n} result-affecting module(s))")
        return 0
    if args.update_baseline:
        target = args.baseline or str(root / "lint-baseline.json")
        n = save_baseline(target, result.findings)
        print(f"baseline written to {target} "
              f"({n} grandfathered finding key(s))")
        return 0
    if explain is not None:
        rendered = result.explain(*explain)
        if rendered is None:
            print(f"no finding matches {args.explain}",
                  file=sys.stderr)
            return 1
        print(rendered)
        return 0
    print(result.render(args.format))
    return result.exit_code


def _cmd_serve(args) -> int:
    """Run the async job service until interrupted (docs/serve.md)."""
    import asyncio

    from repro.serve.service import serve

    print(f"repro serve listening on http://{args.host}:{args.port} "
          f"(pool jobs: {args.jobs}, queue depth: {args.queue_depth}, "
          f"store: {args.store})")
    try:
        asyncio.run(serve(
            args.host, args.port,
            store_dir=args.store,
            pool_jobs=args.jobs,
            queue_depth=args.queue_depth,
            store_max_bytes=args.store_max_bytes,
            pool_pin=args.pin,
        ))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def _cmd_cache(args) -> int:
    if args.clear:
        n = simcache.clear()
        print(f"removed {n} cached run(s)")
    else:
        d = simcache.cache_dir()
        entries = list(d.glob("*.pkl")) if d.exists() else []
        total = sum(p.stat().st_size for p in entries)
        print(f"{len(entries)} cached run(s), {total / 2**20:.1f} MiB in {d}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CARVE multi-GPU NUMA simulator (MICRO 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(
        fn=_cmd_list
    )
    sub.add_parser("configs", help="list experiment configs").set_defaults(
        fn=_cmd_configs
    )

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", choices=suite.all_abbrs())
    run_p.add_argument("--system", default=E.CARVE_HWC,
                       choices=sorted(E.experiment_configs()))
    run_p.add_argument("--rdc-gb", type=float, default=None,
                       help="RDC size per GPU in GB (CARVE systems)")
    run_p.add_argument("--no-cache", action="store_true")
    run_p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metric registry (docs/metrics.md) "
                            "as JSON")
    run_p.set_defaults(fn=_cmd_run)

    trace_p = sub.add_parser(
        "trace",
        help="assemble a batch's distributed trace (--job/--journal), "
             "or run one workload with tracing on; either way the "
             "output is a Perfetto-loadable Chrome trace",
    )
    trace_p.add_argument("workload", nargs="?", default=None,
                         choices=suite.all_abbrs())
    trace_p.add_argument("--job", default=None, metavar="ID",
                         help="assemble the timeline of one serve job "
                              "(by job id or CAS key prefix) from "
                              "--store")
    trace_p.add_argument("--store", default=".repro-serve", metavar="DIR",
                         help="serve store to resolve --job against "
                              "(default: .repro-serve)")
    trace_p.add_argument("--journal", dest="batch_journal", default=None,
                         metavar="PATH",
                         help="assemble the timeline of a suite batch "
                              "from its journal (spans are found next "
                              "to it)")
    trace_p.add_argument("--system", default=E.CARVE_HWC,
                         choices=sorted(E.experiment_configs()))
    trace_p.add_argument("--rdc-gb", type=float, default=None,
                         help="RDC size per GPU in GB (CARVE systems)")
    trace_p.add_argument("--out", default=None, metavar="PATH",
                         help="Chrome trace path (default: "
                              "<workload>-<system>.trace.json)")
    trace_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also dump events + metrics as JSON Lines")
    trace_p.add_argument("--ring", type=int, default=65_536, metavar="N",
                         help="tracer ring-buffer capacity (events)")
    trace_p.add_argument("--sample", type=int, default=1, metavar="N",
                         help="keep every Nth occurrence of each event "
                              "kind (1 = all)")
    trace_p.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="also write the metric registry "
                              "(docs/metrics.md) as JSON")
    trace_p.set_defaults(fn=_cmd_trace)

    cmp_p = sub.add_parser("compare", help="compare the headline systems")
    cmp_p.add_argument("workload", choices=suite.all_abbrs())
    cmp_p.add_argument("--rdc-gb", type=float, default=None)
    cmp_p.add_argument("--no-cache", action="store_true")
    cmp_p.set_defaults(fn=_cmd_compare)

    suite_p = sub.add_parser(
        "suite",
        help="run one config across workloads (fault-tolerant batch)",
    )
    suite_p.add_argument("system", choices=sorted(E.experiment_configs()))
    suite_p.add_argument("--workloads", nargs="+",
                         choices=suite.all_abbrs(), default=None,
                         help="subset of the suite (default: all)")
    suite_p.add_argument("--rdc-gb", type=float, default=None)
    suite_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="persistent pool workers (1 = serial "
                              "in-process)")
    suite_p.add_argument("--pin", action="store_true",
                         help="pin pool workers round-robin across NUMA "
                              "nodes with per-worker CPU affinity "
                              "(no-op where unsupported)")
    suite_p.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-point wall-clock budget")
    suite_p.add_argument("--retries", type=int, default=0,
                         help="retries per point (exponential backoff)")
    going = suite_p.add_mutually_exclusive_group()
    going.add_argument("--keep-going", dest="keep_going",
                       action="store_true", default=True,
                       help="record failures and continue (default)")
    going.add_argument("--fail-fast", dest="keep_going",
                       action="store_false",
                       help="abort the batch on the first final failure")
    suite_p.add_argument("--journal", default=None, metavar="PATH",
                         help="JSONL execution journal (default: "
                              ".repro-journal/suite-<system>.jsonl)")
    suite_p.add_argument("--fsync-journal", action="store_true",
                         help="fsync every journal append and sidecar "
                              "store (power-loss durability; slower)")
    suite_p.add_argument("--resume", action="store_true",
                         help="skip points the journal records as done")
    suite_p.add_argument("--no-cache", action="store_true")
    suite_p.add_argument("--trace", action="store_true",
                         help="mint a distributed-trace context and "
                              "spill spans next to the journal "
                              "(docs/tracing.md); results are "
                              "byte-identical either way")
    suite_p.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write runner counters + per-workload metric "
                              "summaries as JSON")
    suite_p.set_defaults(fn=_cmd_suite)

    chaos_p = sub.add_parser(
        "chaos",
        help="seeded crash drill: sweep under a fault plan, kill and "
             "resume repeatedly, assert byte-identical convergence "
             "(docs/chaos.md)",
    )
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="chaos plan seed (same seed = same fault "
                              "schedule)")
    chaos_p.add_argument("--system", default=E.NUMA_GPU,
                         choices=sorted(E.experiment_configs()))
    chaos_p.add_argument("--workloads", nargs="+",
                         choices=suite.all_abbrs(), default=None,
                         help="suite slice to drill "
                              "(default: Lulesh Euler CoMD MCB)")
    chaos_p.add_argument("--rounds", type=int, default=3, metavar="N",
                         help="chaos rounds; all but the last are "
                              "SIGKILLed mid-batch (default: 3)")
    chaos_p.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="worker processes for the chaos rounds "
                              "(default: 2; 1 drills the inline path)")
    chaos_p.add_argument("--pin", action="store_true",
                         help="NUMA-pin the chaos rounds' pool workers")
    chaos_p.add_argument("--no-trace", action="store_true",
                         help="run the chaos rounds without span tracing "
                              "(disables the flight recorder)")
    chaos_p.add_argument("--dir", default=None, metavar="DIR",
                         help="drill workspace (kept afterwards; default: "
                              "a tmp dir, removed when the drill passes)")
    chaos_p.set_defaults(fn=_cmd_chaos)

    sh_p = sub.add_parser("sharing", help="page/line sharing analysis")
    sh_p.add_argument("workload", choices=suite.all_abbrs())
    sh_p.set_defaults(fn=_cmd_sharing)

    cache_p = sub.add_parser("cache", help="inspect/clear the result cache")
    cache_p.add_argument("--clear", action="store_true")
    cache_p.set_defaults(fn=_cmd_cache)

    base_p = sub.add_parser(
        "baseline",
        help="record/compare/list the committed run-record baseline "
             "store (docs/regression.md)",
    )
    base_p.add_argument("action", choices=("record", "compare", "list"))
    base_p.add_argument("--dir", default="baselines", metavar="DIR",
                        help="baseline store root (default: baselines/)")
    base_p.add_argument("--systems", nargs="+",
                        choices=sorted(E.experiment_configs()),
                        default=list(DEFAULT_BASELINE_SYSTEMS),
                        help="systems to record/compare "
                             "(default: carve-hwc numa-gpu)")
    base_p.add_argument("--workloads", nargs="+",
                        choices=suite.all_abbrs(),
                        default=list(DEFAULT_BASELINE_WORKLOADS),
                        help="workloads to record/compare "
                             "(default: Lulesh Euler)")
    base_p.add_argument("--engine", default=ENGINE_VECTORIZED,
                        choices=(ENGINE_VECTORIZED, ENGINE_REFERENCE),
                        help="execution engine; deterministic counters "
                             "must be bit-exact across engines")
    base_p.add_argument("--rdc-gb", type=float, default=None,
                        help="RDC size per GPU in GB (CARVE systems)")
    base_p.add_argument("--repeats", type=int, default=2, metavar="N",
                        help="wall-time repeats per point (best-of-N)")
    base_p.add_argument("--wall-epsilon", type=float, default=0.5,
                        metavar="FRACTION",
                        help="tolerated relative wall-throughput loss "
                             "before the band tier fails (compare)")
    base_p.add_argument("--deterministic-only", action="store_true",
                        help="gate only bit-exact traffic counters "
                             "(CI mode: immune to machine noise)")
    base_p.add_argument("--report", default=None, metavar="PATH",
                        help="write the comparison as markdown (compare)")
    base_p.set_defaults(fn=_cmd_baseline)

    lint_p = sub.add_parser(
        "lint",
        help="determinism & invariant lint over src/repro "
             "(docs/lint.md)",
    )
    lint_p.add_argument("path", nargs="?", default="src/repro",
                        help="scan root (default: src/repro)")
    lint_p.add_argument("--root", default=None, metavar="DIR",
                        help="repository root: path display anchor, "
                             "default baseline/scope location and "
                             "VER001 git anchor (default: "
                             "auto-discovered from the scan root)")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default: text)")
    lint_p.add_argument("--baseline", default=None, metavar="PATH",
                        help="grandfathered-findings store (default: "
                             "<root>/lint-baseline.json when present)")
    lint_p.add_argument("--update-baseline", action="store_true",
                        help="record current findings as the baseline "
                             "and exit 0")
    lint_p.add_argument("--select", nargs="+", default=None,
                        metavar="ID",
                        help="run only these rule ids (VER001 is "
                             "CI-only and must be selected explicitly)")
    lint_p.add_argument("--ignore", nargs="+", default=None,
                        metavar="ID",
                        help="skip these rule ids")
    lint_p.add_argument("--ver-base", default=None, metavar="REF",
                        help="merge-base ref for VER001 (default: try "
                             "origin/main then main, skipping with a "
                             "notice when neither resolves; an "
                             "explicit ref that fails is exit 2)")
    lint_p.add_argument("--graph-out", default=None, metavar="PATH",
                        help="dump the cross-module call graph "
                             "(.dot -> Graphviz, anything else -> "
                             "JSON) and continue")
    lint_p.add_argument("--explain", default=None,
                        metavar="ID:PATH:LINE",
                        help="print the source->sink call chain of "
                             "the finding at ID:PATH:LINE and exit "
                             "(e.g. DET004:src/repro/sim/cache.py:39)")
    lint_p.add_argument("--update-scope", action="store_true",
                        help="derive the result-affecting scope and "
                             "write <root>/lint-scope.json, then "
                             "exit 0")
    lint_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="call-graph cache directory (default: "
                             "$REPRO_LINT_CACHE or <root>/.lint-cache;"
                             " 'none' disables)")
    lint_p.set_defaults(fn=_cmd_lint)

    serve_p = sub.add_parser(
        "serve",
        help="run the async job service: HTTP submit/status/result/"
             "report over the worker-pool fabric (docs/serve.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="bind port, 0 for ephemeral "
                              "(default: 8765)")
    serve_p.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="worker-pool width per job; 1 runs "
                              "in-process (default: 2)")
    serve_p.add_argument("--queue-depth", type=int, default=8,
                         metavar="N",
                         help="bounded submission queue depth; a full "
                              "queue answers 429 + Retry-After "
                              "(default: 8)")
    serve_p.add_argument("--store", default=".repro-serve",
                         metavar="DIR",
                         help="content-addressed result store + "
                              "per-job journals (default: .repro-serve)")
    serve_p.add_argument("--store-max-bytes", type=int, default=None,
                         metavar="N",
                         help="bound the store; least-recently-used "
                              "entries (result + journal + spans) are "
                              "evicted past N bytes (default: unbounded)")
    serve_p.add_argument("--pin", action="store_true",
                         help="NUMA-pin the simulator pool workers")
    serve_p.set_defaults(fn=_cmd_serve)

    report_p = sub.add_parser(
        "report",
        help="aggregate journals/metrics/bench payloads into a "
             "markdown (+HTML) dashboard",
    )
    report_p.add_argument("--journal", nargs="+", default=None,
                          metavar="PATH",
                          help="runner journal(s) (default: every "
                               ".jsonl under .repro-journal/)")
    report_p.add_argument("--metrics", nargs="+", default=None,
                          metavar="PATH",
                          help="--metrics-out JSON dump(s) to render "
                               "link-traffic matrices from")
    report_p.add_argument("--bench", nargs="+", default=None,
                          metavar="PATH",
                          help="stamped BENCH_*.json payload(s) "
                               "(default: BENCH_*.json in the cwd)")
    report_p.add_argument("--out", default="report.md", metavar="PATH",
                          help="markdown output path (default: report.md)")
    report_p.add_argument("--html", default=None, metavar="PATH",
                          help="also render a standalone HTML page")
    report_p.set_defaults(fn=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        # One clear line naming the offending field, before (not during)
        # any simulation.
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
