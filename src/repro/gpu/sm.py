"""Streaming Multiprocessor compute model.

The paper simulates 64 SMs per GPU, 64 warps each, with a warp scheduler
issuing one warp instruction per SM per cycle.  For a trace-driven memory
study the compute side only needs to set the compute roofline and the
latency-hiding capacity, so the model is aggregate:

* peak throughput = ``n_sms * ipc_per_sm * freq_hz`` warp instr/s;
* latency hiding  = the number of outstanding memory requests the GPU can
  sustain, capped by warp occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GpuConfig


@dataclass(frozen=True)
class ComputeModel:
    """Converts instruction counts into execution time for one GPU."""

    config: GpuConfig

    @property
    def peak_instr_per_s(self) -> float:
        c = self.config
        return c.n_sms * c.ipc_per_sm * c.freq_hz

    def compute_time_s(self, warp_instructions: float) -> float:
        """Time to execute *warp_instructions* at peak issue rate."""
        if warp_instructions < 0:
            raise ValueError("instruction count cannot be negative")
        return warp_instructions / self.peak_instr_per_s

    def concurrency(self, per_sm_requests: float) -> float:
        """Outstanding memory requests the GPU sustains for a kernel.

        *per_sm_requests* is the kernel's memory-level parallelism per SM,
        bounded above by one request per resident warp.
        """
        if per_sm_requests <= 0:
            raise ValueError("per-SM concurrency must be positive")
        per_sm = min(per_sm_requests, float(self.config.warps_per_sm))
        return per_sm * self.config.n_sms

    def occupancy(self, warps_per_cta: int, ctas_resident: int) -> float:
        """Fraction of warp slots filled (diagnostic, not on the hot path)."""
        if warps_per_cta <= 0 or ctas_resident < 0:
            raise ValueError("occupancy inputs must be non-negative/positive")
        resident = warps_per_cta * ctas_resident
        capacity = self.config.n_sms * self.config.warps_per_sm
        return min(1.0, resident / capacity)
