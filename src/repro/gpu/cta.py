"""Kernel and CTA (Cooperative Thread Array) abstractions.

A workload is a sequence of kernels.  Each kernel launches a grid of CTAs;
each CTA issues a stream of line-granularity memory accesses.  Traces are
held as NumPy arrays in CTA-program order, and the scheduler decides which
GPU executes which CTA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


@dataclass
class KernelTrace:
    """The memory trace of one kernel launch.

    Arrays are parallel and ordered by issue within each CTA; accesses of
    different CTAs may be freely interleaved by the execution model.
    """

    kernel_id: int
    n_ctas: int
    #: CTA issuing each access.
    cta_ids: np.ndarray
    #: Global line number of each access.
    lines: np.ndarray
    #: Write flag of each access.
    is_write: np.ndarray
    #: Average warp instructions executed per memory access (compute
    #: intensity; higher means more compute-bound).
    instr_per_access: float = 10.0
    #: Outstanding memory requests per SM this kernel can sustain (memory
    #: level parallelism; low values make the kernel latency-sensitive).
    concurrency_per_sm: float = 32.0
    #: Stream the kernel was launched on (for per-stream epoch counters).
    stream: int = 0
    #: Warmup kernels are executed (they warm caches, map pages, train
    #: predictors) but excluded from reported statistics and timing, the
    #: usual architecture-simulation practice for short traces.
    warmup: bool = False

    def __post_init__(self) -> None:
        self.cta_ids = np.asarray(self.cta_ids, dtype=np.int32)
        self.lines = np.asarray(self.lines, dtype=np.int64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        n = len(self.lines)
        if len(self.cta_ids) != n or len(self.is_write) != n:
            raise ValueError("kernel trace arrays must have equal length")
        if self.n_ctas <= 0:
            raise ValueError("kernel must launch at least one CTA")
        if n and int(self.cta_ids.max()) >= self.n_ctas:
            raise ValueError("cta_ids reference CTAs beyond the grid")
        if self.instr_per_access <= 0:
            raise ValueError("instr_per_access must be positive")
        if self.concurrency_per_sm <= 0:
            raise ValueError("concurrency_per_sm must be positive")

    @property
    def n_accesses(self) -> int:
        return len(self.lines)

    @property
    def n_writes(self) -> int:
        return int(self.is_write.sum())

    @property
    def total_instructions(self) -> float:
        return self.n_accesses * self.instr_per_access

    def footprint_lines(self) -> int:
        """Number of distinct lines the kernel touches."""
        if not self.n_accesses:
            return 0
        return len(np.unique(self.lines))


@dataclass
class WorkloadTrace:
    """A full application: an ordered sequence of kernel launches."""

    name: str
    kernels: list[KernelTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"workload {self.name!r} has no kernels")

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    @property
    def n_accesses(self) -> int:
        return sum(k.n_accesses for k in self.kernels)

    def footprint_lines(self) -> int:
        if not self.kernels:
            return 0
        all_lines = np.concatenate([k.lines for k in self.kernels])
        return len(np.unique(all_lines))

    def __iter__(self) -> Iterable[KernelTrace]:
        return iter(self.kernels)
