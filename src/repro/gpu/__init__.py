"""gpu subpackage of the CARVE reproduction."""
