"""CTA scheduling across the GPUs of a NUMA multi-GPU.

NUMA-GPU (Milic et al., MICRO'17) observes that adjacent CTAs share data,
so it assigns a *contiguous batch* of CTAs to each GPU; combined with
first-touch page placement, a CTA batch's private data lands in its own
GPU's memory.  A locality-oblivious round-robin scheduler is provided as
an ablation.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    SCHEDULE_CONTIGUOUS,
    SCHEDULE_ROUND_ROBIN,
    SystemConfig,
)
from repro.gpu.cta import KernelTrace


def assign_ctas(kernel: KernelTrace, n_gpus: int, policy: str) -> np.ndarray:
    """Map each CTA of *kernel* to a GPU; returns an int array per CTA."""
    ctas = np.arange(kernel.n_ctas, dtype=np.int64)
    if policy == SCHEDULE_CONTIGUOUS:
        # Equal contiguous slices: CTA c goes to floor(c * n_gpus / n_ctas).
        return (ctas * n_gpus // kernel.n_ctas).astype(np.int32)
    if policy == SCHEDULE_ROUND_ROBIN:
        return (ctas % n_gpus).astype(np.int32)
    raise ValueError(f"unknown scheduling policy {policy!r}")


def split_kernel_by_gpu(
    kernel: KernelTrace, n_gpus: int, policy: str
) -> list[dict]:
    """Partition a kernel trace into per-GPU access streams.

    Returns one dict per GPU with keys ``lines``, ``is_write`` (NumPy
    arrays in issue order) and ``n_accesses``.  CTA-program order is
    preserved within each GPU.
    """
    cta_to_gpu = assign_ctas(kernel, n_gpus, policy)
    access_gpu = cta_to_gpu[kernel.cta_ids]
    # One stable sort + two gathers instead of n_gpus boolean-mask passes
    # over the whole trace; stability preserves CTA-program order per GPU.
    order = np.argsort(access_gpu, kind="stable")
    lines_sorted = kernel.lines[order]
    writes_sorted = kernel.is_write[order]
    bounds = np.searchsorted(access_gpu[order], np.arange(n_gpus + 1))
    streams = []
    for g in range(n_gpus):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        streams.append(
            {
                "lines": lines_sorted[lo:hi],
                "is_write": writes_sorted[lo:hi],
                "n_accesses": hi - lo,
            }
        )
    return streams


def interleave_streams(
    streams: list[dict], chunk: int
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Round-robin chunks of the per-GPU streams to emulate concurrency.

    The GPUs of a kernel execute simultaneously; coherence-visible events
    (writes that invalidate peer caches) must therefore be observed in a
    plausibly interleaved global order rather than GPU-after-GPU.  Chunked
    round-robin is a standard trace-simulation approximation.

    Yields ``(gpu, lines, is_write)`` slices.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    counts = [s["n_accesses"] for s in streams]
    n_rounds = (max(counts, default=0) + chunk - 1) // chunk
    out: list[tuple[int, np.ndarray, np.ndarray]] = []
    for r in range(n_rounds):
        start = r * chunk
        for g, s in enumerate(streams):
            stop = min(start + chunk, counts[g])
            if start < stop:
                out.append((g, s["lines"][start:stop], s["is_write"][start:stop]))
    return out


def schedule_kernel(
    kernel: KernelTrace, config: SystemConfig
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Full scheduling pipeline: CTA assignment + chunked interleaving."""
    streams = split_kernel_by_gpu(kernel, config.n_gpus, config.scheduling)
    return interleave_streams(streams, config.interleave_chunk)
