"""Named experiment configurations and figure-level computations.

Every configuration the paper evaluates is defined here once, and each
figure/table has a function that produces exactly the numbers the paper
plots.  The benchmark scripts under ``benchmarks/`` call these and print
the rows; examples call them interactively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    ConfigError,
    REPLICATE_ALL,
    REPLICATE_READ_ONLY,
    SystemConfig,
    baseline_config,
)
from repro.numa.unified_memory import assess_capacity_loss
from repro.perf.model import PerformanceModel, geometric_mean
from repro.perf.stats import RunResult
from repro.sim.driver import run_workload, time_of
from repro.sim.runner import (
    FailureReport,
    RunnerPolicy,
    Task,
    config_hash,
    run_tasks,
)
from repro.sim.sweep import simulate_point
from repro.workloads import suite

GB = 2**30

# ---------------------------------------------------------------------------
# Configuration registry
# ---------------------------------------------------------------------------

#: Configuration names used throughout the benchmarks and examples.
SINGLE_GPU = "single-gpu"
NUMA_GPU = "numa-gpu"
NUMA_MIGRATION = "numa-gpu+migration"
NUMA_REPL_RO = "numa-gpu+repl-ro"
IDEAL = "ideal"
CARVE_NOC = "carve-no-coherence"
CARVE_SWC = "carve-swc"
CARVE_HWC = "carve-hwc"


def experiment_configs(
    base: Optional[SystemConfig] = None,
    rdc_bytes: int = 2 * GB,
) -> dict[str, SystemConfig]:
    """The full set of systems evaluated by the paper."""
    base = base or baseline_config()
    return {
        SINGLE_GPU: base.single_gpu(),
        NUMA_GPU: base,
        NUMA_MIGRATION: base.replace(migration=True),
        NUMA_REPL_RO: base.replace(replication=REPLICATE_READ_ONLY),
        IDEAL: base.replace(replication=REPLICATE_ALL),
        CARVE_NOC: base.with_rdc(rdc_bytes, coherence=COHERENCE_NONE),
        CARVE_SWC: base.with_rdc(rdc_bytes, coherence=COHERENCE_SOFTWARE),
        CARVE_HWC: base.with_rdc(rdc_bytes, coherence=COHERENCE_HARDWARE),
    }


def config_for(name: str, base: Optional[SystemConfig] = None,
               rdc_bytes: int = 2 * GB) -> SystemConfig:
    configs = experiment_configs(base, rdc_bytes)
    try:
        cfg = configs[name]
    except KeyError:
        raise KeyError(f"unknown experiment config {name!r}; "
                       f"known: {sorted(configs)}") from None
    # Validate at the entry point so a bad base config (or absurd RDC
    # size) fails with a clear field-naming error before any simulation
    # starts, not deep inside the first run.
    try:
        cfg.validate()
    except ConfigError as exc:
        raise ConfigError(
            f"experiment config {name!r} is invalid: {exc}"
        ) from exc
    return cfg


# ---------------------------------------------------------------------------
# Suite execution helpers
# ---------------------------------------------------------------------------

@dataclass
class SuiteRun:
    """Results of one configuration across (part of) the suite."""

    config_name: str
    config: SystemConfig
    results: dict[str, RunResult] = field(default_factory=dict)
    #: Workloads that ultimately failed under the fault-tolerant runner.
    failures: dict[str, FailureReport] = field(default_factory=dict)
    #: Workloads never run because a fail-fast runner aborted the batch.
    cancelled: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every requested workload produced a result."""
        return not self.failures and not self.cancelled

    def failure_summary(self) -> str:
        lines = [r.summary() for r in self.failures.values()]
        lines.extend(f"{self.config_name}/{w}: cancelled (fail-fast)"
                     for w in self.cancelled)
        return "\n".join(lines)

    def time_s(self, abbr: str) -> float:
        return time_of(self.results[abbr], self.config)


def run_suite(
    config_name: str,
    base: Optional[SystemConfig] = None,
    workloads: Optional[list[str]] = None,
    rdc_bytes: int = 2 * GB,
    use_cache: bool = True,
    runner: Optional[RunnerPolicy] = None,
    registry=None,
    trace=None,
    on_event=None,
) -> SuiteRun:
    """Run one named configuration across the workload list.

    With *runner* set, workloads execute through the fault-tolerant
    engine (:mod:`repro.sim.runner`): crash-isolated workers, timeouts,
    retries, and journal resume; failed workloads land in
    :attr:`SuiteRun.failures` instead of raising.  Without it, the
    serial in-process path runs unchanged (bit-identical results).

    *registry* (a :class:`repro.obs.registry.MetricsRegistry`, runner
    path only) collects the ``runner.*`` lifecycle counters.  *trace*
    (a :class:`repro.obs.TraceContext`) and *on_event* (a per-point
    completion callback) thread straight through to
    :func:`repro.sim.runner.run_tasks` — see docs/tracing.md.
    """
    config = config_for(config_name, base, rdc_bytes)
    names = workloads if workloads is not None else suite.all_abbrs()
    run = SuiteRun(config_name=config_name, config=config)
    if runner is None:
        for abbr in names:
            run.results[abbr] = run_workload(
                abbr, config, label=config_name, use_cache=use_cache
            )
        return run
    tasks = [
        Task(
            key=f"{config_name}/{abbr}",
            fn=simulate_point,
            args=(suite.get(abbr), config, config_name, use_cache),
            config_hash=config_hash(config),
        )
        for abbr in names
    ]
    batch = run_tasks(tasks, runner, registry=registry, trace=trace,
                      on_event=on_event)
    for abbr in names:
        key = f"{config_name}/{abbr}"
        if key in batch.results:
            run.results[abbr] = batch.results[key]
        elif key in batch.failures:
            run.failures[abbr] = batch.failures[key]
        else:
            run.cancelled.append(abbr)
    return run


def speedups_vs(
    candidate: SuiteRun, reference: SuiteRun
) -> dict[str, float]:
    """Per-workload ``T(reference) / T(candidate)``."""
    out = {}
    for abbr, result in candidate.results.items():
        t_ref = time_of(reference.results[abbr], reference.config)
        t_cand = time_of(result, candidate.config)
        out[abbr] = t_ref / t_cand
    return out


def relative_performance(
    candidate: SuiteRun, ideal: SuiteRun
) -> dict[str, float]:
    """Per-workload performance relative to the ideal system (Fig. 2/9)."""
    out = {}
    for abbr, result in candidate.results.items():
        t_ideal = time_of(ideal.results[abbr], ideal.config)
        t_cand = time_of(result, candidate.config)
        out[abbr] = t_ideal / t_cand
    return out


# ---------------------------------------------------------------------------
# Figure/table computations
# ---------------------------------------------------------------------------

def figure2(workloads: Optional[list[str]] = None,
            use_cache: bool = True) -> dict[str, dict[str, float]]:
    """Fig. 2: NUMA-GPU and +RO-replication relative to ideal."""
    ideal = run_suite(IDEAL, workloads=workloads, use_cache=use_cache)
    rows: dict[str, dict[str, float]] = {}
    for name in (NUMA_GPU, NUMA_REPL_RO):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        rows[name] = relative_performance(run, ideal)
    return rows


def figure8(workloads: Optional[list[str]] = None,
            use_cache: bool = True) -> dict[str, dict[str, float]]:
    """Fig. 8: fraction of remote memory accesses, NUMA-GPU vs CARVE."""
    out: dict[str, dict[str, float]] = {}
    for name in (NUMA_GPU, CARVE_HWC):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        out[name] = {
            abbr: r.remote_fraction for abbr, r in run.results.items()
        }
    return out


def figure9(workloads: Optional[list[str]] = None,
            use_cache: bool = True) -> dict[str, dict[str, float]]:
    """Fig. 9: CARVE upper bound (no coherence) relative to ideal."""
    ideal = run_suite(IDEAL, workloads=workloads, use_cache=use_cache)
    rows: dict[str, dict[str, float]] = {}
    for name in (NUMA_GPU, NUMA_REPL_RO, CARVE_NOC):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        rows[name] = relative_performance(run, ideal)
    return rows


def figure11(workloads: Optional[list[str]] = None,
             use_cache: bool = True) -> dict[str, dict[str, float]]:
    """Fig. 11: software vs hardware RDC coherence, relative to ideal."""
    ideal = run_suite(IDEAL, workloads=workloads, use_cache=use_cache)
    rows: dict[str, dict[str, float]] = {}
    for name in (NUMA_GPU, CARVE_SWC, CARVE_HWC, CARVE_NOC):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        rows[name] = relative_performance(run, ideal)
    return rows


def figure13(workloads: Optional[list[str]] = None,
             use_cache: bool = True) -> dict[str, dict[str, float]]:
    """Fig. 13: speedup over a single GPU for the four headline systems."""
    single = run_suite(SINGLE_GPU, workloads=workloads, use_cache=use_cache)
    rows: dict[str, dict[str, float]] = {}
    for name in (NUMA_GPU, NUMA_REPL_RO, CARVE_HWC, IDEAL):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        rows[name] = speedups_vs(run, single)
    return rows


def figure14(
    link_bandwidths_gbs: Optional[list[float]] = None,
    workloads: Optional[list[str]] = None,
    use_cache: bool = True,
) -> dict[str, dict[float, float]]:
    """Fig. 14: geomean speedup over 1 GPU vs inter-GPU link bandwidth.

    Simulation counters do not depend on link *bandwidth* (only the
    pricing does), so each configuration is simulated once and re-priced
    per bandwidth point.
    """
    bws = link_bandwidths_gbs or [32.0, 64.0, 128.0, 256.0]
    single = run_suite(SINGLE_GPU, workloads=workloads, use_cache=use_cache)
    out: dict[str, dict[float, float]] = {}
    for name in (NUMA_GPU, NUMA_REPL_RO, CARVE_HWC, IDEAL):
        run = run_suite(name, workloads=workloads, use_cache=use_cache)
        series: dict[float, float] = {}
        for bw in bws:
            priced = run.config.replace(
                link=run.config.link.__class__(
                    inter_gpu_bytes_per_s=bw * 1e9,
                    cpu_gpu_bytes_per_s=run.config.link.cpu_gpu_bytes_per_s,
                    latency_ns=run.config.link.latency_ns,
                )
            )
            model = PerformanceModel(priced)
            single_model = PerformanceModel(single.config)
            sp = []
            for abbr, result in run.results.items():
                t_single = single_model.total_time_s(single.results[abbr])
                sp.append(t_single / model.total_time_s(result))
            series[bw] = geometric_mean(sp)
        out[name] = series
    return out


def table5a(
    rdc_sizes_gb: Optional[list[float]] = None,
    workloads: Optional[list[str]] = None,
    use_cache: bool = True,
) -> dict[str, float]:
    """Table V(a): geomean NUMA speedup vs RDC size (plus the baseline)."""
    sizes = rdc_sizes_gb or [0.5, 1.0, 2.0, 4.0]
    single = run_suite(SINGLE_GPU, workloads=workloads, use_cache=use_cache)
    out: dict[str, float] = {}
    numa = run_suite(NUMA_GPU, workloads=workloads, use_cache=use_cache)
    out["NUMA-GPU"] = geometric_mean(list(speedups_vs(numa, single).values()))
    for size in sizes:
        run = run_suite(
            CARVE_HWC,
            workloads=workloads,
            rdc_bytes=int(size * GB),
            use_cache=use_cache,
        )
        key = f"CARVE-{size:g}GB"
        out[key] = geometric_mean(list(speedups_vs(run, single).values()))
    return out


def table5b(
    spill_fractions: Optional[list[float]] = None,
    workloads: Optional[list[str]] = None,
    use_cache: bool = True,
) -> dict[float, float]:
    """Table V(b): geomean slowdown when the carve-out forces a spill."""
    fracs = spill_fractions or [0.0, 0.015, 0.0312, 0.0625, 0.125]
    run = run_suite(NUMA_GPU, workloads=workloads, use_cache=use_cache)
    out: dict[float, float] = {}
    for frac in fracs:
        slows = []
        for abbr, result in run.results.items():
            base_t = time_of(result, run.config)
            counts = result.page_access_counts or []
            assessment = assess_capacity_loss(
                counts, frac, run.config, base_t, result.total().accesses
            )
            slows.append(assessment.slowdown)
        out[frac] = geometric_mean(slows)
    return out
