"""Crash-consistent append-only JSONL execution journal (schema v2).

The runner (:mod:`repro.sim.runner`) records one JSON object per line as
points start, retry, fail, or complete.  A journal makes an interrupted
sweep resumable: ``--resume`` replays the journal, skips every point
whose latest terminal event is ``done`` (reloading its pickled result
from the sidecar results directory), and re-runs everything else.

Record schema (all events carry ``event``, ``key``, ``ts`` and — since
schema v2 — a ``sum`` integrity checksum):

``meta``    {fingerprint, schema} — batch environment (simulator
            CODE_VERSION, git sha, python); ``key`` is empty
``start``   {attempt}
``retry``   {attempt, kind, exception_type, message, backoff_s}
``failed``  {kind, exception_type, message, traceback, config_hash,
             attempts, elapsed_s}
``done``    {attempt, elapsed_s, config_hash, metrics?}

The ``meta`` fingerprint is what lets ``python -m repro report`` and the
baseline/regression tooling (``docs/regression.md``) attribute every
digest in a journal to the code revision that produced it.

Durability model (drilled end to end by ``python -m repro chaos``, see
``docs/chaos.md``):

* **Per-record checksums.**  Every line carries ``sum`` — a truncated
  sha256 over the record's canonical JSON without the ``sum`` field.  A
  record that decodes but fails its checksum is dropped and counted,
  never trusted: resume then re-runs the point, which is always safe.
* **Torn tail vs interior corruption.**  A crash mid-append tears at
  most the *final* line; that is expected damage, silently truncated
  away before the next append (counted once per journal instance).  A
  broken line anywhere *else* — or a complete line failing its
  checksum — means something other than a crash touched the file, so it
  is skipped **loudly**: a one-shot ``RuntimeWarning`` plus counters.
* **Sidecar digests.**  Results are pickled to
  ``<journal-stem>-results/<sha256(key)[:24]>.pkl`` wrapped in a small
  envelope: magic, sha256 of the payload, payload.  ``load_result``
  verifies the digest and quarantines any unreadable or tampered
  sidecar to ``*.corrupt`` (one-shot warning, counted) — mirroring the
  sim-cache quarantine — so resume re-runs the point instead of
  resuming from garbage.  Bare-pickle v1 sidecars (no magic) still load.
* **Opt-in fsync.**  ``Journal(..., fsync=True)`` — or
  ``REPRO_JOURNAL_FSYNC=1`` — fsyncs every append and sidecar store,
  trading throughput for power-loss durability.  The default (flush
  only) already survives process crashes, which is what the drill
  attacks.

v1 journals (no ``sum`` field) read back unchanged: checksums are only
verified on records that carry one.

Reads are **scan-cached**: :meth:`Journal.records`, :meth:`Journal.meta`
and :meth:`Journal.completed_keys` share one parsed snapshot keyed on
the file's (size, mtime_ns), so a resume consults the disk once, not
once per accessor.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.sim import chaos

#: Stamped into ``meta`` records; bump on incompatible record changes.
JOURNAL_SCHEMA_VERSION = 2

#: Record field carrying the integrity checksum (short: it is on every line).
CHECKSUM_FIELD = "sum"

#: Sidecar envelope: magic + 32-byte payload sha256 + pickled payload.
SIDECAR_MAGIC = b"RJS2"

#: Set to ``1`` to fsync appends and sidecar stores (power-loss safety).
FSYNC_ENV = "REPRO_JOURNAL_FSYNC"

# One-shot warning latches (process-wide, matching the sim-cache and
# digest-failure conventions: the first incident is loud, the rest are
# counted).
_warned_corrupt_records = False
_warned_sidecar_quarantine = False


def _key_digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:24]


def record_checksum(record: dict) -> str:
    """Truncated sha256 over the record's canonical JSON minus ``sum``."""
    body = {k: v for k, v in record.items() if k != CHECKSUM_FIELD}
    payload = json.dumps(body, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:12]


def _intact_record(line: str) -> Optional[tuple[dict, Optional[str]]]:
    """Parse one journal line.

    Returns ``(record, None)`` for an intact record, ``(None, why)``
    for a damaged line (``why`` in ``undecodable`` / ``malformed`` /
    ``checksum``).  v1 records (no checksum field) are intact by
    definition — there is nothing to verify.
    """
    try:
        parsed = json.loads(line)
    except json.JSONDecodeError:
        return (None, "undecodable")
    if not (isinstance(parsed, dict) and "event" in parsed
            and "key" in parsed):
        return (None, "malformed")
    if CHECKSUM_FIELD in parsed:
        if record_checksum(parsed) != parsed[CHECKSUM_FIELD]:
            return (None, "checksum")
    return (parsed, None)


@dataclass
class JournalScan:
    """One parsed pass over a journal file."""

    #: Every intact record, in file order.
    records: list = field(default_factory=list)
    #: Half-written final line (crash mid-append): expected, repairable.
    torn_tail: int = 0
    #: Broken non-tail lines (undecodable or malformed): not crash
    #: damage — warned about and skipped.
    corrupt_records: int = 0
    #: Complete lines whose ``sum`` did not verify: dropped, warned.
    checksum_failures: int = 0


class Journal:
    """One JSONL journal file plus its sidecar results directory."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync: Optional[bool] = None,
        registry=None,
    ) -> None:
        self.path = Path(path)
        self.results_dir = self.path.parent / f"{self.path.stem}-results"
        #: Optional MetricsRegistry for the journal.* damage counters.
        self.registry = registry
        self._fsync = (
            fsync if fsync is not None
            else os.environ.get(FSYNC_ENV, "") == "1"
        )
        self._scan_cache: Optional[tuple[tuple[int, int], JournalScan]] = None
        self._tail_checked = False
        self._torn_counted = False
        self._counted_corrupt = 0
        self._counted_checksum = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, event: str, key: str, **fields: Any) -> None:
        """Append one checksummed record (flushed; fsynced if opted in).

        The first append of this instance also repairs a torn tail left
        by a crashed predecessor, so a half-written line can never get
        buried under new records (where it would read as interior
        corruption instead of expected crash damage).
        """
        # Journal timestamps are observability metadata; nothing
        # deterministic is derived from them.
        # lint: disable=DET001
        record = {"event": event, "key": key, "ts": time.time(), **fields}
        if event == "meta":
            record.setdefault("schema", JOURNAL_SCHEMA_VERSION)
        record[CHECKSUM_FIELD] = record_checksum(record)
        line = json.dumps(record, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.repair_tail()
        chaos.fire(chaos.SITE_JOURNAL_APPEND, key, path=self.path, line=line)
        with self.path.open("a", encoding="utf-8") as f:
            f.write(line + "\n")
            f.flush()
            if self._fsync:
                os.fsync(f.fileno())

    def repair_tail(self) -> bool:
        """Truncate a half-written final line; True when one was cut.

        Only a crash mid-append produces one, only on the last line,
        and its content is by definition an event that never completed
        — so removal is always safe and done silently (counted in the
        ``journal.torn_records`` metric, once per incident).  Checked
        once per instance: after the first append this process owns the
        tail.
        """
        if self._tail_checked:
            return False
        self._tail_checked = True
        try:
            data = self.path.read_bytes()
        except OSError:
            return False
        if not data or data.endswith(b"\n"):
            return False
        cut = data.rfind(b"\n") + 1
        tail = data[cut:]
        try:
            intact = _intact_record(tail.decode("utf-8").strip())[0] is not None
        except UnicodeDecodeError:
            intact = False
        if intact:
            # Only the newline was lost; finish the line instead of
            # discarding a complete, checksum-verified record.
            with self.path.open("ab") as f:
                f.write(b"\n")
            return False
        with self.path.open("rb+") as f:
            f.truncate(cut)
        self._note_torn()
        return True

    def store_result(self, key: str, result: Any) -> None:
        """Pickle a completed point's result for later resumption.

        The payload is wrapped in the digest envelope (see module
        docstring) and written atomically via a *uniquely named* tmp
        file: two batches completing the same key concurrently must
        never share a tmp path (a fixed ``.tmp`` suffix lets writer B
        truncate the file writer A is about to rename, or rename it out
        from under A entirely) — same discipline as the sim-cache
        store.  A SIGKILL mid-write orphans at most the tmp file, which
        :meth:`sweep_orphans` removes at the next batch start.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        target = self.results_dir / f"{_key_digest(key)}.pkl"
        tmp = self.results_dir / (
            f"{target.stem}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        blob = SIDECAR_MAGIC + hashlib.sha256(payload).digest() + payload
        try:
            with tmp.open("wb") as f:
                f.write(blob)
                if self._fsync:
                    f.flush()
                    os.fsync(f.fileno())
            tmp.replace(target)
        finally:
            tmp.unlink(missing_ok=True)
        chaos.fire(chaos.SITE_SIDECAR_STORE, key, path=target)

    def sweep_orphans(self) -> int:
        """Remove ``*.tmp`` leftovers of stores killed mid-write.

        Call at batch start only: tmp names are unique per (pid, uuid),
        so a *live* concurrent batch's tmp could be swept mid-rename —
        harmless for correctness (its ``replace`` already happened or
        its write is re-run) but noisy.  The runner calls this before
        submitting work.
        """
        if not self.results_dir.exists():
            return 0
        swept = 0
        for tmp in sorted(self.results_dir.glob("*.tmp")):
            try:
                tmp.unlink()
            except OSError:
                continue
            swept += 1
        return swept

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def scan(self) -> JournalScan:
        """Parse the journal once, classifying every damaged line.

        The result is cached on the file's (size, mtime_ns): ``meta``,
        ``completed_keys`` and ``records`` in the same batch share one
        disk pass, and any append (ours or another process's) naturally
        invalidates the snapshot.
        """
        try:
            stat = os.stat(self.path)
        except OSError:
            return JournalScan()
        cache_key = (stat.st_size, stat.st_mtime_ns)
        if self._scan_cache is not None and self._scan_cache[0] == cache_key:
            return self._scan_cache[1]
        scan = self._parse()
        self._scan_cache = (cache_key, scan)
        self._publish(scan)
        return scan

    def _parse(self) -> JournalScan:
        scan = JournalScan()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return scan
        lines = text.split("\n")
        ends_complete = text.endswith("\n") or not text
        occupied = [i for i, line in enumerate(lines) if line.strip()]
        last = occupied[-1] if occupied else -1
        for i in occupied:
            rec, problem = _intact_record(lines[i].strip())
            if rec is not None:
                scan.records.append(rec)
            elif i == last and not ends_complete:
                # Unterminated final line: crash mid-append, the one
                # damage shape normal operation produces.
                scan.torn_tail += 1
            elif problem == "checksum":
                scan.checksum_failures += 1
            else:
                scan.corrupt_records += 1
        return scan

    def _publish(self, scan: JournalScan) -> None:
        """Surface a scan's damage: one-shot warning + counters."""
        global _warned_corrupt_records
        bad = scan.corrupt_records + scan.checksum_failures
        if bad and not _warned_corrupt_records:
            _warned_corrupt_records = True
            warnings.warn(
                f"journal {self.path} carries damaged non-tail records "
                f"({scan.corrupt_records} unparsable, "
                f"{scan.checksum_failures} failing their checksum); they "
                f"were skipped and their points will re-run on resume, "
                f"but interior damage is not crash fallout — check the "
                f"storage.  Further incidents are counted silently.",
                RuntimeWarning,
                stacklevel=3,
            )
        if scan.torn_tail:
            self._note_torn()
        self._count(
            "journal.corrupt_records",
            scan.corrupt_records - self._counted_corrupt,
        )
        self._counted_corrupt = max(
            self._counted_corrupt, scan.corrupt_records
        )
        self._count(
            "journal.checksum_failures",
            scan.checksum_failures - self._counted_checksum,
        )
        self._counted_checksum = max(
            self._counted_checksum, scan.checksum_failures
        )

    def records(self) -> list[dict]:
        """All intact records (see :meth:`scan` for damage handling)."""
        return self.scan().records

    def meta(self) -> Optional[dict]:
        """The latest environment fingerprint stamped into the journal.

        A journal appended to by several batches (e.g. ``--resume``)
        carries one ``meta`` record per batch; the newest wins because
        it describes the code that produced the *latest* records.
        """
        fingerprint = None
        for rec in self.records():
            if rec["event"] == "meta" and isinstance(
                    rec.get("fingerprint"), dict):
                fingerprint = rec["fingerprint"]
        return fingerprint

    def completed_keys(self) -> set[str]:
        """Keys whose most recent terminal event is ``done``."""
        state: dict[str, str] = {}
        for rec in self.records():
            if rec["event"] in ("done", "failed"):
                state[rec["key"]] = rec["event"]
        return {k for k, ev in state.items() if ev == "done"}

    def load_result_bytes(self, key: str) -> Optional[bytes]:
        """Digest-verified pickled payload bytes; None when absent or
        quarantined.  The byte form is what the chaos drill compares
        across runs — equality here is the bit-identity contract."""
        target = self.results_dir / f"{_key_digest(key)}.pkl"
        if not target.exists():
            return None
        try:
            return self._read_verified(target)
        except Exception as exc:
            self._quarantine_sidecar(target, exc)
            return None

    def load_result(self, key: str) -> Optional[Any]:
        """Unpickle a stored result; None when absent or quarantined.

        Any unreadable sidecar — bad envelope, digest mismatch,
        unpicklable payload — is moved to ``*.corrupt`` (evidence
        preserved, the point re-runs on resume) with a one-shot warning
        and a counted metric, mirroring the sim-cache quarantine.
        """
        target = self.results_dir / f"{_key_digest(key)}.pkl"
        if not target.exists():
            return None
        try:
            return pickle.loads(self._read_verified(target))
        except Exception as exc:
            self._quarantine_sidecar(target, exc)
            return None

    def _read_verified(self, target: Path) -> bytes:
        data = target.read_bytes()
        if data[:len(SIDECAR_MAGIC)] != SIDECAR_MAGIC:
            if data[:1] == b"\x80":
                return data  # v1 sidecar: bare pickle, no digest
            raise ValueError("unrecognized sidecar format")
        header_len = len(SIDECAR_MAGIC) + 32
        digest = data[len(SIDECAR_MAGIC):header_len]
        payload = data[header_len:]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError("sidecar payload digest mismatch")
        return payload

    def _quarantine_sidecar(self, target: Path, exc: Exception) -> None:
        global _warned_sidecar_quarantine
        quarantine = target.with_suffix(".corrupt")
        try:
            target.replace(quarantine)
        except OSError:
            return  # another process already moved/removed it
        self._count("journal.sidecar_quarantined", 1)
        if not _warned_sidecar_quarantine:
            _warned_sidecar_quarantine = True
            warnings.warn(
                f"quarantined unreadable journal sidecar {target.name} -> "
                f"{quarantine.name} ({type(exc).__name__}: {exc}); the "
                f"point will re-run on resume.  Further quarantines are "
                f"counted silently.",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _count(self, name: str, delta: int) -> None:
        if self.registry is None or delta <= 0:
            return
        from repro.obs.metrics import spec_for

        self.registry.register(spec_for(name)).inc(delta)

    def _note_torn(self) -> None:
        # A file tail can be torn at most once per crash, and one
        # instance observes at most one crash's fallout (scan and
        # repair both see the same tear) — count it once.
        if self._torn_counted:
            return
        self._torn_counted = True
        self._count("journal.torn_records", 1)


__all__ = [
    "CHECKSUM_FIELD",
    "FSYNC_ENV",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalScan",
    "SIDECAR_MAGIC",
    "record_checksum",
]
