"""Append-only JSONL execution journal for fault-tolerant batches.

The runner (:mod:`repro.sim.runner`) records one JSON object per line as
points start, retry, fail, or complete.  A journal makes an interrupted
sweep resumable: ``--resume`` replays the journal, skips every point
whose latest terminal event is ``done`` (reloading its pickled result
from the sidecar results directory), and re-runs everything else.

Record schema (all events carry ``event``, ``key`` and ``ts``):

``meta``    {fingerprint} — batch environment (schema version,
            simulator CODE_VERSION, git sha, python); ``key`` is empty
``start``   {attempt}
``retry``   {attempt, kind, exception_type, message, backoff_s}
``failed``  {kind, exception_type, message, traceback, config_hash,
             attempts, elapsed_s}
``done``    {attempt, elapsed_s, config_hash, metrics?}

The ``meta`` fingerprint is what lets ``python -m repro report`` and the
baseline/regression tooling (``docs/regression.md``) attribute every
digest in a journal to the code revision that produced it.

``done`` records for points whose result is a
:class:`~repro.perf.stats.RunResult` additionally carry a ``metrics``
digest (see :func:`repro.obs.summary.summarize_result`): kernel count,
access/remote-access totals, RDC hits/misses, invalidations, page moves,
replicated pages and total link bytes — enough to grep a sweep's journal
for anomalies without unpickling any sidecar result.

Results of completed points are pickled to
``<journal-stem>-results/<sha256(key)[:24]>.pkl`` next to the journal, so
resumption does not depend on the simulation cache being enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import uuid
from pathlib import Path
from typing import Any, Optional, Union


def _key_digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:24]


class Journal:
    """One JSONL journal file plus its sidecar results directory."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.results_dir = self.path.parent / f"{self.path.stem}-results"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, event: str, key: str, **fields: Any) -> None:
        """Append one event record (flushed so crashes lose at most it)."""
        # Journal timestamps are observability metadata; nothing
        # deterministic is derived from them.
        # lint: disable=DET001
        record = {"event": event, "key": key, "ts": time.time(), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()

    def store_result(self, key: str, result: Any) -> None:
        """Pickle a completed point's result for later resumption.

        Atomic via a *uniquely named* tmp file: two batches completing
        the same key concurrently must never share a tmp path (a fixed
        ``.tmp`` suffix lets writer B truncate the file writer A is
        about to rename, or rename it out from under A entirely) —
        same discipline as the sim-cache store.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        target = self.results_dir / f"{_key_digest(key)}.pkl"
        tmp = self.results_dir / (
            f"{target.stem}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            with tmp.open("wb") as f:
                pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(target)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self) -> list[dict]:
        """All records, tolerating a truncated (crashed-mid-write) tail."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        with self.path.open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # half-written tail line
                if isinstance(rec, dict) and "event" in rec and "key" in rec:
                    out.append(rec)
        return out

    def meta(self) -> Optional[dict]:
        """The latest environment fingerprint stamped into the journal.

        A journal appended to by several batches (e.g. ``--resume``)
        carries one ``meta`` record per batch; the newest wins because
        it describes the code that produced the *latest* records.
        """
        fingerprint = None
        for rec in self.records():
            if rec["event"] == "meta" and isinstance(
                    rec.get("fingerprint"), dict):
                fingerprint = rec["fingerprint"]
        return fingerprint

    def completed_keys(self) -> set[str]:
        """Keys whose most recent terminal event is ``done``."""
        state: dict[str, str] = {}
        for rec in self.records():
            if rec["event"] in ("done", "failed"):
                state[rec["key"]] = rec["event"]
        return {k for k, ev in state.items() if ev == "done"}

    def load_result(self, key: str) -> Optional[Any]:
        """Unpickle a stored result; None when absent or unreadable."""
        target = self.results_dir / f"{_key_digest(key)}.pkl"
        if not target.exists():
            return None
        try:
            with target.open("rb") as f:
                return pickle.load(f)
        except Exception:
            return None  # corrupt sidecar: caller re-runs the point
