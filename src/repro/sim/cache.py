"""On-disk memoisation of simulation runs.

A full-suite figure needs ~8 configurations x 20 workloads; benchmarks
live in separate processes, so results are cached on disk keyed by the
exact (workload spec, system config) pair plus a code-version stamp.
Bump :data:`CODE_VERSION` whenever simulator semantics change — stale
cache entries are then ignored.

Set the environment variable ``REPRO_NO_CACHE=1`` to disable caching.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import uuid
from pathlib import Path
from typing import Callable, Optional

from repro.config import SystemConfig
from repro.perf.stats import RunResult
from repro.sim import chaos
from repro.workloads.base import WorkloadSpec

#: Bump on any change that alters simulation results (or the shape of
#: the pickled RunResult) — and, per the VER001 lint gate, on any
#: change under the result-affecting packages, however innocuous
#: (v11: import reordering in numa/system.py for the style gate).
CODE_VERSION = 11

log = logging.getLogger(__name__)

_DEFAULT_DIR = Path(__file__).resolve().parents[3] / ".simcache"


def cache_dir() -> Path:
    # Cache *location* never changes result values: entries are keyed
    # on CODE_VERSION+spec+config and replay bit-identical payloads.
    override = os.environ.get("REPRO_CACHE_DIR")  # lint: disable=DET004 - cache location is result-invariant
    return Path(override) if override else _DEFAULT_DIR


def cache_enabled() -> bool:
    # Cache on/off is result-invariant by the engine-equivalence
    # contract: a cache hit replays the exact bytes a miss recomputes.
    return os.environ.get("REPRO_NO_CACHE", "") != "1"  # lint: disable=DET004 - cache on/off is result-invariant


def _key(spec: WorkloadSpec, config: SystemConfig) -> str:
    payload = f"v{CODE_VERSION}|{spec!r}|{config!r}".encode()
    return hashlib.sha256(payload).hexdigest()[:32]


def load(spec: WorkloadSpec, config: SystemConfig) -> Optional[RunResult]:
    """Return a cached result, or None when absent/disabled/corrupt.

    A corrupt entry (truncated write, unpicklable payload, wrong type)
    is quarantined to ``<key>.corrupt`` rather than left in place: left
    alone it would fail to load — and therefore silently re-miss and
    re-simulate — forever, while deleting it would destroy the evidence.
    """
    if not cache_enabled():
        return None
    path = cache_dir() / f"{_key(spec, config)}.pkl"
    if not path.exists():
        return None
    try:
        with path.open("rb") as f:
            obj = pickle.load(f)
    except FileNotFoundError:
        return None  # raced with clear(); an ordinary miss
    except Exception as exc:
        # Unpickling can raise nearly anything on a corrupt payload;
        # every such failure is the same condition: a bad entry.
        _quarantine(path, exc)
        return None
    if not isinstance(obj, RunResult):
        _quarantine(
            path,
            TypeError(f"cached object is {type(obj).__name__}, "
                      f"not RunResult"),
        )
        return None
    return obj


def _quarantine(path: Path, exc: Exception) -> None:
    """Move a corrupt cache entry aside and warn (returns it to a miss)."""
    target = path.with_suffix(".corrupt")
    try:
        path.replace(target)
    except OSError:
        return  # another process already moved/removed it
    log.warning(
        "quarantined corrupt sim-cache entry %s -> %s (%s: %s); "
        "the run will be re-simulated",
        path.name, target.name, type(exc).__name__, exc,
    )


def store(spec: WorkloadSpec, config: SystemConfig, result: RunResult) -> None:
    if not cache_enabled():
        return
    d = cache_dir()
    d.mkdir(parents=True, exist_ok=True)
    path = d / f"{_key(spec, config)}.pkl"
    # Unique tmp name: parallel processes computing the same key must not
    # write into (or rename away) each other's half-written file.  The
    # final rename is atomic, so concurrent stores race benignly — last
    # writer wins with a complete file either way.
    tmp = d / f"{path.stem}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        with tmp.open("wb") as f:
            pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    # Chaos drill hook (docs/chaos.md): a simcache_corrupt event rots
    # the entry at rest, which the quarantine path in load() must turn
    # back into a clean re-simulated miss.
    chaos.fire(chaos.SITE_SIMCACHE_STORE, getattr(spec, "name", ""),
               path=path)


def cached(
    spec: WorkloadSpec,
    config: SystemConfig,
    compute: Callable[[], RunResult],
) -> RunResult:
    """Memoise *compute* under the (spec, config) key."""
    hit = load(spec, config)
    if hit is not None:
        return hit
    result = compute()
    store(spec, config, result)
    return result


def clear() -> int:
    """Delete every cache entry; returns how many files were removed.

    Also sweeps ``*.tmp`` leftovers from stores interrupted mid-write
    (killed processes can orphan their uniquely named tmp files) and
    ``*.corrupt`` quarantine files.
    """
    d = cache_dir()
    if not d.exists():
        return 0
    n = 0
    for pattern in ("*.pkl", "*.tmp", "*.corrupt"):
        for p in d.glob(pattern):
            p.unlink(missing_ok=True)
            n += 1
    return n
