"""Generic parameter-sweep utilities.

Sensitivity studies come in two flavours here:

* **re-simulation sweeps** — the parameter changes the traffic (RDC size,
  coherence protocol, GPU count, placement): every point is a new run;
* **re-pricing sweeps** — the parameter only changes the timing model
  (any bandwidth, latency, launch overhead): one run per configuration is
  re-priced for every point, which is how Fig. 14 evaluates five link
  bandwidths for the cost of one.

``Sweep`` drives both, memoising runs through the standard disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.config import SystemConfig
from repro.perf.model import PerformanceModel, geometric_mean
from repro.perf.stats import RunResult
from repro.sim.driver import resolve_workload, run_workload

#: A function mapping a sweep value to a full system configuration.
ConfigFactory = Callable[[float], SystemConfig]


@dataclass
class SweepPoint:
    """One (value, workload) cell of a sweep."""

    value: float
    workload: str
    time_s: float
    result: RunResult


@dataclass
class SweepResult:
    """All cells of a sweep, with convenience reductions."""

    name: str
    values: list[float]
    workloads: list[str]
    points: dict[tuple[float, str], SweepPoint] = field(default_factory=dict)

    def time(self, value: float, workload: str) -> float:
        return self.points[(value, workload)].time_s

    def series(self, workload: str) -> dict[float, float]:
        """value -> time for one workload."""
        return {v: self.time(v, workload) for v in self.values}

    def geomean_speedup_vs(
        self, baseline: "SweepResult", baseline_value: Optional[float] = None
    ) -> dict[float, float]:
        """Per-value geomean of ``T(baseline) / T(this)`` across workloads.

        *baseline_value* pins the baseline to one of its sweep values
        (e.g. compare every RDC size against the no-RDC system); defaults
        to comparing value-for-value.
        """
        out = {}
        for v in self.values:
            ratios = []
            for w in self.workloads:
                bv = baseline_value if baseline_value is not None else v
                ratios.append(baseline.time(bv, w) / self.time(v, w))
            out[v] = geometric_mean(ratios)
        return out


def run_sweep(
    name: str,
    values: Sequence[float],
    config_factory: ConfigFactory,
    workloads: Sequence[str],
    use_cache: bool = True,
) -> SweepResult:
    """Re-simulation sweep: one run per (value, workload)."""
    specs = [resolve_workload(w) for w in workloads]
    sweep = SweepResult(
        name=name, values=list(values), workloads=[s.abbr for s in specs]
    )
    for v in values:
        cfg = config_factory(v)
        model = PerformanceModel(cfg)
        for spec in specs:
            result = run_workload(
                spec, cfg, label=f"{name}={v:g}", use_cache=use_cache
            )
            sweep.points[(v, spec.abbr)] = SweepPoint(
                value=v,
                workload=spec.abbr,
                time_s=model.total_time_s(result),
                result=result,
            )
    return sweep


def reprice_sweep(
    name: str,
    values: Sequence[float],
    base_config: SystemConfig,
    price_factory: ConfigFactory,
    workloads: Sequence[str],
    use_cache: bool = True,
) -> SweepResult:
    """Re-pricing sweep: simulate once on *base_config*, re-price per value.

    *price_factory* maps a sweep value to the configuration used for
    pricing only — it must not change anything that affects traffic
    counters (capacities, policies, GPU counts), or the sweep is invalid;
    bandwidths, latencies, and overheads are fair game.
    """
    specs = [resolve_workload(w) for w in workloads]
    sweep = SweepResult(
        name=name, values=list(values), workloads=[s.abbr for s in specs]
    )
    results = {
        spec.abbr: run_workload(
            spec, base_config, label=f"{name}-base", use_cache=use_cache
        )
        for spec in specs
    }
    for v in values:
        priced = price_factory(v)
        _check_same_traffic_shape(base_config, priced)
        model = PerformanceModel(priced)
        for abbr, result in results.items():
            sweep.points[(v, abbr)] = SweepPoint(
                value=v,
                workload=abbr,
                time_s=model.total_time_s(result),
                result=result,
            )
    return sweep


def _check_same_traffic_shape(base: SystemConfig, priced: SystemConfig) -> None:
    """Reject re-pricing configs that would have changed the simulation."""
    if (
        priced.n_gpus != base.n_gpus
        or priced.scale != base.scale
        or priced.page_bytes != base.page_bytes
        or priced.placement != base.placement
        or priced.replication != base.replication
        or priced.migration != base.migration
        or priced.scheduling != base.scheduling
        or (priced.rdc is None) != (base.rdc is None)
    ):
        raise ValueError(
            "re-pricing sweep changed a traffic-affecting parameter; "
            "use run_sweep instead"
        )
    if priced.rdc is not None and base.rdc is not None:
        if (
            priced.rdc.size_bytes != base.rdc.size_bytes
            or priced.rdc.coherence != base.rdc.coherence
            or priced.rdc.write_policy != base.rdc.write_policy
            or priced.rdc.hit_predictor != base.rdc.hit_predictor
        ):
            raise ValueError(
                "re-pricing sweep changed the RDC; use run_sweep instead"
            )
