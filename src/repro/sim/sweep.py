"""Generic parameter-sweep utilities.

Sensitivity studies come in two flavours here:

* **re-simulation sweeps** — the parameter changes the traffic (RDC size,
  coherence protocol, GPU count, placement): every point is a new run;
* **re-pricing sweeps** — the parameter only changes the timing model
  (any bandwidth, latency, launch overhead): one run per configuration is
  re-priced for every point, which is how Fig. 14 evaluates five link
  bandwidths for the cost of one.

``Sweep`` drives both, memoising runs through the standard disk cache.

Both sweeps optionally execute through the fault-tolerant runner
(:mod:`repro.sim.runner`): pass a :class:`~repro.sim.runner.RunnerPolicy`
to run points in crash-isolated worker subprocesses with timeouts,
retries, and journal-based resume.  A failed point no longer aborts the
sweep — it is recorded as a :class:`~repro.sim.runner.FailureReport` in
:attr:`SweepResult.failures` while every other point completes.  Without
a runner the legacy serial in-process path executes unchanged
(bit-identical results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.config import ConfigError, SystemConfig
from repro.perf.model import PerformanceModel, geometric_mean
from repro.perf.stats import RunResult
from repro.sim.driver import resolve_workload, run_workload
from repro.sim.runner import (
    FailureReport,
    RunnerPolicy,
    Task,
    config_hash,
    run_tasks,
)
from repro.workloads.base import WorkloadSpec

#: A function mapping a sweep value to a full system configuration.
ConfigFactory = Callable[[float], SystemConfig]


def simulate_point(
    spec: WorkloadSpec,
    config: SystemConfig,
    label: Optional[str],
    use_cache: bool,
) -> RunResult:
    """Top-level (hence picklable) worker entry: simulate one point."""
    return run_workload(spec, config, label=label, use_cache=use_cache)


def point_key(name: str, value: float, abbr: str) -> str:
    """Journal/report key of one (value, workload) sweep cell."""
    return f"{name}={value:g}/{abbr}"


@dataclass
class SweepPoint:
    """One (value, workload) cell of a sweep."""

    value: float
    workload: str
    time_s: float
    result: RunResult


@dataclass
class SweepResult:
    """All cells of a sweep, with convenience reductions."""

    name: str
    values: list[float]
    workloads: list[str]
    points: dict[tuple[float, str], SweepPoint] = field(default_factory=dict)
    #: Points that ultimately failed under the fault-tolerant runner.
    failures: dict[tuple[float, str], FailureReport] = field(
        default_factory=dict
    )
    #: Points never run because a fail-fast runner aborted the sweep.
    cancelled: list[tuple[float, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every requested point produced a result."""
        return not self.failures and not self.cancelled

    def failure_summary(self) -> str:
        lines = [r.summary() for r in self.failures.values()]
        lines.extend(
            f"{point_key(self.name, v, w)}: cancelled (fail-fast)"
            for v, w in self.cancelled
        )
        return "\n".join(lines)

    def time(self, value: float, workload: str) -> float:
        return self.points[(value, workload)].time_s

    def series(self, workload: str) -> dict[float, float]:
        """value -> time for one workload."""
        return {v: self.time(v, workload) for v in self.values}

    def geomean_speedup_vs(
        self, baseline: "SweepResult", baseline_value: Optional[float] = None
    ) -> dict[float, float]:
        """Per-value geomean of ``T(baseline) / T(this)`` across workloads.

        *baseline_value* pins the baseline to one of its sweep values
        (e.g. compare every RDC size against the no-RDC system); defaults
        to comparing value-for-value.
        """
        out = {}
        for v in self.values:
            ratios = []
            for w in self.workloads:
                bv = baseline_value if baseline_value is not None else v
                ratios.append(baseline.time(bv, w) / self.time(v, w))
            out[v] = geometric_mean(ratios)
        return out


def _validated_configs(
    name: str, values: Sequence[float], config_factory: ConfigFactory
) -> list[tuple[float, SystemConfig]]:
    """Build and validate every point's config before any simulation.

    A bad sweep factory must fail up front with a clear error, not hours
    in when the offending value is finally reached.
    """
    out = []
    for v in values:
        cfg = config_factory(v)
        try:
            cfg.validate()
        except ConfigError as exc:
            raise ConfigError(
                f"sweep {name!r} value {v:g} produced an invalid "
                f"configuration: {exc}"
            ) from exc
        out.append((v, cfg))
    return out


def run_sweep(
    name: str,
    values: Sequence[float],
    config_factory: ConfigFactory,
    workloads: Sequence[str],
    use_cache: bool = True,
    runner: Optional[RunnerPolicy] = None,
) -> SweepResult:
    """Re-simulation sweep: one run per (value, workload).

    With *runner* set, points execute through the fault-tolerant engine;
    failed points land in :attr:`SweepResult.failures` instead of
    raising.  Without it, the serial in-process path runs unchanged.
    """
    specs = [resolve_workload(w) for w in workloads]
    configs = _validated_configs(name, values, config_factory)
    sweep = SweepResult(
        name=name, values=list(values), workloads=[s.abbr for s in specs]
    )
    if runner is None:
        for v, cfg in configs:
            model = PerformanceModel(cfg)
            for spec in specs:
                result = run_workload(
                    spec, cfg, label=f"{name}={v:g}", use_cache=use_cache
                )
                sweep.points[(v, spec.abbr)] = SweepPoint(
                    value=v,
                    workload=spec.abbr,
                    time_s=model.total_time_s(result),
                    result=result,
                )
        return sweep

    tasks = [
        Task(
            key=point_key(name, v, spec.abbr),
            fn=simulate_point,
            args=(spec, cfg, f"{name}={v:g}", use_cache),
            config_hash=config_hash(cfg),
        )
        for v, cfg in configs
        for spec in specs
    ]
    batch = run_tasks(tasks, runner)
    for v, cfg in configs:
        model = PerformanceModel(cfg)
        for spec in specs:
            key = point_key(name, v, spec.abbr)
            cell = (v, spec.abbr)
            if key in batch.results:
                result = batch.results[key]
                sweep.points[cell] = SweepPoint(
                    value=v,
                    workload=spec.abbr,
                    time_s=model.total_time_s(result),
                    result=result,
                )
            elif key in batch.failures:
                sweep.failures[cell] = batch.failures[key]
            else:
                sweep.cancelled.append(cell)
    return sweep


def reprice_sweep(
    name: str,
    values: Sequence[float],
    base_config: SystemConfig,
    price_factory: ConfigFactory,
    workloads: Sequence[str],
    use_cache: bool = True,
    runner: Optional[RunnerPolicy] = None,
) -> SweepResult:
    """Re-pricing sweep: simulate once on *base_config*, re-price per value.

    *price_factory* maps a sweep value to the configuration used for
    pricing only — it must not change anything that affects traffic
    counters (capacities, policies, GPU counts), or the sweep is invalid;
    bandwidths, latencies, and overheads are fair game.

    With *runner* set, the base simulations run through the
    fault-tolerant engine; a failed workload is reported under every
    sweep value in :attr:`SweepResult.failures`.
    """
    base_config.validate()
    specs = [resolve_workload(w) for w in workloads]
    # Build and sanity-check every pricing config before simulating.
    priced_configs = []
    for v in values:
        priced = price_factory(v)
        try:
            priced.validate()
        except ConfigError as exc:
            raise ConfigError(
                f"re-pricing sweep {name!r} value {v:g} produced an "
                f"invalid configuration: {exc}"
            ) from exc
        _check_same_traffic_shape(base_config, priced)
        priced_configs.append((v, priced))
    sweep = SweepResult(
        name=name, values=list(values), workloads=[s.abbr for s in specs]
    )
    if runner is None:
        results = {
            spec.abbr: run_workload(
                spec, base_config, label=f"{name}-base", use_cache=use_cache
            )
            for spec in specs
        }
    else:
        tasks = [
            Task(
                key=f"{name}-base/{spec.abbr}",
                fn=simulate_point,
                args=(spec, base_config, f"{name}-base", use_cache),
                config_hash=config_hash(base_config),
            )
            for spec in specs
        ]
        batch = run_tasks(tasks, runner)
        results = {}
        for spec in specs:
            key = f"{name}-base/{spec.abbr}"
            if key in batch.results:
                results[spec.abbr] = batch.results[key]
            elif key in batch.failures:
                for v in values:
                    sweep.failures[(v, spec.abbr)] = batch.failures[key]
            else:
                sweep.cancelled.extend((v, spec.abbr) for v in values)
    for v, priced in priced_configs:
        model = PerformanceModel(priced)
        for abbr, result in results.items():
            sweep.points[(v, abbr)] = SweepPoint(
                value=v,
                workload=abbr,
                time_s=model.total_time_s(result),
                result=result,
            )
    return sweep


def _check_same_traffic_shape(base: SystemConfig, priced: SystemConfig) -> None:
    """Reject re-pricing configs that would have changed the simulation."""
    if (
        priced.n_gpus != base.n_gpus
        or priced.scale != base.scale
        or priced.page_bytes != base.page_bytes
        or priced.placement != base.placement
        or priced.replication != base.replication
        or priced.migration != base.migration
        or priced.scheduling != base.scheduling
        or (priced.rdc is None) != (base.rdc is None)
    ):
        raise ValueError(
            "re-pricing sweep changed a traffic-affecting parameter; "
            "use run_sweep instead"
        )
    if priced.link_faults != base.link_faults:
        # Fault epochs change both the per-kernel link scaling and (via
        # outage rerouting) the byte matrices themselves.
        raise ValueError(
            "re-pricing sweep changed the link-fault schedule; "
            "use run_sweep instead"
        )
    if priced.rdc is not None and base.rdc is not None:
        if (
            priced.rdc.size_bytes != base.rdc.size_bytes
            or priced.rdc.coherence != base.rdc.coherence
            or priced.rdc.write_policy != base.rdc.write_policy
            or priced.rdc.hit_predictor != base.rdc.hit_predictor
        ):
            raise ValueError(
                "re-pricing sweep changed the RDC; use run_sweep instead"
            )
