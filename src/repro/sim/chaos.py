"""Deterministic, seeded chaos engine and crash drills for the sweep fabric.

The fault-tolerant runner (:mod:`repro.sim.runner`), the persistent
worker pool (:mod:`repro.sim.pool`) and the crash-consistent journal
(:mod:`repro.sim.journal`) together promise that an interrupted sweep is
resumable to **byte-identical** results.  This module is how that
promise gets attacked instead of assumed:

* a :class:`ChaosPlan` maps a seed to a reproducible schedule of
  :class:`FaultEvent` s — worker SIGKILL, hang, slowdown, raised
  exception, shared-memory transport failure, torn journal tail,
  ENOSPC on journal append, truncated/corrupted sidecar pickles and
  sim-cache corruption;
* a :class:`ChaosEngine` arms the plan across *every process of a
  batch* (parent and forked workers alike) through a single hook,
  :func:`fire`, that the pool, journal and sim-cache call at their
  fault sites.  Cross-process once-only semantics come from
  ``O_CREAT|O_EXCL`` claim files in a shared state directory, which
  doubles as the audit trail of what actually fired;
* :func:`run_drill` (CLI: ``python -m repro chaos``) runs a reference
  sweep fault-free and serially, then the same sweep under a plan —
  SIGKILLing the whole batch mid-flight between ``--resume`` rounds —
  and asserts the end-state invariants: results byte-identical to the
  reference, every key terminal in the journal, no orphan tmp files,
  and an injection record consistent with the plan.

Arming a plan is environment-driven so subprocesses inherit it:
``REPRO_CHAOS_PLAN`` points at a saved plan JSON and
``REPRO_CHAOS_STATE`` at the shared state directory.  In-process code
(tests) can instead call :func:`install` with a constructed engine.

The legacy single-fault hook (``REPRO_INJECT_FAULT="<mode>:<key-substr>"``
with modes ``fail``/``crash``/``hang``/``flaky``) predates plans and
remains supported; it lives here now and :mod:`repro.sim.pool`
re-exports its contract.

Nothing in this module runs on the simulated path; the wall-clock and
sleep calls below are drill orchestration (DET001 allowlists this file
next to ``sim/runner.py``).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

# ---------------------------------------------------------------------------
# Environment contract
# ---------------------------------------------------------------------------

#: Path of a saved :class:`ChaosPlan` JSON; with :data:`STATE_ENV` set,
#: every process of the batch arms the plan at its first fault site.
PLAN_ENV = "REPRO_CHAOS_PLAN"
#: Directory for cross-process claim files and injection records.
STATE_ENV = "REPRO_CHAOS_STATE"

#: Legacy single-fault hook (predates plans): ``"<mode>:<key-substr>"``
#: where mode is one of ``fail`` (raise), ``crash`` (SIGKILL self),
#: ``hang`` (sleep forever), ``flaky`` (raise on first attempt only,
#: using a sentinel under :data:`FAULT_STATE_ENV`).  An empty substring
#: matches every task.
FAULT_ENV = "REPRO_INJECT_FAULT"
FAULT_STATE_ENV = "REPRO_INJECT_FAULT_STATE"

# ---------------------------------------------------------------------------
# Fault sites and kinds
# ---------------------------------------------------------------------------

#: Hook sites.  Each call to :func:`fire` names the site it is at; an
#: event only triggers at the site its kind belongs to.
SITE_TASK = "task"                      # worker task entry (pool/inline)
SITE_SHM_EXPORT = "shm_export"          # shared-memory result handover
SITE_JOURNAL_APPEND = "journal_append"  # before a journal line is written
SITE_SIDECAR_STORE = "sidecar_store"    # after a sidecar result landed
SITE_SIMCACHE_STORE = "simcache_store"  # after a sim-cache entry landed

KIND_WORKER_KILL = "worker_kill"            # SIGKILL the executing process
KIND_WORKER_HANG = "worker_hang"            # sleep past any sane deadline
KIND_WORKER_SLOW = "worker_slow"            # sleep briefly (jitter)
KIND_WORKER_EXCEPTION = "worker_exception"  # raise from the task
KIND_SHM_FAIL = "shm_fail"                  # break shm export (pipe fallback)
KIND_TORN_TAIL = "journal_torn_tail"        # half a line, fsync, SIGKILL
KIND_ENOSPC = "journal_enospc"              # ENOSPC on journal append
KIND_SIDECAR_TRUNCATE = "sidecar_truncate"  # cut the stored sidecar short
KIND_SIDECAR_CORRUPT = "sidecar_corrupt"    # flip bytes inside the sidecar
KIND_SIMCACHE_CORRUPT = "simcache_corrupt"  # flip bytes in the cache entry

KIND_TO_SITE = {
    KIND_WORKER_KILL: SITE_TASK,
    KIND_WORKER_HANG: SITE_TASK,
    KIND_WORKER_SLOW: SITE_TASK,
    KIND_WORKER_EXCEPTION: SITE_TASK,
    KIND_SHM_FAIL: SITE_SHM_EXPORT,
    KIND_TORN_TAIL: SITE_JOURNAL_APPEND,
    KIND_ENOSPC: SITE_JOURNAL_APPEND,
    KIND_SIDECAR_TRUNCATE: SITE_SIDECAR_STORE,
    KIND_SIDECAR_CORRUPT: SITE_SIDECAR_STORE,
    KIND_SIMCACHE_CORRUPT: SITE_SIMCACHE_STORE,
}

FAULT_KINDS = tuple(KIND_TO_SITE)

#: The kinds every generated plan is guaranteed to schedule — the
#: acceptance drill of docs/chaos.md: kill a worker mid-batch, tear the
#: journal tail, corrupt one sidecar.
REQUIRED_KINDS = (KIND_WORKER_KILL, KIND_TORN_TAIL, KIND_SIDECAR_CORRUPT)

#: Default sleep lengths (seconds) when an event carries no ``param``.
DEFAULT_HANG_S = 12.0
DEFAULT_SLOW_S = 0.1


class ChaosInjectedError(RuntimeError):
    """Raised by exception-flavoured fault kinds (never by real code)."""


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    The event triggers at the ``nth`` :func:`fire` call (counted across
    every process of the batch) whose site matches the kind's and whose
    key contains ``match`` — or at the first such call after the nth,
    if the nth call's process died between claiming its turn and
    injecting.  Each event fires at most once per state directory.
    """

    kind: str
    match: str = ""
    nth: int = 1
    param: float = 0.0

    def to_payload(self) -> dict:
        return {
            "kind": self.kind, "match": self.match,
            "nth": self.nth, "param": self.param,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultEvent":
        kind = payload["kind"]
        if kind not in KIND_TO_SITE:
            raise ValueError(f"unknown fault kind {kind!r}")
        return cls(
            kind=kind,
            match=str(payload.get("match", "")),
            nth=int(payload.get("nth", 1)),
            param=float(payload.get("param", 0.0)),
        )


PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ChaosPlan:
    """A seed plus the fault schedule derived from it.

    The same seed always generates the same schedule
    (:meth:`generate` uses a private ``random.Random(seed)``), so a
    failing drill is rerunnable bit-for-bit from its seed alone.
    """

    seed: int
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    @classmethod
    def generate(
        cls,
        seed: int,
        keys: Sequence[str] = (),
        extra_events: int = 3,
    ) -> "ChaosPlan":
        """Derive a schedule from *seed*.

        Always schedules the :data:`REQUIRED_KINDS` trio with small
        ``nth`` values (so they trigger even in a short batch), then
        *extra_events* further events drawn from the remaining kinds,
        optionally scoped to one of *keys*.
        """
        rng = random.Random(int(seed))
        events = [
            FaultEvent(KIND_WORKER_KILL, "", rng.randint(1, 2)),
            FaultEvent(KIND_TORN_TAIL, "", rng.randint(2, 5)),
            FaultEvent(KIND_SIDECAR_CORRUPT, "", rng.randint(1, 2)),
        ]
        optional = [k for k in FAULT_KINDS if k not in REQUIRED_KINDS]
        for _ in range(max(0, extra_events)):
            kind = rng.choice(optional)
            match = rng.choice(("", *keys)) if keys else ""
            nth = rng.randint(1, 4)
            if kind == KIND_WORKER_HANG:
                param = round(rng.uniform(10.0, 14.0), 3)
            elif kind == KIND_WORKER_SLOW:
                param = round(rng.uniform(0.05, 0.3), 3)
            else:
                param = 0.0
            events.append(FaultEvent(kind, match, nth, param))
        return cls(seed=int(seed), events=tuple(events))

    def to_payload(self) -> dict:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "events": [e.to_payload() for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ChaosPlan":
        return cls(
            seed=int(payload["seed"]),
            events=tuple(
                FaultEvent.from_payload(e) for e in payload["events"]
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChaosPlan":
        return cls.from_payload(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ChaosEngine:
    """Arms a :class:`ChaosPlan` across every process of a batch.

    All coordination happens through *state_dir*:

    * ``ev<i>.tick<n>`` — call-counting claim files.  Each matching
      :func:`fire` call claims the lowest unclaimed tick with
      ``O_CREAT|O_EXCL``, which is atomic across processes;
    * ``ev<i>.injected`` — written (same ``O_EXCL`` discipline) by the
      single process that wins the right to inject event *i*; its JSON
      body records kind/site/key/pid/tick and is the authoritative
      audit trail a drill checks against the plan.

    The record is written *before* the injection, so kill-flavoured
    faults are accounted for even though the process does not survive
    them.
    """

    def __init__(
        self,
        plan: ChaosPlan,
        state_dir: Union[str, Path],
        registry=None,
    ) -> None:
        self.plan = plan
        self.state_dir = Path(state_dir)
        #: Optional MetricsRegistry counting ``chaos.injected{kind}``
        #: for faults injected in *this* process (the state directory,
        #: not the counter, is the cross-process source of truth).
        self.registry = registry

    # -- state files ----------------------------------------------------

    def _fired(self, idx: int) -> bool:
        return (self.state_dir / f"ev{idx}.injected").exists()

    def _claim_tick(self, idx: int) -> int:
        self.state_dir.mkdir(parents=True, exist_ok=True)
        n = 1
        while True:
            try:
                fd = os.open(
                    self.state_dir / f"ev{idx}.tick{n}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                n += 1
                continue
            os.close(fd)
            return n

    def _claim_injection(
        self, idx: int, event: FaultEvent, site: str, key: str, tick: int
    ) -> bool:
        record = {
            "event": idx, "kind": event.kind, "site": site,
            "key": key, "pid": os.getpid(), "tick": tick,
        }
        try:
            fd = os.open(
                self.state_dir / f"ev{idx}.injected",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False  # another process injected this event first
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True))
            f.flush()
            os.fsync(f.fileno())
        return True

    @staticmethod
    def injected(state_dir: Union[str, Path]) -> list[dict]:
        """Audit records of every event that fired, in event order."""
        out: list[dict] = []
        for path in sorted(Path(state_dir).glob("ev*.injected")):
            try:
                out.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue  # the injecting process died mid-record
        return out

    # -- firing ---------------------------------------------------------

    def fire(
        self,
        site: str,
        key: str,
        path: Optional[Path] = None,
        line: Optional[str] = None,
    ) -> None:
        for idx, event in enumerate(self.plan.events):
            if KIND_TO_SITE[event.kind] != site:
                continue
            if event.match and event.match not in key:
                continue
            if self._fired(idx):
                continue
            tick = self._claim_tick(idx)
            if tick < event.nth:
                continue
            if not self._claim_injection(idx, event, site, key, tick):
                continue
            self._count(event.kind)
            self._inject(event, key, path=path, line=line)

    def _count(self, kind: str) -> None:
        if self.registry is None:
            return
        from repro.obs.metrics import spec_for

        self.registry.register(spec_for("chaos.injected")).inc(kind=kind)

    def _inject(
        self,
        event: FaultEvent,
        key: str,
        path: Optional[Path],
        line: Optional[str],
    ) -> None:
        kind = event.kind
        if kind == KIND_WORKER_EXCEPTION:
            raise ChaosInjectedError(f"injected task exception for {key!r}")
        if kind == KIND_WORKER_KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == KIND_WORKER_HANG:
            time.sleep(event.param or DEFAULT_HANG_S)
            return
        if kind == KIND_WORKER_SLOW:
            time.sleep(event.param or DEFAULT_SLOW_S)
            return
        if kind == KIND_SHM_FAIL:
            raise ChaosInjectedError(
                f"injected shared-memory transport failure for {key!r}"
            )
        if kind == KIND_ENOSPC:
            raise OSError(
                errno.ENOSPC,
                f"injected: no space left on device (journal append, "
                f"{key!r})",
            )
        if kind == KIND_TORN_TAIL:
            # The crash the journal's tail repair exists for: half a
            # record reaches the disk (flushed and fsynced, so it is
            # durably *there*), then the process dies before completing
            # the line.
            if path is not None and line:
                with open(path, "a", encoding="utf-8") as f:
                    f.write(line[: max(1, len(line) // 2)])
                    f.flush()
                    os.fsync(f.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        if kind in (KIND_SIDECAR_TRUNCATE, KIND_SIDECAR_CORRUPT,
                    KIND_SIMCACHE_CORRUPT):
            if path is not None:
                _damage_file(
                    Path(path),
                    truncate=(kind == KIND_SIDECAR_TRUNCATE),
                    seed=self.plan.seed,
                )


def _damage_file(path: Path, truncate: bool, seed: int) -> None:
    """Deterministically truncate or bit-rot a file at rest."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    if not data:
        return
    if truncate:
        damaged = data[: len(data) // 2]
    else:
        noise = hashlib.sha256(f"chaos:{seed}".encode()).digest()
        pos = len(data) // 3
        damaged = (data[:pos] + noise + data[pos + len(noise):])[: len(data)]
        if damaged == data:  # pathological collision; force a change
            damaged = bytes([data[0] ^ 0xFF]) + data[1:]
    try:
        path.write_bytes(damaged)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Module-level hook (what pool/journal/cache call)
# ---------------------------------------------------------------------------

_engine: Optional[ChaosEngine] = None
_env_engine: Optional[tuple[tuple[str, str], Optional[ChaosEngine]]] = None


def install(engine: ChaosEngine) -> None:
    """Arm *engine* in this process (tests; production uses the env)."""
    global _engine
    _engine = engine


def uninstall() -> None:
    global _engine, _env_engine
    _engine = None
    _env_engine = None


def active() -> Optional[ChaosEngine]:
    """The armed engine, if any: installed one first, then environment.

    The environment bootstrap (:data:`PLAN_ENV` + :data:`STATE_ENV`) is
    memoized on the variable values, so repeated fault-site calls cost
    two dict lookups when chaos is off.
    """
    if _engine is not None:
        return _engine
    global _env_engine
    plan_path = os.environ.get(PLAN_ENV, "")
    state_dir = os.environ.get(STATE_ENV, "")
    key = (plan_path, state_dir)
    if _env_engine is not None and _env_engine[0] == key:
        return _env_engine[1]
    engine: Optional[ChaosEngine] = None
    if plan_path and state_dir:
        try:
            engine = ChaosEngine(ChaosPlan.load(plan_path), state_dir)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            engine = None  # unreadable plan: chaos stays off
    # Per-process memo: after fork each process deliberately rebuilds
    # its own engine from the (identical) environment, so divergence
    # between the parent's and a worker's copy cannot occur.
    _env_engine = (key, engine)  # lint: disable=CONC002 - per-process memo, rebuilt from env after fork
    return engine


def attach_registry(registry) -> None:
    """Give the armed engine a metrics registry if it lacks one."""
    engine = active()
    if engine is not None and engine.registry is None and registry is not None:
        engine.registry = registry


def fire(
    site: str,
    key: str,
    path: Optional[Path] = None,
    line: Optional[str] = None,
) -> None:
    """Fault-site hook: a no-op unless an engine is armed."""
    engine = active()
    if engine is not None:
        engine.fire(site, key, path=path, line=line)


def fire_task(key: str) -> None:
    """Task-entry hook: legacy env fault first, then the plan engine."""
    maybe_inject_env_fault(key)
    fire(SITE_TASK, key)


def maybe_inject_env_fault(key: str) -> None:
    """The legacy :data:`FAULT_ENV` single-fault hook (see above)."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    mode, _, match = spec.partition(":")
    if match and match not in key:
        return
    if mode == "fail":
        raise RuntimeError(f"injected failure for {key!r}")
    if mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(3600)
    if mode == "flaky":
        state_dir = Path(os.environ.get(FAULT_STATE_ENV, "."))
        sentinel = state_dir / (
            hashlib.sha256(key.encode()).hexdigest()[:24] + ".flaky"
        )
        if not sentinel.exists():
            state_dir.mkdir(parents=True, exist_ok=True)
            sentinel.touch()
            raise RuntimeError(f"injected flaky failure for {key!r}")


# ---------------------------------------------------------------------------
# The drill
# ---------------------------------------------------------------------------

#: Short, cache-friendly suite slice the drill sweeps by default.
DRILL_WORKLOADS = ("Lulesh", "Euler", "CoMD", "MCB")


@dataclass
class DrillRound:
    """One subprocess round of a drill."""

    label: str        # "reference" | "chaos-<i>" | "final-resume"
    outcome: str      # "exit" | "killed" | "timeout"
    returncode: Optional[int]
    elapsed_s: float


@dataclass
class DrillReport:
    """Everything a drill observed, plus the invariant verdict."""

    seed: int
    system: str
    workloads: tuple
    jobs: int
    pin: bool
    root: str
    plan_events: int = 0
    rounds: list = field(default_factory=list)
    injected: list = field(default_factory=list)
    quarantined: int = 0
    scan: dict = field(default_factory=dict)
    #: Flight-recorder digest: span-spill totals plus, per victim slot,
    #: the final spans whose end edge never reached the disk.
    flight: dict = field(default_factory=dict)
    #: Invariant violations; empty means the fabric survived the plan.
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [
            f"chaos drill: seed={self.seed} system={self.system} "
            f"jobs={self.jobs} pin={self.pin} "
            f"workloads={','.join(self.workloads)}",
            f"plan: {self.plan_events} event(s) scheduled, "
            f"{len(self.injected)} injected",
        ]
        for rec in self.injected:
            lines.append(
                f"  injected: {rec.get('kind')} at {rec.get('site')} "
                f"(key={rec.get('key') or '<batch>'}, "
                f"tick={rec.get('tick')}, pid={rec.get('pid')})"
            )
        for rnd in self.rounds:
            lines.append(
                f"  round {rnd.label}: {rnd.outcome} "
                f"rc={rnd.returncode} ({rnd.elapsed_s:.1f}s)"
            )
        lines.append(
            f"journal: {self.scan.get('records', 0)} records, "
            f"torn={self.scan.get('torn_tail', 0)} "
            f"corrupt={self.scan.get('corrupt_records', 0)} "
            f"checksum={self.scan.get('checksum_failures', 0)}; "
            f"{self.quarantined} sidecar(s) quarantined"
        )
        if self.flight:
            lines.append(
                f"flight recorder: {self.flight.get('spans', 0)} span(s) "
                f"spilled, {self.flight.get('damaged', 0)} damaged, "
                f"{len(self.flight.get('victims', ()))} victim slot(s)"
            )
            for victim in self.flight.get("victims", ()):
                tail = " -> ".join(
                    f"{s['name']}[{s['key']}]" if s.get("key") else s["name"]
                    for s in victim.get("spans", ())
                ) or "<no spans>"
                lines.append(
                    f"  victim slot {victim.get('slot', -1):02d} "
                    f"(node {victim.get('node', -1)}): {tail}"
                )
        if self.ok:
            lines.append(
                "PASS: results byte-identical to the fault-free serial "
                "reference; every key terminal; no orphans"
            )
        else:
            lines.append(f"FAIL: {len(self.problems)} invariant violation(s)")
            for problem in self.problems:
                lines.append(f"  - {problem}")
        return "\n".join(lines)


def _kill_tree(proc: subprocess.Popen) -> None:
    """SIGKILL a round's whole process group (parent and pool workers)."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except OSError:
            pass


def run_drill(
    root: Union[str, Path],
    seed: int = 0,
    system: str = "numa-gpu",
    workloads: Sequence[str] = DRILL_WORKLOADS,
    rounds: int = 3,
    jobs: int = 2,
    pin: bool = False,
    timeout_s: float = 8.0,
    round_timeout_s: float = 300.0,
    kill_window: tuple[float, float] = (0.75, 2.5),
    python: str = sys.executable,
    trace: bool = True,
) -> DrillReport:
    """Run the crash drill; see the module docstring for the shape.

    Rounds: one fault-free serial **reference**, then *rounds* chaos
    rounds against a second journal — all but the last SIGKILLed
    (whole process group) after a seeded delay, every round after the
    first resuming — then one plain ``--resume`` round with chaos
    disarmed, which must converge.  Each batch runs as a real
    ``python -m repro suite`` subprocess; nothing is mocked.

    With *trace* (the default) the chaos rounds run ``--trace``, and
    the report carries a **flight recorder**: the span spill survives
    SIGKILL, so each victim's final spans — the ones whose end edge
    never reached the disk — name what it was doing when it died.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    workloads = tuple(workloads)
    if len(workloads) < 2:
        # The required-trio convergence argument (every key completing
        # implies enough task/store/append ticks for the small nth
        # values) needs at least two points.
        raise ValueError("a drill needs at least two workloads")
    keys = [f"{system}/{w}" for w in workloads]

    plan = ChaosPlan.generate(seed, keys=keys)
    plan_path = root / "plan.json"
    plan.save(plan_path)
    state_dir = root / "chaos-state"
    ref_journal = root / "reference.jsonl"
    chaos_journal = root / "chaos-run.jsonl"

    report = DrillReport(
        seed=seed, system=system, workloads=workloads, jobs=jobs, pin=pin,
        root=str(root), plan_events=len(plan.events),
    )
    if ChaosPlan.generate(seed, keys=keys) != plan != ChaosPlan.load(
            plan_path):
        report.problems.append("plan generation is not reproducible")
        return report

    src_root = str(Path(__file__).resolve().parents[2])

    def child_env(cache_dir: Path, chaos_on: bool) -> dict:
        env = dict(os.environ)
        for var in (FAULT_ENV, FAULT_STATE_ENV, PLAN_ENV, STATE_ENV,
                    "REPRO_NO_CACHE", "REPRO_JOURNAL_FSYNC",
                    "REPRO_POOL_SHM_MIN"):
            env.pop(var, None)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        if chaos_on:
            env[PLAN_ENV] = str(plan_path)
            env[STATE_ENV] = str(state_dir)
        return env

    def suite_cmd(journal: Path, jobs_n: int, resume: bool,
                  pin_run: bool) -> list[str]:
        cmd = [
            python, "-m", "repro", "suite", system,
            "--workloads", *workloads,
            "--jobs", str(jobs_n), "--retries", "1",
            "--journal", str(journal),
        ]
        if jobs_n > 1:
            cmd += ["--timeout", str(timeout_s)]
        if resume:
            cmd.append("--resume")
        if pin_run:
            cmd.append("--pin")
        if trace and journal == chaos_journal:
            cmd.append("--trace")
        return cmd

    def run_round(label: str, cmd: list[str], env: dict,
                  kill_after: Optional[float]) -> DrillRound:
        started = time.monotonic()
        outcome = "exit"
        with (root / f"{label}.log").open("w", encoding="utf-8") as log:
            proc = subprocess.Popen(
                cmd, env=env, stdout=log, stderr=subprocess.STDOUT,
                start_new_session=True,
            )
            try:
                rc = proc.wait(
                    timeout=kill_after if kill_after is not None
                    else round_timeout_s
                )
            except subprocess.TimeoutExpired:
                _kill_tree(proc)
                rc = proc.wait()
                outcome = "killed" if kill_after is not None else "timeout"
        rnd = DrillRound(label, outcome, rc, time.monotonic() - started)
        report.rounds.append(rnd)
        return rnd

    # Round 0: the fault-free serial reference every invariant is
    # measured against.
    ref = run_round(
        "reference",
        suite_cmd(ref_journal, 1, resume=False, pin_run=False),
        child_env(root / "cache-reference", chaos_on=False),
        kill_after=None,
    )
    if ref.returncode != 0:
        report.problems.append(
            f"fault-free reference run failed (rc={ref.returncode}, "
            f"outcome={ref.outcome}); see reference.log"
        )
        return report

    # Chaos rounds: the plan is armed; all but the last are additionally
    # SIGKILLed from outside after a seeded delay.  Exit codes are
    # deliberately unchecked — crashing is these rounds' job.
    kill_rng = random.Random(seed ^ 0x5EED)
    chaos_cache = root / "cache-chaos"
    for i in range(max(1, rounds)):
        kill_after = (
            round(kill_rng.uniform(*kill_window), 3)
            if i < max(1, rounds) - 1 else None
        )
        run_round(
            f"chaos-{i}",
            suite_cmd(chaos_journal, jobs, resume=(i > 0), pin_run=pin),
            child_env(chaos_cache, chaos_on=True),
            kill_after=kill_after,
        )

    # A plan can starve its own required trio: an early ENOSPC (or two)
    # can abort every scheduled round before enough sidecar stores have
    # accumulated for a small-nth event to reach its turn.  Keep
    # running un-killed, resumed chaos rounds — each makes forward
    # progress on the remaining keys, ticking the fault sites — until
    # the trio has fired (bounded; the invariant check flags a plan
    # that still failed to deliver).
    for extra in range(4):
        fired = {
            rec.get("kind") for rec in ChaosEngine.injected(state_dir)
        }
        if all(kind in fired for kind in REQUIRED_KINDS):
            break
        run_round(
            f"chaos-extra-{extra}",
            suite_cmd(chaos_journal, jobs, resume=True, pin_run=pin),
            child_env(chaos_cache, chaos_on=True),
            kill_after=None,
        )

    # Convergence: plain --resume with chaos disarmed must finish clean.
    final = run_round(
        "final-resume",
        suite_cmd(chaos_journal, jobs, resume=True, pin_run=pin),
        child_env(chaos_cache, chaos_on=False),
        kill_after=None,
    )
    if final.returncode != 0:
        report.problems.append(
            f"final --resume did not converge (rc={final.returncode}, "
            f"outcome={final.outcome}); see final-resume.log"
        )

    _check_invariants(report, plan, state_dir, keys,
                      ref_journal, chaos_journal)
    if trace:
        _flight_record(report, chaos_journal)
    return report


def _flight_record(report: DrillReport, chaos_journal: Path) -> None:
    """Reconstruct each victim's final timeline from the span spill.

    A SIGKILLed worker leaves ``B`` (begin) span records with no ``E``
    edge — flushed before the fault site fired, so they survive the
    kill.  Grouped by slot, the tail of those open spans is what each
    victim was doing when it died.  Interior damage in the spill (a
    record that decodes but fails its checksum) is an invariant
    violation: kills may tear the *tail*, never the middle.
    """
    # Lazy import: sim.journal imports this module at top level, and
    # repro.obs.trace imports sim.journal — a module-level import here
    # would close the cycle.
    from repro.obs.assemble import open_spans
    from repro.obs.trace import read_spans_dir, spans_dir_for

    records, damaged = read_spans_dir(spans_dir_for(chaos_journal))
    by_slot: dict[int, list[dict]] = {}
    for rec in open_spans(records):
        slot = rec.get("slot", -1)
        if isinstance(slot, int) and slot >= 0:
            by_slot.setdefault(slot, []).append(rec)
    victims = []
    for slot in sorted(by_slot):
        last = by_slot[slot][-5:]
        victims.append({
            "slot": slot,
            "node": last[-1].get("node", -1),
            "spans": [
                {"name": r.get("name", ""), "key": r.get("key", ""),
                 "ts": r.get("ts", 0.0)}
                for r in last
            ],
        })
    report.flight = {
        "spans": len(records),
        "damaged": damaged,
        "victims": victims,
    }
    if damaged:
        report.problems.append(
            f"{damaged} damaged span record(s) in the spill — a crash "
            "may tear the tail, never the interior"
        )


def _check_invariants(
    report: DrillReport,
    plan: ChaosPlan,
    state_dir: Path,
    keys: list[str],
    ref_journal: Path,
    chaos_journal: Path,
) -> None:
    from repro.sim.journal import Journal

    report.injected = ChaosEngine.injected(state_dir)

    # Injection record consistent with the plan.
    valid_ids = set(range(len(plan.events)))
    for rec in report.injected:
        idx = rec.get("event")
        if idx not in valid_ids:
            report.problems.append(f"injection record for unknown event {idx}")
        elif rec.get("kind") != plan.events[idx].kind:
            report.problems.append(
                f"injection record kind {rec.get('kind')!r} does not match "
                f"plan event {idx} ({plan.events[idx].kind!r})"
            )
    fired_kinds = {rec.get("kind") for rec in report.injected}
    for kind in REQUIRED_KINDS:
        if kind not in fired_kinds:
            report.problems.append(f"required fault never fired: {kind}")

    ref = Journal(ref_journal)
    chaos_j = Journal(chaos_journal)

    # Every key terminal ``done``.
    done = chaos_j.completed_keys()
    missing = [k for k in keys if k not in done]
    if missing:
        report.problems.append(
            f"key(s) not terminal done in the chaos journal: {missing}"
        )

    # Results byte-identical to the fault-free serial reference.
    for key in keys:
        ref_bytes = ref.load_result_bytes(key)
        chaos_bytes = chaos_j.load_result_bytes(key)
        if ref_bytes is None:
            report.problems.append(f"reference sidecar unreadable for {key}")
        elif chaos_bytes is None:
            report.problems.append(f"chaos sidecar unreadable for {key}")
        elif ref_bytes != chaos_bytes:
            report.problems.append(
                f"result bytes differ from the fault-free reference for "
                f"{key}"
            )

    # No orphan tmp files survive the final resume (the journal sweeps
    # them at batch start), and no torn/corrupt line survives in the
    # journal itself.
    orphans = [
        p.name
        for d in (ref.results_dir, chaos_j.results_dir) if d.exists()
        for p in sorted(d.glob("*.tmp"))
    ]
    if orphans:
        report.problems.append(f"orphan sidecar tmp file(s): {orphans}")
    scan = chaos_j.scan()
    report.scan = {
        "records": len(scan.records),
        "torn_tail": scan.torn_tail,
        "corrupt_records": scan.corrupt_records,
        "checksum_failures": scan.checksum_failures,
    }
    if scan.torn_tail or scan.corrupt_records or scan.checksum_failures:
        report.problems.append(
            f"final journal is not clean: torn={scan.torn_tail} "
            f"corrupt={scan.corrupt_records} "
            f"checksum={scan.checksum_failures}"
        )

    # Sidecar quarantines cannot exceed the sidecar faults injected.
    report.quarantined = (
        len(list(chaos_j.results_dir.glob("*.corrupt")))
        if chaos_j.results_dir.exists() else 0
    )
    sidecar_faults = sum(
        1 for rec in report.injected
        if rec.get("kind") in (KIND_SIDECAR_CORRUPT, KIND_SIDECAR_TRUNCATE)
    )
    if report.quarantined > sidecar_faults:
        report.problems.append(
            f"{report.quarantined} sidecar(s) quarantined but only "
            f"{sidecar_faults} sidecar fault(s) injected"
        )


__all__ = [
    "ChaosEngine",
    "ChaosInjectedError",
    "ChaosPlan",
    "DEFAULT_HANG_S",
    "DEFAULT_SLOW_S",
    "DRILL_WORKLOADS",
    "DrillReport",
    "DrillRound",
    "FAULT_ENV",
    "FAULT_KINDS",
    "FAULT_STATE_ENV",
    "FaultEvent",
    "KIND_ENOSPC",
    "KIND_SHM_FAIL",
    "KIND_SIDECAR_CORRUPT",
    "KIND_SIDECAR_TRUNCATE",
    "KIND_SIMCACHE_CORRUPT",
    "KIND_TORN_TAIL",
    "KIND_TO_SITE",
    "KIND_WORKER_EXCEPTION",
    "KIND_WORKER_HANG",
    "KIND_WORKER_KILL",
    "KIND_WORKER_SLOW",
    "PLAN_ENV",
    "REQUIRED_KINDS",
    "SITE_JOURNAL_APPEND",
    "SITE_SHM_EXPORT",
    "SITE_SIDECAR_STORE",
    "SITE_SIMCACHE_STORE",
    "SITE_TASK",
    "STATE_ENV",
    "active",
    "attach_registry",
    "fire",
    "fire_task",
    "install",
    "maybe_inject_env_fault",
    "run_drill",
    "uninstall",
]
