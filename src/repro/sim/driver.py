"""End-to-end simulation driver.

``run_workload`` takes a workload (spec or Table II abbreviation) and a
system configuration and produces a :class:`RunResult`:

1. synthesise the trace,
2. profile page sharing if a software replication policy is active,
3. build the system and execute the trace,
4. attach the page-heat histogram (Unified-Memory spill model input).

Results are memoised on disk (see :mod:`repro.sim.cache`) because every
figure re-prices the same runs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.sharing import profile_sharing
from repro.config import REPLICATE_NONE, SystemConfig
from repro.gpu.cta import WorkloadTrace
from repro.numa.replication import ReplicationPlan, build_replication_plan
from repro.numa.system import ENGINE_VECTORIZED, MultiGpuSystem
from repro.perf.model import PerformanceModel, RunTime
from repro.perf.stats import RunResult
from repro.sim import cache
from repro.workloads import suite
from repro.workloads.base import WorkloadSpec, generate_trace

WorkloadLike = Union[str, WorkloadSpec]


def resolve_workload(workload: WorkloadLike) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    return suite.get(workload)


def run_workload(
    workload: WorkloadLike,
    config: SystemConfig,
    label: Optional[str] = None,
    use_cache: bool = True,
    trace: Optional[WorkloadTrace] = None,
    obs=None,
    engine: Optional[str] = None,
) -> RunResult:
    """Simulate *workload* on *config*; returns the counters.

    A pre-generated *trace* bypasses both generation and the cache (used
    by tests that need control over the exact access stream).

    An *obs* (:class:`repro.obs.Observability`) watches the run: metrics
    and trace events land in it without changing the ``RunResult``.  An
    observed run always executes (a disk-cached result would leave the
    registry empty), so the cache is bypassed — but never written to,
    keeping cached entries equivalent to unobserved runs.

    *engine* selects the execution engine (``ENGINE_VECTORIZED`` when
    None).  Engines are counter-identical, but an explicit non-default
    engine bypasses the cache so the requested engine actually runs
    (the baseline gate relies on this to cross-check both engines).
    """
    spec = resolve_workload(workload)
    if trace is not None:
        return _execute(spec, config, label, trace, obs, engine)
    default_engine = engine in (None, ENGINE_VECTORIZED)
    if use_cache and obs is None and default_engine:
        return cache.cached(
            spec, config,
            lambda: _execute(spec, config, label, None, None, None),
        )
    return _execute(spec, config, label, None, obs, engine)


def _execute(
    spec: WorkloadSpec,
    config: SystemConfig,
    label: Optional[str],
    trace: Optional[WorkloadTrace],
    obs=None,
    engine: Optional[str] = None,
) -> RunResult:
    config.validate()
    if trace is None:
        trace = generate_trace(spec, config)
    plan: Optional[ReplicationPlan] = None
    profile = profile_sharing(trace, config)
    if config.replication != REPLICATE_NONE:
        plan = build_replication_plan(profile, config.replication)
    system = MultiGpuSystem(
        config, plan, label, engine=engine or ENGINE_VECTORIZED, obs=obs
    )
    result = system.run(trace)
    result.page_access_counts = profile.sorted_page_access_counts()
    return result


def time_of(result: RunResult, config: SystemConfig) -> float:
    """Total execution time of a run in (scaled) seconds."""
    return PerformanceModel(config).total_time_s(result)


def run_time(result: RunResult, config: SystemConfig) -> RunTime:
    """Full timing breakdown of a run."""
    return PerformanceModel(config).run_time(result)
